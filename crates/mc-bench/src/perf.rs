//! Hot-path performance experiment: the kernel-tier ladder across a
//! (size × threads) matrix, plus solver-layer wall times.
//!
//! Every figure in the suite funnels its host GEMM work through
//! [`mc_blas::select::host_gemm_backend`] — the [`mc_compute::Auto`]
//! dispatch over the naive → blocked → blocked+SIMD ladder. This
//! experiment measures what each rung buys: for each cell of a
//! problem-size × thread-count matrix it times the scalar blocked
//! kernel, the explicit-SIMD microkernel (when the vector unit
//! supports it), and the routed dispatch, confirms every path agrees
//! bitwise with the retained naive reference (the optimization
//! contract: same rounding chain, different loop order), and records
//! blocked LU/Cholesky factorization wall times. Alongside the usual
//! envelope it writes a machine-readable `BENCH_hotpaths.json` to the
//! `--json` sink so CI can archive and perf-diff timings cell by cell.
//!
//! Because the dispatch routes sub-crossover problems back to the
//! naive loop and super-crossover ones to the fastest supported tier,
//! the routed side can tie but never structurally lose to any single
//! tier — the regression the v1 artifact exposed (`sgemm_blocked`
//! behind `sgemm_naive` at N = 256 on one thread) stays closed by
//! policy, and the v3 matrix additionally pins the ladder order: the
//! tier the dispatch picks must not lose to any tier below it.
//!
//! The naive reference is O(N³) with a strided `B` walk and no
//! parallelism; at N = 2048 it needs minutes while the microkernel
//! needs half a second. It is therefore only timed up to
//! [`NAIVE_CAP_N`] — and only once per size, on the single-thread
//! pass, since it never touches the pool — and larger cells report
//! their throughput as GFLOP/s instead of a speedup-over-naive.
//!
//! The size axis defaults to {256, 512, 1024, 2048} (just {256} under
//! smoke budgets) and collapses to a single dimension with the
//! `MC_PERF_N` environment variable; the thread axis is fixed at
//! {1, 4, 8}.

use std::collections::HashMap;
use std::time::Instant;

use mc_blas::BlasHandle;
use mc_compute::{Blocked, Epilogue, GemmParams, MatMul, Naive, Simd};
use mc_sim::{DeviceId, DeviceRegistry};
use mc_solver::{factor_timed, Factorization};
use serde::{Deserialize, Serialize};

use crate::experiment::IterBudgets;

/// Layout version of `BENCH_hotpaths.json`. Version 3 added per-entry
/// `gflops` and `backend` columns and split the packed tier into
/// `sgemm_blocked` (scalar) and `sgemm_simd` (microkernel) alongside
/// the routed `sgemm_auto`; version 2 had moved the thread count from
/// the file header into every entry.
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Name of the timing artifact written to the JSON sink.
pub const BENCH_FILE: &str = "BENCH_hotpaths.json";

/// The thread-count axis of the timing matrix.
pub const MATRIX_THREADS: [usize; 3] = [1, 4, 8];

/// Timing repetitions per cell; each kernel's wall time is the minimum
/// over the repetitions, which strips scheduler noise from the
/// committed artifact.
pub const REPS: usize = 2;

/// Largest dimension at which the serial naive reference is timed.
/// Beyond it the O(N³) strided walk costs minutes per repetition, so
/// 2048-class cells skip it and report absolute GFLOP/s only.
pub const NAIVE_CAP_N: usize = 1024;

/// Relative jitter allowed before a tier comparison counts as a loss.
/// Cross-tier cells re-time the same kernel through two code paths
/// (the tier directly and the dispatch), so only scheduler noise can
/// separate them; single-core runners show up to ~10% of it.
pub const TIER_JITTER_REL: f64 = 0.10;

/// Absolute scheduler-noise floor added on top of [`TIER_JITTER_REL`].
/// Sub-100 ms cells (and oversubscribed thread counts on small hosts)
/// see fixed wake-up/descheduling costs that dwarf 10% of the wall
/// time, so a purely relative band flags noise as a loss there. Real
/// tier inversions are order-of-magnitude events — the committed
/// calibration puts ~9× between SIMD and blocked at 1024³ — which the
/// 25 ms floor cannot mask.
pub const TIER_JITTER_ABS_S: f64 = 0.025;

/// One cell of the tier-ladder GEMM matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GemmTiming {
    /// Square problem dimension (M = N = K).
    pub n: usize,
    /// Configured rayon worker count for this cell.
    pub threads: usize,
    /// Naive reference wall time in seconds (best of [`REPS`]); absent
    /// above [`NAIVE_CAP_N`]. The reference is serial, so the value is
    /// measured once per size and shared across the thread axis.
    pub naive_s: Option<f64>,
    /// Scalar blocked-kernel wall time in seconds (best of [`REPS`]).
    pub blocked_s: f64,
    /// SIMD-microkernel wall time in seconds (best of [`REPS`]);
    /// absent when the vector unit is missing or `MC_GEMM_SIMD` turned
    /// the tier off.
    pub simd_s: Option<f64>,
    /// Routed-dispatch wall time in seconds (best of [`REPS`]).
    pub routed_s: f64,
    /// Which tier the dispatch routed this cell to
    /// (`naive`/`blocked`/`simd`).
    pub routed: String,
    /// Routed-dispatch throughput, `2·N³ / routed_s / 10⁹`.
    pub gflops: f64,
    /// `naive_s / routed_s`; absent where the naive reference is.
    pub speedup: Option<f64>,
    /// Whether every measured path produced bitwise-identical results.
    pub bitwise_equal: bool,
    /// The crossover edge the dispatch used for this cell.
    pub crossover_n: usize,
}

/// One factorization wall-time measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverTiming {
    /// Routine name (`getrf`/`potrf`).
    pub routine: String,
    /// Problem size.
    pub n: usize,
    /// Panel block size.
    pub block: usize,
    /// Host wall time in seconds.
    pub wall_s: f64,
    /// Useful-FLOP throughput on the simulated device clock.
    pub tflops: f64,
}

/// The GEMM dimension at which the ≥5× speedup bar is assessed. Below
/// it the whole working set fits in cache and the naive loop order is
/// not yet paying for its strided `B` walk, so smaller (smoke-tier)
/// runs report their speedup as informational only.
pub const TARGET_N: usize = 1024;

/// The perf experiment payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Perf {
    /// Rayon worker threads of the ambient pool (restored after the
    /// matrix and used for the solver timings).
    pub threads: usize,
    /// Whether the SIMD tier was live for this run (vector unit
    /// present and not disabled via `MC_GEMM_SIMD`).
    pub simd_enabled: bool,
    /// The (size × threads) GEMM timing matrix.
    pub cells: Vec<GemmTiming>,
    /// True when some full-dimension cell (N ≥ [`TARGET_N`]) met the
    /// ≥5× speedup bar against the naive reference.
    pub meets_target: bool,
    /// True when the routed dispatch never lost to any measured tier
    /// in any cell beyond timer jitter ([`TIER_JITTER_REL`] plus the
    /// [`TIER_JITTER_ABS_S`] noise floor) — the crossover contract.
    pub never_loses: bool,
    /// True when in no cell the tier the dispatch picked lost to a
    /// tier below it on the ladder (naive < blocked < simd), beyond
    /// timer jitter — the tier-inversion check.
    pub tier_ordered: bool,
    /// Factorization wall times over the routed BLAS-3 blocks.
    pub solver: Vec<SolverTiming>,
}

/// One entry of `BENCH_hotpaths.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable hot-path id (`sgemm_naive`, `sgemm_blocked`,
    /// `sgemm_simd`, `sgemm_auto`, `getrf`, `potrf`).
    pub id: String,
    /// Problem dimension.
    pub n: usize,
    /// Configured rayon worker count during the measurement.
    pub threads: usize,
    /// Host wall time in seconds.
    pub wall_s: f64,
    /// Useful-FLOP throughput over the host wall time, in GFLOP/s
    /// (schema v3; a v2 file is missing the column, so it fails the
    /// parse and is treated as absent — same skip as a version
    /// mismatch).
    pub gflops: f64,
    /// The kernel behind the measurement; for `sgemm_auto` the tier
    /// the dispatch routed to (schema v3).
    pub backend: String,
}

/// The schema-versioned timing artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchFile {
    /// Layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Timed hot paths, one entry per (id, n, threads) cell.
    pub entries: Vec<BenchEntry>,
}

/// The GEMM size axis for a budget tier: {256, 512, 1024, 2048} for
/// the reduced and paper tiers, {256} under smoke budgets, a single
/// `MC_PERF_N` dimension overriding both.
pub fn problem_sizes(budgets: &IterBudgets) -> Vec<usize> {
    if let Some(n) = std::env::var("MC_PERF_N")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return vec![n.max(1)];
    }
    if *budgets == IterBudgets::smoke() {
        vec![256]
    } else {
        vec![256, 512, 1024, 2048]
    }
}

/// Deterministic pseudo-random fill in [-1, 1) (xorshift64*).
fn fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64;
        *v = (mantissa / (1u64 << 23) as f64 * 2.0 - 1.0) as f32;
    }
}

/// The deterministic operands every timing in this experiment uses.
fn operands(n: usize) -> (Vec<f32>, Vec<f32>) {
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    fill(&mut b, 0xD1B5_4A32_D192_ED03);
    (a, b)
}

fn time_kernel<K: MatMul>(
    kernel: &K,
    params: &GemmParams,
    a: &[f32],
    b: &[f32],
) -> (f64, Vec<f32>) {
    let m = params.m;
    let n = params.n;
    let c = vec![0.0f32; m * n];
    let mut d = vec![0.0f32; m * n];
    let start = Instant::now();
    kernel
        .gemm::<f32, f32, f32>(params, a, b, &c, &mut d)
        .expect("well-formed problem");
    (start.elapsed().as_secs_f64(), d)
}

/// Times the serial naive reference at size `n` (best of [`REPS`]),
/// returning the wall time and the reference output for bitwise
/// checks. Measured once per size; the loop has no parallelism, so
/// the thread axis cannot move it.
pub fn time_naive(n: usize) -> (f64, Vec<f32>) {
    let (a, b) = operands(n);
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..REPS {
        let (t, d) = time_kernel(&Naive, &params, &a, &b);
        best = best.min(t);
        out = d;
    }
    (best, out)
}

/// Times one matrix cell: the scalar blocked tier, the SIMD tier when
/// available, and the routed dispatch, best of [`REPS`] each, with a
/// bitwise agreement check against the naive reference (or the
/// blocked output above [`NAIVE_CAP_N`], where blocked stands in —
/// `compute_parity` proves it bit-identical to naive). Assumes the
/// global rayon pool is already sized to `threads`; the dispatch is
/// constructed here so its crossover sees that pool.
pub fn time_gemm(n: usize, threads: usize, naive: Option<&(f64, Vec<f32>)>) -> GemmTiming {
    let (a, b) = operands(n);
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
    let auto = mc_blas::select::host_gemm_backend();
    let simd_live = auto.simd_enabled() && Simd::supports::<f32, f32>();

    let mut blocked_s = f64::INFINITY;
    let mut simd_s = f64::INFINITY;
    let mut routed_s = f64::INFINITY;
    let mut d_blocked = Vec::new();
    let mut d_simd = Vec::new();
    let mut d_auto = Vec::new();
    for _ in 0..REPS {
        let (t, d) = time_kernel(&Blocked, &params, &a, &b);
        blocked_s = blocked_s.min(t);
        d_blocked = d;
        if simd_live {
            let (t, d) = time_kernel(&Simd::from_env(), &params, &a, &b);
            simd_s = simd_s.min(t);
            d_simd = d;
        }
        let (t, d) = time_kernel(&auto, &params, &a, &b);
        routed_s = routed_s.min(t);
        d_auto = d;
    }

    let reference = naive.map_or(&d_blocked, |(_, d)| d);
    let agrees = |other: &[f32]| {
        reference
            .iter()
            .zip(other)
            .all(|(x, y)| x.to_bits() == y.to_bits())
    };
    let routed_s = routed_s.max(f64::MIN_POSITIVE);
    GemmTiming {
        n,
        threads,
        naive_s: naive.map(|(t, _)| *t),
        blocked_s,
        simd_s: simd_live.then_some(simd_s),
        routed_s,
        routed: auto.routed_name::<f32, f32>(&params).to_owned(),
        gflops: 2.0 * (n as f64).powi(3) / routed_s / 1e9,
        speedup: naive.map(|(t, _)| t / routed_s),
        bitwise_equal: agrees(&d_blocked) && agrees(&d_auto) && (!simd_live || agrees(&d_simd)),
        crossover_n: auto.crossover_n(),
    }
}

/// The wall times of the tiers at or below the dispatch's pick for a
/// cell, paired with the pick's own tier timing — the inputs of the
/// tier-inversion check.
fn routed_tier_vs_lower(c: &GemmTiming) -> Option<(f64, Vec<f64>)> {
    let naive = c.naive_s;
    match c.routed.as_str() {
        "simd" => c.simd_s.map(|s| {
            (
                s,
                [Some(c.blocked_s), naive].into_iter().flatten().collect(),
            )
        }),
        "blocked" => Some((c.blocked_s, naive.into_iter().collect())),
        _ => None,
    }
}

/// Runs the perf experiment over the given size and thread axes.
///
/// The global rayon pool is resized for each thread-axis value (the
/// vendored pool's `build_global` is re-callable by design) and
/// restored to the auto-detected default afterwards.
pub fn run(devices: &DeviceRegistry, sizes: &[usize], threads_axis: &[usize]) -> Perf {
    let ambient = rayon::current_num_threads();
    let mut naive_cache: HashMap<usize, (f64, Vec<f32>)> = HashMap::new();
    let mut cells = Vec::new();
    for &t in threads_axis {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build_global();
        for &n in sizes {
            if n <= NAIVE_CAP_N && !naive_cache.contains_key(&n) {
                naive_cache.insert(n, time_naive(n));
            }
            cells.push(time_gemm(n, t, naive_cache.get(&n)));
        }
    }
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global();

    let mut handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
    let block = 128;
    let solver_n = sizes
        .iter()
        .copied()
        .max()
        .unwrap_or(block)
        .max(block * 2)
        .min(NAIVE_CAP_N);
    let solver = [Factorization::Getrf, Factorization::Potrf]
        .into_iter()
        .map(|kind| {
            let start = Instant::now();
            let perf = factor_timed(&mut handle, kind, solver_n, block).expect("factorization");
            SolverTiming {
                routine: match kind {
                    Factorization::Getrf => "getrf".to_owned(),
                    Factorization::Potrf => "potrf".to_owned(),
                },
                n: solver_n,
                block,
                wall_s: start.elapsed().as_secs_f64(),
                tflops: perf.tflops,
            }
        })
        .collect();

    let within_jitter = |actual: f64, reference: f64| {
        actual <= reference * (1.0 + TIER_JITTER_REL) + TIER_JITTER_ABS_S
    };
    Perf {
        threads: ambient,
        simd_enabled: cells.iter().all(|c| c.simd_s.is_some()) && !cells.is_empty(),
        meets_target: cells
            .iter()
            .any(|c| c.n >= TARGET_N && c.speedup.is_some_and(|s| s >= 5.0)),
        never_loses: cells.iter().all(|c| {
            let floor = [Some(c.blocked_s), c.simd_s, c.naive_s]
                .into_iter()
                .flatten()
                .fold(f64::INFINITY, f64::min);
            within_jitter(c.routed_s, floor)
        }),
        tier_ordered: cells.iter().all(|c| {
            routed_tier_vs_lower(c)
                .is_none_or(|(own, lower)| lower.iter().all(|&l| within_jitter(own, l)))
        }),
        cells,
        solver,
    }
}

/// The `BENCH_hotpaths.json` contents for a run.
pub fn bench_file(p: &Perf) -> BenchFile {
    let gf = |n: usize, wall: f64| 2.0 * (n as f64).powi(3) / wall.max(f64::MIN_POSITIVE) / 1e9;
    let mut entries = Vec::new();
    for c in &p.cells {
        // The naive reference is serial and measured once per size;
        // emit it on the single-thread row only so every entry is a
        // real measurement at its recorded thread count.
        if c.threads == 1 {
            if let Some(t) = c.naive_s {
                entries.push(BenchEntry {
                    id: "sgemm_naive".to_owned(),
                    n: c.n,
                    threads: c.threads,
                    wall_s: t,
                    gflops: gf(c.n, t),
                    backend: "naive".to_owned(),
                });
            }
        }
        entries.push(BenchEntry {
            id: "sgemm_blocked".to_owned(),
            n: c.n,
            threads: c.threads,
            wall_s: c.blocked_s,
            gflops: gf(c.n, c.blocked_s),
            backend: "blocked".to_owned(),
        });
        if let Some(t) = c.simd_s {
            entries.push(BenchEntry {
                id: "sgemm_simd".to_owned(),
                n: c.n,
                threads: c.threads,
                wall_s: t,
                gflops: gf(c.n, t),
                backend: "simd".to_owned(),
            });
        }
        entries.push(BenchEntry {
            id: "sgemm_auto".to_owned(),
            n: c.n,
            threads: c.threads,
            wall_s: c.routed_s,
            gflops: c.gflops,
            backend: c.routed.clone(),
        });
    }
    entries.extend(p.solver.iter().map(|s| {
        // LU is 2n³/3 useful FLOPs, Cholesky n³/3.
        let flops = match s.routine.as_str() {
            "getrf" => 2.0 * (s.n as f64).powi(3) / 3.0,
            _ => (s.n as f64).powi(3) / 3.0,
        };
        BenchEntry {
            id: s.routine.clone(),
            n: s.n,
            threads: p.threads,
            wall_s: s.wall_s,
            gflops: flops / s.wall_s.max(f64::MIN_POSITIVE) / 1e9,
            backend: "auto".to_owned(),
        }
    }));
    BenchFile {
        schema_version: BENCH_SCHEMA_VERSION,
        entries,
    }
}

/// The perf measurement as a registered experiment.
pub struct PerfExperiment;

impl crate::experiment::Experiment for PerfExperiment {
    fn id(&self) -> &'static str {
        "perf"
    }

    fn title(&self) -> &'static str {
        "Perf — GEMM kernel-tier ladder vs naive reference (size × threads)"
    }

    fn device(&self) -> &'static str {
        "host"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        mc_compute::reset_pool_stats();
        let p = run(&ctx.devices, &problem_sizes(&ctx.budgets), &MATRIX_THREADS);
        let stats = mc_compute::pool_stats();
        let counts = mc_obs::PoolCounts::new(
            stats.hits,
            stats.misses,
            stats.recycled,
            stats.discarded,
            stats.allocated_bytes,
        );
        if let Err(e) = ctx.persist_pool_metrics(self.id(), &counts) {
            eprintln!("error: could not write pool metrics: {e}");
        }
        if let Some(dir) = &ctx.json_sink {
            let write = std::fs::create_dir_all(dir).and_then(|()| {
                std::fs::write(
                    dir.join(BENCH_FILE),
                    serde_json::to_string_pretty(&bench_file(&p))
                        .expect("timings are always serializable"),
                )
            });
            if let Err(e) = write {
                eprintln!("error: could not write {BENCH_FILE}: {e}");
            }
        }
        (serde_json::to_value(&p), render(&p))
    }
}

/// Renders the experiment as text.
pub fn render(p: &Perf) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "Perf: host hot-path timings across the kernel-tier ladder (SIMD tier {})\n",
        if p.simd_enabled { "on" } else { "off" }
    );
    let _ = writeln!(
        s,
        "{:>6} {:>4} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}  {:<8} bitwise",
        "N", "thr", "naive_s", "blocked_s", "simd_s", "routed_s", "GF/s", "speedup", "route"
    );
    let opt = |v: Option<f64>| v.map_or("-".to_owned(), |t| format!("{t:.4}"));
    for c in &p.cells {
        let _ = writeln!(
            s,
            "{:>6} {:>4} {:>10} {:>10.4} {:>10} {:>10.4} {:>8.1} {:>8}  {:<8} {}",
            c.n,
            c.threads,
            opt(c.naive_s),
            c.blocked_s,
            opt(c.simd_s),
            c.routed_s,
            c.gflops,
            c.speedup.map_or("-".to_owned(), |sp| format!("{sp:.1}x")),
            c.routed,
            if c.bitwise_equal { "yes" } else { "NO" }
        );
    }
    let full_dim = p.cells.iter().any(|c| c.n >= TARGET_N);
    let verdict = if full_dim {
        if p.meets_target {
            "met, target >= 5x".to_owned()
        } else {
            "MISSED, target >= 5x".to_owned()
        }
    } else {
        format!("informational; the >= 5x target is assessed at n >= {TARGET_N}")
    };
    let _ = writeln!(s, "speedup bar: {verdict}");
    let _ = writeln!(
        s,
        "routed dispatch never loses to a measured tier: {}",
        if p.never_loses { "yes" } else { "NO" }
    );
    let _ = writeln!(
        s,
        "tier ladder order holds in every cell: {}",
        if p.tier_ordered { "yes" } else { "NO" }
    );
    for t in &p.solver {
        let _ = writeln!(
            s,
            "{} n={} nb={}: {:.3} s host wall, {:.1} TFLOPS on the device clock",
            t.routine, t.n, t.block, t.wall_s, t.tflops
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tiers_agree_bitwise_with_naive() {
        let naive = time_naive(96);
        let t = time_gemm(96, rayon::current_num_threads(), Some(&naive));
        assert!(t.bitwise_equal, "a tier diverged from the naive reference");
        assert_eq!(t.naive_s, Some(naive.0));
        assert!(t.blocked_s > 0.0 && t.routed_s > 0.0);
        assert!(t.speedup.is_some());
        assert!(t.gflops > 0.0);
        assert!(t.crossover_n > 0);
    }

    #[test]
    fn capped_cells_check_against_the_blocked_stand_in() {
        // Above NAIVE_CAP_N the cell carries no naive column but the
        // bitwise check still runs (against the blocked output).
        let t = time_gemm(96, rayon::current_num_threads(), None);
        assert_eq!(t.naive_s, None);
        assert_eq!(t.speedup, None);
        assert!(t.bitwise_equal);
    }

    #[test]
    fn problem_sizes_scale_with_budget() {
        // Guard against MC_PERF_N leaking in from the environment.
        if std::env::var("MC_PERF_N").is_ok() {
            return;
        }
        assert_eq!(problem_sizes(&IterBudgets::smoke()), vec![256]);
        assert_eq!(
            problem_sizes(&IterBudgets::reduced()),
            vec![256, 512, 1024, 2048]
        );
        assert_eq!(
            problem_sizes(&IterBudgets::paper()),
            vec![256, 512, 1024, 2048]
        );
    }

    #[test]
    fn bench_file_covers_the_matrix() {
        let p = run(&DeviceRegistry::builtin(), &[64], &[1, 4]);
        let f = bench_file(&p);
        assert_eq!(f.schema_version, BENCH_SCHEMA_VERSION);
        // Naive rides the t=1 row only; blocked and auto cover every
        // cell; simd follows the vector unit; 2 solver routines.
        let simd_ids = if p.simd_enabled { 2 } else { 0 };
        assert_eq!(f.entries.len(), 1 + 2 * 2 + simd_ids + 2);
        assert!(f
            .entries
            .iter()
            .any(|e| e.id == "sgemm_naive" && e.threads == 1 && e.backend == "naive"));
        for threads in [1usize, 4] {
            for id in ["sgemm_blocked", "sgemm_auto"] {
                assert!(
                    f.entries
                        .iter()
                        .any(|e| e.id == id && e.n == 64 && e.threads == threads),
                    "missing {id} cell at t={threads}"
                );
            }
        }
        assert!(f.entries.iter().all(|e| e.wall_s > 0.0 && e.gflops > 0.0));
        assert!(f.entries.iter().all(|e| !e.backend.is_empty()));
    }

    #[test]
    fn render_reports_matrix_and_agreement() {
        let p = run(&DeviceRegistry::builtin(), &[64], &[1]);
        let text = render(&p);
        assert!(text.contains("speedup bar"));
        assert!(text.contains("tier ladder order"));
        assert!(p.cells.iter().all(|c| c.bitwise_equal), "{text}");
        assert!(text.contains("getrf"));
        assert!(text.contains("potrf"));
    }

    #[test]
    fn speedup_target_only_assessed_at_full_dimension() {
        let p = run(&DeviceRegistry::builtin(), &[64], &[1]);
        assert!(
            !p.meets_target,
            "sub-{TARGET_N} runs must not claim the target"
        );
        assert!(render(&p).contains("informational"));
        assert!(!render(&p).contains("MISSED"));
    }

    #[test]
    fn small_cells_route_to_naive_on_one_thread() {
        // At N = 32 on one worker the dispatch must stay on the naive
        // loop (every ladder's crossover covers it), so the routed
        // side cannot structurally lose.
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global();
        let naive = time_naive(32);
        let t = time_gemm(32, 1, Some(&naive));
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global();
        if std::env::var(mc_compute::CROSSOVER_ENV).is_ok() {
            return; // calibration override in force; routing is theirs
        }
        assert_eq!(t.routed, "naive", "crossover edge {}", t.crossover_n);
    }

    #[test]
    fn tier_inversion_check_compares_the_pick_against_lower_rungs() {
        let cell = GemmTiming {
            n: 256,
            threads: 1,
            naive_s: Some(0.5),
            blocked_s: 0.1,
            simd_s: Some(0.02),
            routed_s: 0.02,
            routed: "simd".to_owned(),
            gflops: 1.0,
            speedup: Some(25.0),
            bitwise_equal: true,
            crossover_n: 40,
        };
        let (own, lower) = routed_tier_vs_lower(&cell).unwrap();
        assert_eq!(own, 0.02);
        assert_eq!(lower, vec![0.1, 0.5]);
        // A naive-routed cell has no lower rung to lose to.
        let naive_cell = GemmTiming {
            routed: "naive".to_owned(),
            ..cell
        };
        assert!(routed_tier_vs_lower(&naive_cell).is_none());
    }

    #[test]
    fn experiment_writes_bench_artifact_to_sink() {
        use crate::experiment::{Experiment, RunContext};
        let dir = std::env::temp_dir().join(format!("mc-bench-perf-{}", std::process::id()));
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&dir);
        let record = PerfExperiment.run(&ctx);
        ctx.persist(&record).unwrap();
        let bench: BenchFile =
            serde_json::from_str(&std::fs::read_to_string(dir.join(BENCH_FILE)).unwrap()).unwrap();
        assert_eq!(bench.schema_version, BENCH_SCHEMA_VERSION);
        assert!(!bench.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
