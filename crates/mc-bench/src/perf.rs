//! Hot-path performance experiment: the blocked `mc-compute` kernel
//! against the retained naive reference, plus solver-layer wall times.
//!
//! Every figure in the suite now funnels its GEMM work through
//! [`mc_compute::Blocked`]; this experiment measures what that buys on
//! the host. It times one square f32 GEMM both ways, confirms the two
//! kernels agree bitwise (the optimization contract: same rounding
//! chain, different loop order), and records blocked LU/Cholesky
//! factorization wall times. Alongside the usual envelope it writes a
//! machine-readable `BENCH_hotpaths.json` to the `--json` sink so CI
//! can archive timings as a non-gating artifact.
//!
//! The GEMM dimension defaults to 1024 (256 under smoke budgets) and
//! can be overridden with the `MC_PERF_N` environment variable.

use std::time::Instant;

use mc_blas::BlasHandle;
use mc_compute::{Blocked, Epilogue, GemmParams, MatMul, Naive};
use mc_sim::{DeviceId, DeviceRegistry};
use mc_solver::{factor_timed, Factorization};
use serde::{Deserialize, Serialize};

use crate::experiment::IterBudgets;

/// Layout version of `BENCH_hotpaths.json`.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Name of the timing artifact written to the JSON sink.
pub const BENCH_FILE: &str = "BENCH_hotpaths.json";

/// The naive-vs-blocked GEMM measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GemmTiming {
    /// Square problem dimension (M = N = K).
    pub n: usize,
    /// Naive reference kernel wall time in seconds.
    pub naive_s: f64,
    /// Blocked kernel wall time in seconds.
    pub blocked_s: f64,
    /// `naive_s / blocked_s`.
    pub speedup: f64,
    /// Whether the two kernels produced bitwise-identical results.
    pub bitwise_equal: bool,
}

/// One factorization wall-time measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverTiming {
    /// Routine name (`getrf`/`potrf`).
    pub routine: String,
    /// Problem size.
    pub n: usize,
    /// Panel block size.
    pub block: usize,
    /// Host wall time in seconds.
    pub wall_s: f64,
    /// Useful-FLOP throughput on the simulated device clock.
    pub tflops: f64,
}

/// The GEMM dimension at which the ≥5× speedup bar is assessed. Below
/// it the whole working set fits in cache and the naive loop order is
/// not yet paying for its strided `B` walk, so smaller (smoke-tier)
/// runs report their speedup as informational only.
pub const TARGET_N: usize = 1024;

/// The perf experiment payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Perf {
    /// Rayon worker threads available to the blocked kernel.
    pub threads: usize,
    /// f32 GEMM timing, naive vs blocked.
    pub gemm: GemmTiming,
    /// True when the run was at the full assessment dimension
    /// ([`TARGET_N`]) and the blocked kernel met the ≥5× speedup bar.
    pub meets_target: bool,
    /// Factorization wall times over the routed BLAS-3 blocks.
    pub solver: Vec<SolverTiming>,
}

/// One entry of `BENCH_hotpaths.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable hot-path id (`sgemm_naive`, `sgemm_blocked`, …).
    pub id: String,
    /// Problem dimension.
    pub n: usize,
    /// Host wall time in seconds.
    pub wall_s: f64,
}

/// The schema-versioned timing artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchFile {
    /// Layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Rayon worker threads during the run.
    pub threads: usize,
    /// Timed hot paths.
    pub entries: Vec<BenchEntry>,
}

/// The GEMM dimension for a budget tier: 1024 for the reduced and
/// paper tiers, 256 under smoke budgets, `MC_PERF_N` overriding both.
pub fn problem_size(budgets: &IterBudgets) -> usize {
    if let Some(n) = std::env::var("MC_PERF_N")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    if *budgets == IterBudgets::smoke() {
        256
    } else {
        1024
    }
}

/// Deterministic pseudo-random fill in [-1, 1) (xorshift64*).
fn fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64;
        *v = (mantissa / (1u64 << 23) as f64 * 2.0 - 1.0) as f32;
    }
}

fn time_kernel<K: MatMul>(
    kernel: &K,
    params: &GemmParams,
    a: &[f32],
    b: &[f32],
) -> (f64, Vec<f32>) {
    let m = params.m;
    let n = params.n;
    let c = vec![0.0f32; m * n];
    let mut d = vec![0.0f32; m * n];
    let start = Instant::now();
    kernel
        .gemm::<f32, f32, f32>(params, a, b, &c, &mut d)
        .expect("well-formed problem");
    (start.elapsed().as_secs_f64(), d)
}

/// Times the f32 GEMM hot path both ways and checks bitwise agreement.
pub fn time_gemm(n: usize) -> GemmTiming {
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    fill(&mut b, 0xD1B5_4A32_D192_ED03);
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);

    let (naive_s, d_naive) = time_kernel(&Naive, &params, &a, &b);
    let (blocked_s, d_blocked) = time_kernel(&Blocked, &params, &a, &b);

    GemmTiming {
        n,
        naive_s,
        blocked_s,
        speedup: naive_s / blocked_s.max(f64::MIN_POSITIVE),
        bitwise_equal: d_naive
            .iter()
            .zip(&d_blocked)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
    }
}

/// Runs the perf experiment at the given GEMM dimension.
pub fn run(devices: &DeviceRegistry, n: usize) -> Perf {
    let gemm = time_gemm(n);

    let mut handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
    let block = 128;
    let solver_n = n.max(block * 2);
    let solver = [Factorization::Getrf, Factorization::Potrf]
        .into_iter()
        .map(|kind| {
            let start = Instant::now();
            let perf = factor_timed(&mut handle, kind, solver_n, block).expect("factorization");
            SolverTiming {
                routine: match kind {
                    Factorization::Getrf => "getrf".to_owned(),
                    Factorization::Potrf => "potrf".to_owned(),
                },
                n: solver_n,
                block,
                wall_s: start.elapsed().as_secs_f64(),
                tflops: perf.tflops,
            }
        })
        .collect();

    Perf {
        threads: rayon::current_num_threads(),
        meets_target: n >= TARGET_N && gemm.speedup >= 5.0,
        gemm,
        solver,
    }
}

/// The `BENCH_hotpaths.json` contents for a run.
pub fn bench_file(p: &Perf) -> BenchFile {
    let mut entries = vec![
        BenchEntry {
            id: "sgemm_naive".to_owned(),
            n: p.gemm.n,
            wall_s: p.gemm.naive_s,
        },
        BenchEntry {
            id: "sgemm_blocked".to_owned(),
            n: p.gemm.n,
            wall_s: p.gemm.blocked_s,
        },
    ];
    entries.extend(p.solver.iter().map(|s| BenchEntry {
        id: s.routine.clone(),
        n: s.n,
        wall_s: s.wall_s,
    }));
    BenchFile {
        schema_version: BENCH_SCHEMA_VERSION,
        threads: p.threads,
        entries,
    }
}

/// The perf measurement as a registered experiment.
pub struct PerfExperiment;

impl crate::experiment::Experiment for PerfExperiment {
    fn id(&self) -> &'static str {
        "perf"
    }

    fn title(&self) -> &'static str {
        "Perf — blocked GEMM kernel vs naive reference"
    }

    fn device(&self) -> &'static str {
        "host"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let p = run(&ctx.devices, problem_size(&ctx.budgets));
        if let Some(dir) = &ctx.json_sink {
            let write = std::fs::create_dir_all(dir).and_then(|()| {
                std::fs::write(
                    dir.join(BENCH_FILE),
                    serde_json::to_string_pretty(&bench_file(&p))
                        .expect("timings are always serializable"),
                )
            });
            if let Err(e) = write {
                eprintln!("error: could not write {BENCH_FILE}: {e}");
            }
        }
        (serde_json::to_value(&p), render(&p))
    }
}

/// Renders the experiment as text.
pub fn render(p: &Perf) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Perf: host hot-path timings (blocked mc-compute kernel)\n");
    let verdict = if p.gemm.n >= TARGET_N {
        if p.meets_target {
            "met, target >= 5x".to_owned()
        } else {
            "MISSED, target >= 5x".to_owned()
        }
    } else {
        format!("informational; the >= 5x target is assessed at n >= {TARGET_N}")
    };
    let _ = writeln!(
        s,
        "sgemm {0}x{0}x{0} f32: naive {1:.3} s, blocked {2:.3} s -> {3:.2}x speedup ({4}, {5} threads)",
        p.gemm.n, p.gemm.naive_s, p.gemm.blocked_s, p.gemm.speedup, verdict, p.threads,
    );
    let _ = writeln!(
        s,
        "bitwise agreement with naive reference: {}",
        if p.gemm.bitwise_equal { "yes" } else { "NO" }
    );
    for t in &p.solver {
        let _ = writeln!(
            s,
            "{} n={} nb={}: {:.3} s host wall, {:.1} TFLOPS on the device clock",
            t.routine, t.n, t.block, t.wall_s, t.tflops
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_agrees_bitwise_with_naive() {
        let t = time_gemm(96);
        assert!(t.bitwise_equal, "blocked f32 GEMM diverged from naive");
        assert!(t.naive_s > 0.0 && t.blocked_s > 0.0);
    }

    #[test]
    fn problem_size_scales_with_budget() {
        // Guard against MC_PERF_N leaking in from the environment.
        if std::env::var("MC_PERF_N").is_ok() {
            return;
        }
        assert_eq!(problem_size(&IterBudgets::smoke()), 256);
        assert_eq!(problem_size(&IterBudgets::reduced()), 1024);
        assert_eq!(problem_size(&IterBudgets::paper()), 1024);
    }

    #[test]
    fn bench_file_lists_every_hot_path() {
        let p = run(&DeviceRegistry::builtin(), 64);
        let f = bench_file(&p);
        assert_eq!(f.schema_version, BENCH_SCHEMA_VERSION);
        let ids: Vec<&str> = f.entries.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, ["sgemm_naive", "sgemm_blocked", "getrf", "potrf"]);
        assert!(f.entries.iter().all(|e| e.wall_s > 0.0));
    }

    #[test]
    fn render_reports_speedup_and_agreement() {
        let p = run(&DeviceRegistry::builtin(), 64);
        let text = render(&p);
        assert!(text.contains("speedup"));
        assert!(text.contains("bitwise agreement with naive reference: yes"));
        assert!(text.contains("getrf"));
        assert!(text.contains("potrf"));
    }

    #[test]
    fn speedup_target_only_assessed_at_full_dimension() {
        let p = run(&DeviceRegistry::builtin(), 64);
        assert!(
            !p.meets_target,
            "sub-{TARGET_N} runs must not claim the target"
        );
        assert!(render(&p).contains("informational"));
        assert!(!render(&p).contains("MISSED"));
    }

    #[test]
    fn experiment_writes_bench_artifact_to_sink() {
        use crate::experiment::{Experiment, RunContext};
        let dir = std::env::temp_dir().join(format!("mc-bench-perf-{}", std::process::id()));
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&dir);
        let record = PerfExperiment.run(&ctx);
        ctx.persist(&record).unwrap();
        let bench: BenchFile =
            serde_json::from_str(&std::fs::read_to_string(dir.join(BENCH_FILE)).unwrap()).unwrap();
        assert_eq!(bench.schema_version, BENCH_SCHEMA_VERSION);
        assert!(!bench.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
