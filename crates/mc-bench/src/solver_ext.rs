//! Extension experiment: Matrix Core utilization at the LAPACK layer.
//!
//! The paper's Fig. 2 hierarchy ends with "Applications and HPC
//! Libraries" — rocSOLVER "relies on rocBLAS to execute matrix
//! operations, which naturally leads to opportunistic leveraging of
//! Matrix Cores" (§III). This experiment quantifies that claim with the
//! same counter methodology as Fig. 8, applied to blocked Cholesky and
//! LU factorizations: the Matrix Core FLOP share grows with `N/nb`
//! toward 100 % as the GEMM trailing updates dominate.

use mc_blas::BlasHandle;
use mc_sim::{DeviceId, DeviceRegistry};
use mc_solver::{factor_timed, Factorization};
use serde::{Deserialize, Serialize};

/// One factorization measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverPoint {
    /// Problem size.
    pub n: usize,
    /// Useful-FLOP throughput in TFLOPS.
    pub tflops: f64,
    /// Matrix Core FLOP share (Eq. 1 counters).
    pub matrix_core_ratio: f64,
}

/// One factorization's sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverSeries {
    /// Routine name (`potrf`/`getrf`).
    pub routine: String,
    /// Block size used.
    pub block: usize,
    /// Per-N measurements.
    pub points: Vec<SolverPoint>,
}

/// The extension experiment result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverExt {
    /// POTRF and GETRF series.
    pub series: Vec<SolverSeries>,
}

/// Runs the solver-layer utilization sweep.
pub fn run(devices: &DeviceRegistry) -> SolverExt {
    let mut handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
    let sizes = [256usize, 512, 1024, 2048, 4096, 8192];
    let block = 128;
    let series = [Factorization::Potrf, Factorization::Getrf]
        .into_iter()
        .map(|kind| {
            let points = sizes
                .iter()
                .map(|&n| {
                    let perf = factor_timed(&mut handle, kind, n, block).expect("factorization");
                    SolverPoint {
                        n,
                        tflops: perf.tflops,
                        matrix_core_ratio: perf.matrix_core_ratio,
                    }
                })
                .collect();
            SolverSeries {
                routine: match kind {
                    Factorization::Potrf => "potrf".to_owned(),
                    Factorization::Getrf => "getrf".to_owned(),
                },
                block,
                points,
            }
        })
        .collect();
    SolverExt { series }
}

/// The solver extension as a registered experiment.
pub struct SolverExtExperiment;

impl crate::experiment::Experiment for SolverExtExperiment {
    fn id(&self) -> &'static str {
        "solver"
    }

    fn title(&self) -> &'static str {
        "Extension — Matrix Core utilization at the LAPACK layer"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let s = run(&ctx.devices);
        (serde_json::to_value(&s), render(&s))
    }
}

/// Renders the experiment as text.
pub fn render(s: &SolverExt) -> String {
    use std::fmt::Write as _;
    let mut out =
        String::from("Extension: Matrix Core utilization at the LAPACK (rocSOLVER) layer\n");
    for series in &s.series {
        let _ = writeln!(out, "-- {} (nb = {}) --", series.routine, series.block);
        let _ = writeln!(out, "{:>8} {:>10} {:>12}", "N", "TFLOPS", "MC share");
        for p in &series.points {
            let _ = writeln!(
                out,
                "{:>8} {:>10.2} {:>11.1}%",
                p.n,
                p.tflops,
                p.matrix_core_ratio * 100.0
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_core_share_grows_toward_one() {
        let s = run(&DeviceRegistry::builtin());
        for series in &s.series {
            let ratios: Vec<f64> = series.points.iter().map(|p| p.matrix_core_ratio).collect();
            assert!(
                ratios.windows(2).all(|w| w[1] >= w[0] - 1e-9),
                "{}: {ratios:?}",
                series.routine
            );
            assert!(
                *ratios.last().unwrap() > 0.97,
                "{}: {ratios:?}",
                series.routine
            );
        }
    }

    #[test]
    fn throughput_grows_with_n() {
        let s = run(&DeviceRegistry::builtin());
        for series in &s.series {
            let t: Vec<f64> = series.points.iter().map(|p| p.tflops).collect();
            assert!(
                t.last().unwrap() > t.first().unwrap(),
                "{}: {t:?}",
                series.routine
            );
        }
    }

    #[test]
    fn lu_does_twice_the_work_of_cholesky() {
        // Same trailing-update structure; LU's useful-FLOP count is 2x.
        let s = run(&DeviceRegistry::builtin());
        let potrf = &s.series[0].points;
        let getrf = &s.series[1].points;
        let p = potrf.last().unwrap();
        let g = getrf.last().unwrap();
        // Throughputs are same order; both GEMM-bound at large N.
        assert!(g.tflops / p.tflops > 0.5 && g.tflops / p.tflops < 2.5);
    }
}
