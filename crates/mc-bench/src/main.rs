//! `experiments` — regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <artifact|all> [--json DIR] [--trace DIR] [--metrics DIR]
//!             [--paper-iters] [--jobs N]
//!   artifact: any id from the experiment registry (table1 … report)
//!   all         run every registered experiment once, in parallel
//!               (the host-timed `perf` and `hostprof` studies run at
//!               their smoke dimension here; invoke `experiments perf`
//!               or `experiments hostprof` directly for the full 1024³
//!               measurements)
//!   --json DIR  also write each result as a schema-versioned JSON
//!               envelope into DIR (one file per experiment); with span
//!               capture on (`--trace`/`--metrics`) the per-kernel
//!               attribution ledger lands next to each envelope as
//!               DIR/<artifact>.attribution.jsonl
//!   --trace DIR also capture each experiment's execution timeline and
//!               write it as Chrome trace-event JSON (Perfetto-loadable)
//!               to DIR/<artifact>.trace.json
//!   --metrics DIR  also export each experiment's attribution aggregates
//!               as OpenMetrics text exposition to DIR/<artifact>.om
//!               (activates span capture like --trace)
//!   --paper-iters  full 40 M / 10⁷ / 110 s-sampling budgets instead of
//!                  the reduced defaults (results are iteration-exact on
//!                  the simulator)
//!   --jobs N    cap parallelism: at most N experiments run at once
//!               under `all`, and the shared rayon pool that intra-
//!               experiment sweeps draw from is sized to N workers
//!               (default: one thread per experiment, rayon sized to
//!               the machine)
//! ```
//!
//! The artifact list and usage text are generated from
//! [`mc_bench::experiment::registry`], so a newly registered experiment
//! shows up everywhere without touching this driver.

use std::process::exit;

use mc_bench::experiment::{registry, Experiment, ExperimentRecord, IterBudgets, RunContext};
use mc_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact = None;
    let mut json_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut metrics_dir: Option<String> = None;
    let mut paper_iters = false;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--json needs a directory"))
                        .clone(),
                );
            }
            "--trace" => {
                trace_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--trace needs a directory"))
                        .clone(),
                );
            }
            "--metrics" => {
                metrics_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--metrics needs a directory"))
                        .clone(),
                );
            }
            "--paper-iters" => paper_iters = true,
            "--jobs" => {
                let n = it
                    .next()
                    .unwrap_or_else(|| usage("--jobs needs a positive thread count"))
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--jobs needs a positive thread count"));
                jobs = Some(n);
            }
            name if artifact.is_none() => artifact = Some(name.to_owned()),
            other => usage(&format!("unexpected argument `{other}`")),
        }
    }
    let artifact = artifact.unwrap_or_else(|| usage("missing artifact name"));

    if let Some(n) = jobs {
        // One global pool: experiment worker threads and intra-
        // experiment sweeps share the same N-worker rayon budget, so
        // total concurrency tracks --jobs instead of multiplying by it.
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("configure global rayon pool");
    }

    let mut ctx = RunContext::new(IterBudgets::for_flag(paper_iters));
    if let Some(dir) = &json_dir {
        ctx = ctx.with_sink(dir);
    }
    if let Some(dir) = &trace_dir {
        ctx = ctx.with_trace(dir);
    }
    if let Some(dir) = &metrics_dir {
        ctx = ctx.with_metrics(dir);
    }

    let experiments = registry();
    if artifact == "all" {
        run_all(&experiments, &ctx, jobs);
    } else {
        let Some(exp) = experiments.iter().find(|e| e.id() == artifact) else {
            usage(&format!("unknown artifact `{artifact}`"))
        };
        let record = exp.run(&ctx);
        println!("{}", record.rendered);
        persist(&ctx, &record);
        fail_on_gate_errors(&record);
    }
}

/// Gate artifacts fail the driver: any error-severity lint diagnostic,
/// any trace-timeline violation, any counter cross-check mismatch, or
/// any perf-diff regression against the committed baselines (or an
/// unreadable count, which means the wiring broke) exits non-zero so
/// CI fails.
fn fail_on_gate_errors(record: &ExperimentRecord) {
    let gates: &[(&str, &str)] = match record.experiment.as_str() {
        "lint" => &[("/total_errors", "error diagnostic(s)")],
        "regress" => &[("/regressions", "regression(s) against the baseline")],
        "trace" => &[
            ("/total_violations", "timeline violation(s)"),
            (
                "/total_counter_mismatches",
                "counter cross-check mismatch(es)",
            ),
        ],
        "insight" => &[
            ("/unclassified", "unclassified kernel launch(es)"),
            ("/regime_inconsistent", "regime-inconsistent verdict(s)"),
            (
                "/drift_out_of_band",
                "model-drift observation(s) outside the calibrated band",
            ),
        ],
        "hostprof" => &[
            (
                "/overhead_exceeded",
                "traced run(s) over the host-tracing overhead budget",
            ),
            (
                "/bitwise_mismatches",
                "traced-vs-untraced bitwise mismatch(es)",
            ),
            ("/total_violations", "unified-timeline violation(s)"),
            (
                "/reconcile_failures",
                "region(s) whose phase times fail to reconcile to wall time",
            ),
            (
                "/unified_missing",
                "timeline plane(s) missing from the unified trace",
            ),
        ],
        _ => return,
    };
    for (pointer, what) in gates {
        let count = record
            .payload
            .pointer(pointer)
            .and_then(serde::Value::as_f64);
        if count != Some(0.0) {
            eprintln!(
                "error: {} sweep found {} {what}",
                record.experiment,
                count.map_or("an unreadable count of".to_owned(), |e| format!("{e}"))
            );
            exit(1);
        }
    }
}

/// Runs every registered experiment exactly once: the independent ones
/// in parallel on worker threads (at most `--jobs N` at a time), then
/// `report` from their in-memory records. Output is printed in registry
/// order regardless of which thread finishes first.
///
/// The host-timed experiments (`perf`, `hostprof`) run at their smoke
/// dimension here: their wall times at the full 1024³ GEMM would
/// dominate the whole suite's wall-clock (the simulator experiments
/// are analytic and finish in milliseconds), and `hostprof`'s
/// traced-vs-untraced comparison needs an uncontended machine the
/// parallel suite cannot provide. The full measurements are one
/// `experiments perf` / `experiments hostprof` away, and each record's
/// `config` field reflects the budgets it ran under.
fn run_all(experiments: &[Box<dyn Experiment>], ctx: &RunContext, jobs: Option<usize>) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let independent: Vec<&Box<dyn Experiment>> =
        experiments.iter().filter(|e| e.id() != "report").collect();
    let workers = jobs
        .unwrap_or(independent.len())
        .clamp(1, independent.len().max(1));
    let smoke_ctx = RunContext {
        budgets: IterBudgets::smoke(),
        ..ctx.clone()
    };
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ExperimentRecord>>> =
        independent.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = independent.get(i) else {
                    break;
                };
                let exp_ctx = if matches!(exp.id(), "perf" | "hostprof") {
                    &smoke_ctx
                } else {
                    ctx
                };
                *slots[i].lock().expect("slot lock") = Some(exp.run(exp_ctx));
            });
        }
    })
    .expect("worker scope");
    let records: Vec<ExperimentRecord> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every experiment ran")
        })
        .collect();

    for record in &records {
        println!("{}", record.rendered);
        persist(ctx, record);
        fail_on_gate_errors(record);
    }

    // `report` aggregates the records just produced — no re-running.
    if let Some(report_exp) = experiments.iter().find(|e| e.id() == "report") {
        let paper_report = report::from_records(&records);
        let rendered = format!(
            "{}{}(from this run's {} records)\n",
            report::render(&paper_report),
            report::render_insight_lines(&records),
            records.len()
        );
        let record = ExperimentRecord {
            schema_version: mc_bench::experiment::SCHEMA_VERSION,
            experiment: report_exp.id().to_owned(),
            title: report_exp.title().to_owned(),
            device: report_exp.device().to_owned(),
            config: ctx.budgets,
            wall_time_s: records.iter().map(|r| r.wall_time_s).sum(),
            checks: Vec::new(),
            rendered,
            payload: serde_json::to_value(&paper_report),
        };
        println!("{}", record.rendered);
        persist(ctx, &record);
    }
}

fn persist(ctx: &RunContext, record: &ExperimentRecord) {
    match ctx.persist(record) {
        Ok(Some(path)) => eprintln!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!(
                "error: could not write record for `{}`: {e}",
                record.experiment
            );
            exit(1);
        }
    }
}

fn usage(msg: &str) -> ! {
    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments <{}|all> [--json DIR] [--trace DIR] [--metrics DIR] [--paper-iters] [--jobs N]",
        ids.join("|")
    );
    exit(2)
}
