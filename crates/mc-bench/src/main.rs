//! `experiments` — regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <artifact> [--json DIR]
//!   artifact: table1 | table2 | table3 | fig3 | fig4 | fig5 | fig6 |
//!             fig7 | fig8 | fig9 | all
//!   --json DIR  also write the result as JSON into DIR
//! ```
//!
//! Throughput/latency experiments use reduced loop iterations by default
//! (results on the simulator are iteration-exact); pass `--paper-iters`
//! to run the full 40 M / 10⁷ / 100 s-sampling configurations.

use std::io::Write as _;

use mc_bench::{
    fig2, fig3, fig4, generations, fig5, fig6, fig7, fig8, fig9, ml_dtypes, report, saturation, solver_ext, table1, table2, table3,
};
use mc_power::SamplerConfig;

struct Options {
    json_dir: Option<String>,
    paper_iters: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact = None;
    let mut opts = Options {
        json_dir: None,
        paper_iters: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                opts.json_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--json needs a directory"))
                        .clone(),
                );
            }
            "--paper-iters" => opts.paper_iters = true,
            name if artifact.is_none() => artifact = Some(name.to_owned()),
            other => usage(&format!("unexpected argument `{other}`")),
        }
    }
    let artifact = artifact.unwrap_or_else(|| usage("missing artifact name"));

    let list: Vec<&str> = if artifact == "all" {
        vec![
            "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "solver", "mldtypes", "generations", "saturation", "saturation",
        ]
    } else {
        vec![artifact.as_str()]
    };

    for name in list {
        let (text, json) = run_one(name, &opts);
        println!("{text}");
        if let Some(dir) = &opts.json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{name}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("wrote {path}");
        }
    }
}

fn run_one(name: &str, opts: &Options) -> (String, String) {
    let micro_iters = if opts.paper_iters { 40_000_000 } else { 1_000_000 };
    let tput_iters = if opts.paper_iters { 10_000_000 } else { 200_000 };
    let power_iters = 6_000_000_000; // ≥110 s simulated per point
    match name {
        "table1" => {
            let r = table1::run();
            (table1::render(&r), to_json(&r))
        }
        "table2" => {
            let r = table2::run(micro_iters);
            (table2::render(&r), to_json(&r))
        }
        "table3" => {
            let r = table3::run();
            (table3::render(&r), to_json(&r))
        }
        "fig2" => {
            let r = fig2::run();
            (fig2::render(&r), to_json(&r))
        }
        "fig3" => {
            let r = fig3::run(tput_iters);
            (fig3::render(&r), to_json(&r))
        }
        "fig4" => {
            let r = fig4::run(tput_iters);
            (fig4::render(&r), to_json(&r))
        }
        "fig5" => {
            let r = fig5::run(power_iters, SamplerConfig::default());
            (fig5::render(&r), to_json(&r))
        }
        "fig6" => {
            let r = fig6::run();
            (fig6::render(&r), to_json(&r))
        }
        "fig7" => {
            let r = fig7::run();
            (fig7::render(&r), to_json(&r))
        }
        "fig8" => {
            let r = fig8::run();
            (fig8::render(&r), to_json(&r))
        }
        "fig9" => {
            let r = fig9::run();
            (fig9::render(&r), to_json(&r))
        }
        "solver" => {
            let r = solver_ext::run();
            (solver_ext::render(&r), to_json(&r))
        }
        "saturation" => {
            let r = saturation::run(0.9);
            (saturation::render(&r), to_json(&r))
        }
        "report" => {
            let r = report::run();
            (report::render(&r), to_json(&r))
        }
        "generations" => {
            let r = generations::run(tput_iters);
            (generations::render(&r), to_json(&r))
        }
        "mldtypes" => {
            let r = ml_dtypes::run(tput_iters);
            (ml_dtypes::render(&r), to_json(&r))
        }
        other => usage(&format!("unknown artifact `{other}`")),
    }
}

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serializable results")
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments <table1|table2|table3|fig3..fig9|solver|mldtypes|report|all> \
         [--json DIR] [--paper-iters]"
    );
    std::process::exit(2)
}
