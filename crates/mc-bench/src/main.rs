//! `experiments` — regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <artifact|all> [--json DIR] [--trace DIR] [--paper-iters]
//!   artifact: any id from the experiment registry (table1 … report)
//!   all         run every registered experiment once, in parallel
//!   --json DIR  also write each result as a schema-versioned JSON
//!               envelope into DIR (one file per experiment)
//!   --trace DIR also capture each experiment's execution timeline and
//!               write it as Chrome trace-event JSON (Perfetto-loadable)
//!               to DIR/<artifact>.trace.json
//!   --paper-iters  full 40 M / 10⁷ / 110 s-sampling budgets instead of
//!                  the reduced defaults (results are iteration-exact on
//!                  the simulator)
//! ```
//!
//! The artifact list and usage text are generated from
//! [`mc_bench::experiment::registry`], so a newly registered experiment
//! shows up everywhere without touching this driver.

use std::process::exit;

use mc_bench::experiment::{registry, Experiment, ExperimentRecord, IterBudgets, RunContext};
use mc_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact = None;
    let mut json_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut paper_iters = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--json needs a directory"))
                        .clone(),
                );
            }
            "--trace" => {
                trace_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--trace needs a directory"))
                        .clone(),
                );
            }
            "--paper-iters" => paper_iters = true,
            name if artifact.is_none() => artifact = Some(name.to_owned()),
            other => usage(&format!("unexpected argument `{other}`")),
        }
    }
    let artifact = artifact.unwrap_or_else(|| usage("missing artifact name"));

    let mut ctx = RunContext::new(IterBudgets::for_flag(paper_iters));
    if let Some(dir) = &json_dir {
        ctx = ctx.with_sink(dir);
    }
    if let Some(dir) = &trace_dir {
        ctx = ctx.with_trace(dir);
    }

    let experiments = registry();
    if artifact == "all" {
        run_all(&experiments, &ctx);
    } else {
        let Some(exp) = experiments.iter().find(|e| e.id() == artifact) else {
            usage(&format!("unknown artifact `{artifact}`"))
        };
        let record = exp.run(&ctx);
        println!("{}", record.rendered);
        persist(&ctx, &record);
        fail_on_gate_errors(&record);
    }
}

/// Gate artifacts fail the driver: any error-severity lint diagnostic,
/// any trace-timeline violation, or any counter cross-check mismatch
/// (or an unreadable count, which means the wiring broke) exits
/// non-zero so CI fails.
fn fail_on_gate_errors(record: &ExperimentRecord) {
    let gates: &[(&str, &str)] = match record.experiment.as_str() {
        "lint" => &[("/total_errors", "error diagnostic(s)")],
        "trace" => &[
            ("/total_violations", "timeline violation(s)"),
            (
                "/total_counter_mismatches",
                "counter cross-check mismatch(es)",
            ),
        ],
        _ => return,
    };
    for (pointer, what) in gates {
        let count = record
            .payload
            .pointer(pointer)
            .and_then(serde::Value::as_f64);
        if count != Some(0.0) {
            eprintln!(
                "error: {} sweep found {} {what}",
                record.experiment,
                count.map_or("an unreadable count of".to_owned(), |e| format!("{e}"))
            );
            exit(1);
        }
    }
}

/// Runs every registered experiment exactly once: the independent ones
/// in parallel on worker threads, then `report` from their in-memory
/// records. Output is printed in registry order regardless of which
/// thread finishes first.
fn run_all(experiments: &[Box<dyn Experiment>], ctx: &RunContext) {
    let independent: Vec<&Box<dyn Experiment>> =
        experiments.iter().filter(|e| e.id() != "report").collect();
    let records: Vec<ExperimentRecord> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = independent
            .iter()
            .map(|exp| s.spawn(move |_| exp.run(ctx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
    .expect("worker scope");

    for record in &records {
        println!("{}", record.rendered);
        persist(ctx, record);
        fail_on_gate_errors(record);
    }

    // `report` aggregates the records just produced — no re-running.
    if let Some(report_exp) = experiments.iter().find(|e| e.id() == "report") {
        let paper_report = report::from_records(&records);
        let rendered = format!(
            "{}(from this run's {} records)\n",
            report::render(&paper_report),
            records.len()
        );
        let record = ExperimentRecord {
            schema_version: mc_bench::experiment::SCHEMA_VERSION,
            experiment: report_exp.id().to_owned(),
            title: report_exp.title().to_owned(),
            device: report_exp.device().to_owned(),
            config: ctx.budgets,
            wall_time_s: records.iter().map(|r| r.wall_time_s).sum(),
            checks: Vec::new(),
            rendered,
            payload: serde_json::to_value(&paper_report),
        };
        println!("{}", record.rendered);
        persist(ctx, &record);
    }
}

fn persist(ctx: &RunContext, record: &ExperimentRecord) {
    match ctx.persist(record) {
        Ok(Some(path)) => eprintln!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!(
                "error: could not write record for `{}`: {e}",
                record.experiment
            );
            exit(1);
        }
    }
}

fn usage(msg: &str) -> ! {
    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments <{}|all> [--json DIR] [--trace DIR] [--paper-iters]",
        ids.join("|")
    );
    exit(2)
}
