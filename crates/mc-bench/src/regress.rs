//! Gate — the `perf-diff` regression detector over committed baselines.
//!
//! Compares the current run's record envelopes (the `--json` sink) and
//! the `BENCH_hotpaths.json` timing artifact against a committed
//! baseline directory, using [`mc_obs::diff`]. The baseline defaults to
//! `results/` and is overridden with the `MC_REGRESS_BASELINE`
//! environment variable, so CI can snapshot the committed envelopes
//! before regenerating them and then gate the fresh run against the
//! snapshot.
//!
//! Tolerance policy (see `docs/OBSERVABILITY.md`):
//!
//! - Simulator fidelity metrics (every recorded [`Check`] measurement)
//!   are deterministic, so they diff symmetrically at
//!   [`mc_obs::DEFAULT_TOLERANCE_REL`] — any visible drift means
//!   behaviour changed and the baseline must be re-committed on purpose.
//! - Power-plane metrics inherit [`mc_obs::power_noise_tolerance`],
//!   derived from the pinned SMI noise model at the registry's
//!   `telemetry_noise` amplitude over the sampler's minimum sample
//!   count.
//! - `BENCH_hotpaths.json` host wall times diff lower-is-better at a
//!   100% tolerance plus a [`BENCH_NOISE_FLOOR_S`] absolute slack:
//!   only a slowdown that is both >2× and more than a quarter second
//!   gates, so millisecond-scale smoke cells measured under full-suite
//!   contention cannot gate on scheduler noise. Entries are keyed
//!   `bench/<id>/n<N>/t<T>`, so cells only pair when problem dimension
//!   and thread count both match; cells present on one side only are
//!   reported as added/removed, never gated. A baseline written by an
//!   older schema fails to parse and is skipped gracefully.
//! - `CALIBRATE_crossover.json` (the calibrate example's tier sweep,
//!   see [`mc_compute::calibrate`]) diffs under the same lower-is-better
//!   policy and noise floor, keyed `calibrate/<tier>/n<N>/t<T>`. Rows
//!   whose naive tier was not timed contribute no naive cell, and when
//!   the two sides disagree on SIMD vector availability the simd cells
//!   are skipped wholesale — a scalar-fallback timing paired against a
//!   vector timing would gate on hardware, not on a regression.
//!
//! Pairs whose [`IterBudgets`](crate::experiment::IterBudgets) differ
//! between baseline and current are
//! skipped: a budget change legitimately moves measured values.
//!
//! Under `experiments all` this experiment runs concurrently with the
//! others, *before* their fresh envelopes are persisted, so it compares
//! the sink directory against itself (vacuously stable). The gating
//! invocation is a standalone `experiments regress --json DIR` after a
//! suite run, which is how CI wires it.

use std::path::PathBuf;

use mc_compute::calibrate::{CalibrateFile, CALIBRATE_FILE, CALIBRATE_SCHEMA_VERSION};
use mc_obs::{diff, power_noise_tolerance, DiffReport, Direction, Sample, DEFAULT_TOLERANCE_REL};
use mc_sim::DeviceId;
use serde::{Deserialize, Serialize};

use crate::experiment::{load_records, Check, ExperimentRecord, RunContext};
use crate::perf::{BenchFile, BENCH_FILE};

/// Environment variable naming the baseline directory (default:
/// `results/`).
pub const BASELINE_ENV: &str = "MC_REGRESS_BASELINE";

/// Host wall times vary machine to machine: only a >2x slowdown on the
/// same dimensions and thread count gates.
pub const BENCH_TOLERANCE_REL: f64 = 1.0;

/// Absolute slack added to the bench tolerance: a slowdown only gates
/// when it also exceeds this many seconds of wall time. Under
/// `experiments all` the smoke-tier perf cells are measured while the
/// whole suite contends for the runner's cores, so a ~20 ms quiet
/// baseline cell can read 3–4× slower from scheduler wake-ups alone;
/// a purely relative band would gate on that noise. Catastrophic
/// kernel regressions at the dimensions that matter move wall times
/// by whole multiples of a quarter second and still gate.
pub const BENCH_NOISE_FLOOR_S: f64 = 0.25;

/// The regress experiment payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Regress {
    /// Baseline directory the run compared against.
    pub baseline_dir: String,
    /// Current-run directory (the `--json` sink).
    pub current_dir: String,
    /// Relative tolerance applied to power-plane metrics.
    pub power_tolerance_rel: f64,
    /// Keys compared (including added/removed).
    pub compared: usize,
    /// Regressed keys — the gate count.
    pub regressions: usize,
    /// Improved keys (lower-is-better metrics only).
    pub improved: usize,
    /// Experiments skipped with the reason (budget mismatch, missing
    /// or schema-incompatible artifact).
    pub skipped: Vec<String>,
    /// The full diff.
    pub report: DiffReport,
}

fn baseline_dir() -> PathBuf {
    std::env::var(BASELINE_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Whether a recorded check metric belongs to the noisy power plane.
fn is_power_metric(experiment: &str, metric: &str) -> bool {
    experiment == "fig5"
        || metric.contains("(W)")
        || metric.contains("GFLOPS/W")
        || metric.contains("power")
}

/// Flattens record envelopes into diff samples: one per evaluated
/// check, keyed by the check's stable metric label. Pairs whose
/// iteration budgets differ are dropped into `skipped` instead.
fn record_samples(
    baseline: &[ExperimentRecord],
    current: &[ExperimentRecord],
    power_tol: f64,
    skipped: &mut Vec<String>,
) -> (Vec<Sample>, Vec<Sample>) {
    let comparable = |r: &&ExperimentRecord| {
        let Some(other) = baseline.iter().find(|b| b.experiment == r.experiment) else {
            return true; // new experiment: surfaces as Added
        };
        if other.config == r.config {
            return true;
        }
        skipped.push(format!(
            "{}: iteration budgets differ between baseline and current",
            r.experiment
        ));
        false
    };
    let flatten = |records: &[ExperimentRecord], keep: &[String]| {
        records
            .iter()
            .filter(|r| keep.contains(&r.experiment))
            .flat_map(|r| {
                let id = r.experiment.clone();
                r.checks
                    .iter()
                    .map(move |c| Sample {
                        key: c.metric.clone(),
                        value: c.measured,
                        direction: Direction::Symmetric,
                        tolerance_rel: if is_power_metric(&id, &c.metric) {
                            power_tol
                        } else {
                            DEFAULT_TOLERANCE_REL
                        },
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    let keep: Vec<String> = current
        .iter()
        .filter(comparable)
        .map(|r| r.experiment.clone())
        .collect();
    (flatten(baseline, &keep), flatten(current, &keep))
}

/// Flattens a `BENCH_hotpaths.json` pair into lower-is-better samples
/// keyed `bench/<id>/n<N>/t<T>`. The key carries the problem dimension
/// and thread count, so cells only pair when both match; anything else
/// surfaces as added/removed (reported, never gated).
fn bench_samples(
    baseline: Option<&BenchFile>,
    current: Option<&BenchFile>,
    skipped: &mut Vec<String>,
) -> (Vec<Sample>, Vec<Sample>) {
    let (Some(b), Some(c)) = (baseline, current) else {
        if baseline.is_some() != current.is_some() {
            skipped.push(format!("{BENCH_FILE}: present on only one side"));
        }
        return (Vec::new(), Vec::new());
    };
    let key_of = |e: &crate::perf::BenchEntry| format!("bench/{}/n{}/t{}", e.id, e.n, e.threads);
    let base_wall: std::collections::HashMap<String, f64> =
        b.entries.iter().map(|e| (key_of(e), e.wall_s)).collect();
    let flatten = |f: &BenchFile, widen: bool| {
        f.entries
            .iter()
            .map(|e| {
                let key = key_of(e);
                // The current side's tolerance governs the diff, so the
                // absolute noise floor is folded into it relative to the
                // paired baseline wall time (change_rel is baseline-
                // relative): gate only past 2x AND the floor.
                let tolerance_rel = if widen {
                    match base_wall.get(&key) {
                        Some(&w) if w > 0.0 => BENCH_TOLERANCE_REL.max(BENCH_NOISE_FLOOR_S / w),
                        _ => BENCH_TOLERANCE_REL,
                    }
                } else {
                    BENCH_TOLERANCE_REL
                };
                Sample {
                    key,
                    value: e.wall_s,
                    direction: Direction::LowerIsBetter,
                    tolerance_rel,
                }
            })
            .collect::<Vec<_>>()
    };
    (flatten(b, false), flatten(c, true))
}

/// Reads and validates a timing artifact. A file written by a different
/// schema version (or not parseable as the current one) is treated as
/// absent, which downstream reports as a skip instead of gating.
fn load_bench(dir: &std::path::Path) -> Option<BenchFile> {
    let text = std::fs::read_to_string(dir.join(BENCH_FILE)).ok()?;
    let f: BenchFile = serde_json::from_str(&text).ok()?;
    (f.schema_version == crate::perf::BENCH_SCHEMA_VERSION).then_some(f)
}

/// Reads and validates the calibrate example's tier-sweep artifact
/// under the same treat-mismatch-as-absent policy as [`load_bench`].
fn load_calibrate(dir: &std::path::Path) -> Option<CalibrateFile> {
    let text = std::fs::read_to_string(dir.join(CALIBRATE_FILE)).ok()?;
    let f: CalibrateFile = serde_json::from_str(&text).ok()?;
    (f.schema_version == CALIBRATE_SCHEMA_VERSION).then_some(f)
}

/// Flattens a `CALIBRATE_crossover.json` pair into lower-is-better
/// samples keyed `calibrate/<tier>/n<N>/t<T>`, under the bench
/// tolerance and absolute noise floor. Untimed naive rows contribute
/// no cell; simd cells are skipped when the sides disagree on vector
/// availability (scalar fallback vs AVX2 is hardware, not regression).
fn calibrate_samples(
    baseline: Option<&CalibrateFile>,
    current: Option<&CalibrateFile>,
    skipped: &mut Vec<String>,
) -> (Vec<Sample>, Vec<Sample>) {
    let (Some(b), Some(c)) = (baseline, current) else {
        if baseline.is_some() != current.is_some() {
            skipped.push(format!("{CALIBRATE_FILE}: present on only one side"));
        }
        return (Vec::new(), Vec::new());
    };
    let keep_simd = b.simd_vector == c.simd_vector;
    if !keep_simd {
        skipped.push(format!(
            "{CALIBRATE_FILE}: simd cells skipped (vector availability differs)"
        ));
    }
    let cells = |f: &CalibrateFile| {
        let mut v: Vec<(String, f64)> = Vec::new();
        for r in &f.rows {
            let key = |tier: &str| format!("calibrate/{tier}/n{}/t{}", r.n, f.threads);
            if let Some(naive) = r.naive_s {
                v.push((key("naive"), naive));
            }
            v.push((key("blocked"), r.blocked_s));
            if keep_simd {
                v.push((key("simd"), r.simd_s));
            }
        }
        v
    };
    let base_cells = cells(b);
    let base_wall: std::collections::HashMap<String, f64> = base_cells.iter().cloned().collect();
    let flatten = |cells: Vec<(String, f64)>, widen: bool| {
        cells
            .into_iter()
            .map(|(key, wall_s)| {
                let tolerance_rel = if widen {
                    match base_wall.get(&key) {
                        Some(&w) if w > 0.0 => BENCH_TOLERANCE_REL.max(BENCH_NOISE_FLOOR_S / w),
                        _ => BENCH_TOLERANCE_REL,
                    }
                } else {
                    BENCH_TOLERANCE_REL
                };
                Sample {
                    key,
                    value: wall_s,
                    direction: Direction::LowerIsBetter,
                    tolerance_rel,
                }
            })
            .collect::<Vec<_>>()
    };
    (flatten(base_cells, false), flatten(cells(c), true))
}

/// Runs the comparison between a baseline directory and the current
/// run's sink directory.
pub fn run(ctx: &RunContext) -> Result<Regress, String> {
    let baseline = baseline_dir();
    let current = ctx
        .json_sink
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"));
    let baseline_records = load_records(&baseline)?;
    let current_records = load_records(&current)?;

    let power_tol = power_noise_tolerance(
        ctx.devices.config(DeviceId::Mi250x).telemetry_noise,
        ctx.sampler.min_samples,
    );
    let mut skipped = Vec::new();
    let (mut base_samples, mut cur_samples) =
        record_samples(&baseline_records, &current_records, power_tol, &mut skipped);
    let (bench_base, bench_cur) = bench_samples(
        load_bench(&baseline).as_ref(),
        load_bench(&current).as_ref(),
        &mut skipped,
    );
    base_samples.extend(bench_base);
    cur_samples.extend(bench_cur);
    let (cal_base, cal_cur) = calibrate_samples(
        load_calibrate(&baseline).as_ref(),
        load_calibrate(&current).as_ref(),
        &mut skipped,
    );
    base_samples.extend(cal_base);
    cur_samples.extend(cal_cur);

    let report = diff(&base_samples, &cur_samples);
    Ok(Regress {
        baseline_dir: baseline.display().to_string(),
        current_dir: current.display().to_string(),
        power_tolerance_rel: power_tol,
        compared: report.entries.len(),
        regressions: report.regressions(),
        improved: report.improved(),
        skipped,
        report,
    })
}

/// Renders the comparison as text.
pub fn render(r: &Regress) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Regress: perf-diff against committed baselines\n");
    let _ = writeln!(
        s,
        "baseline {} vs current {} (power tolerance {:.3}%)",
        r.baseline_dir,
        r.current_dir,
        r.power_tolerance_rel * 100.0
    );
    for reason in &r.skipped {
        let _ = writeln!(s, "skipped {reason}");
    }
    s.push_str(&r.report.render());
    let verdict = if r.regressions == 0 {
        "gate: PASS".to_owned()
    } else {
        format!("gate: FAIL ({} regression(s))", r.regressions)
    };
    let _ = writeln!(s, "{verdict}");
    s
}

/// The regression gate as a registered experiment.
pub struct RegressExperiment;

impl crate::experiment::Experiment for RegressExperiment {
    fn id(&self) -> &'static str {
        "regress"
    }

    fn title(&self) -> &'static str {
        "Gate — perf-diff of run envelopes against committed baselines"
    }

    fn device(&self) -> &'static str {
        "host"
    }

    fn checks(&self) -> Vec<Check> {
        vec![Check::new("regress/regressions", 0.0, 0.0, "/regressions")]
    }

    fn execute(&self, ctx: &RunContext) -> (serde::Value, String) {
        match run(ctx) {
            Ok(r) => (serde_json::to_value(&r), render(&r)),
            Err(e) => {
                // An unreadable baseline is itself a gate failure: the
                // payload carries a sentinel regression count so the
                // driver exits non-zero.
                let msg = format!("Regress: could not load envelopes: {e}\n");
                let payload = serde::Value::Object(vec![
                    ("error".to_owned(), serde::Value::Str(e)),
                    ("regressions".to_owned(), serde::Value::U64(1)),
                ]);
                (payload, msg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, IterBudgets};
    use crate::perf::{BenchEntry, BENCH_SCHEMA_VERSION};

    /// Serializes tests that mutate the process-global `MC_REGRESS_BASELINE`.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    struct EnvGuard {
        old: Option<String>,
        _lock: std::sync::MutexGuard<'static, ()>,
    }

    impl EnvGuard {
        fn set(dir: &std::path::Path) -> Self {
            let lock = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let old = std::env::var(BASELINE_ENV).ok();
            std::env::set_var(BASELINE_ENV, dir);
            EnvGuard { old, _lock: lock }
        }
    }

    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match &self.old {
                Some(v) => std::env::set_var(BASELINE_ENV, v),
                None => std::env::remove_var(BASELINE_ENV),
            }
        }
    }

    fn record(id: &str, metric: &str, measured: f64) -> ExperimentRecord {
        ExperimentRecord {
            schema_version: crate::experiment::SCHEMA_VERSION,
            experiment: id.to_owned(),
            title: id.to_owned(),
            device: "mi250x".to_owned(),
            config: IterBudgets::smoke(),
            wall_time_s: 0.1,
            checks: vec![crate::experiment::Comparison {
                metric: metric.to_owned(),
                paper: measured,
                measured,
                band: 0.05,
            }],
            rendered: String::new(),
            payload: serde::Value::Object(Vec::new()),
        }
    }

    fn write_dir(name: &str, records: &[ExperimentRecord], bench: Option<&BenchFile>) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mc-bench-regress-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for r in records {
            let json = serde_json::to_string_pretty(r).unwrap();
            std::fs::write(dir.join(format!("{}.json", r.experiment)), json).unwrap();
        }
        if let Some(b) = bench {
            let json = serde_json::to_string_pretty(b).unwrap();
            std::fs::write(dir.join(BENCH_FILE), json).unwrap();
        }
        dir
    }

    fn bench(threads: usize, wall_s: f64) -> BenchFile {
        BenchFile {
            schema_version: BENCH_SCHEMA_VERSION,
            entries: vec![BenchEntry {
                id: "sgemm_blocked".to_owned(),
                n: 1024,
                threads,
                wall_s,
                gflops: 2.0 * 1024f64.powi(3) / wall_s / 1e9,
                backend: "blocked".to_owned(),
            }],
        }
    }

    #[test]
    fn injected_throughput_regression_fails_the_gate() {
        let good = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let mut bad = good.clone();
        bad.checks[0].measured *= 0.9; // synthetic 10% throughput loss
        let base = write_dir("inject-base", &[good], None);
        let cur = write_dir("inject-cur", &[bad], None);
        let _guard = EnvGuard::set(&base);

        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let rec = RegressExperiment.run(&ctx);
        let r: Regress = serde_json::from_value(rec.payload.clone()).unwrap();
        assert_eq!(r.regressions, 1);
        assert!(rec.checks.iter().any(|c| !c.pass()), "gate check must fail");
        assert!(rec.rendered.contains("gate: FAIL"));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn identical_directories_pass_the_gate() {
        let records = [
            record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0),
            record("fig5", "fig5/peak power (W)", 520.0),
        ];
        let dir = write_dir("identical", &records, Some(&bench(8, 0.1)));
        let _guard = EnvGuard::set(&dir);

        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&dir);
        let rec = RegressExperiment.run(&ctx);
        let r: Regress = serde_json::from_value(rec.payload.clone()).unwrap();
        assert_eq!(r.regressions, 0, "{}", rec.rendered);
        assert!(rec.checks.iter().all(|c| c.pass()));
        assert!(rec.rendered.contains("gate: PASS"));
        assert!(r.compared >= 3);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn power_metrics_absorb_noise_band_drift() {
        let base = write_dir(
            "power-base",
            &[record("fig5", "fig5/peak power (W)", 520.0)],
            None,
        );
        // 0.05% drift: far under the SMI 3-sigma band, over the
        // deterministic default.
        let cur = write_dir(
            "power-cur",
            &[record("fig5", "fig5/peak power (W)", 520.26)],
            None,
        );
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0, "{}", render(&r));
        assert!(r.power_tolerance_rel > DEFAULT_TOLERANCE_REL);

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn budget_mismatch_skips_instead_of_comparing() {
        let base_rec = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let mut cur_rec = base_rec.clone();
        cur_rec.config = IterBudgets::paper();
        cur_rec.checks[0].measured = 10.0; // wildly different, but incomparable
        let base = write_dir("budget-base", &[base_rec], None);
        let cur = write_dir("budget-cur", &[cur_rec], None);
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0);
        assert_eq!(r.skipped.len(), 1);
        assert!(r.skipped[0].contains("budgets differ"));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn bench_slowdown_gates_but_thread_mismatch_never_pairs() {
        let rec = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let base = write_dir(
            "bench-base",
            std::slice::from_ref(&rec),
            Some(&bench(8, 0.5)),
        );
        let cur = write_dir(
            "bench-cur",
            std::slice::from_ref(&rec),
            Some(&bench(8, 1.5)),
        );
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 1, "3x slower must gate: {}", render(&r));
        drop(_guard);

        // A cell measured at a different thread count carries a
        // different key: it shows up added/removed, never compared.
        let cur2 = write_dir("bench-cur2", &[rec], Some(&bench(4, 1.5)));
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur2);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0, "{}", render(&r));
        assert!(r
            .report
            .entries
            .iter()
            .any(|e| e.key == "bench/sgemm_blocked/n1024/t4"));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
        let _ = std::fs::remove_dir_all(&cur2);
    }

    #[test]
    fn old_schema_bench_baseline_skips_gracefully() {
        // A v1-layout artifact (header-level thread count, no per-entry
        // threads) must not parse as the current schema: the pair is
        // reported as one-sided and nothing gates.
        let rec = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let base = write_dir("schema-base", std::slice::from_ref(&rec), None);
        let v1 = r#"{
  "schema_version": 1,
  "threads": 1,
  "entries": [ { "id": "sgemm_blocked", "n": 256, "wall_s": 0.08 } ]
}"#;
        std::fs::write(base.join(BENCH_FILE), v1).unwrap();
        let cur = write_dir("schema-cur", &[rec], Some(&bench(1, 0.07)));
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0, "{}", render(&r));
        assert!(r.skipped.iter().any(|s| s.contains("only one side")));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn millisecond_bench_noise_stays_under_the_absolute_floor() {
        // A 4x blowup on a 20 ms cell is scheduler noise under
        // full-suite contention, not a kernel regression: the absolute
        // floor keeps it from gating. The same 4x on a half-second
        // cell clears the floor and gates.
        let rec = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let base = write_dir(
            "floor-base",
            std::slice::from_ref(&rec),
            Some(&bench(1, 0.02)),
        );
        let cur = write_dir(
            "floor-cur",
            std::slice::from_ref(&rec),
            Some(&bench(1, 0.08)),
        );
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0, "{}", render(&r));
        drop(_guard);

        let base2 = write_dir(
            "floor-base2",
            std::slice::from_ref(&rec),
            Some(&bench(1, 0.5)),
        );
        let cur2 = write_dir("floor-cur2", &[rec], Some(&bench(1, 2.0)));
        let _guard = EnvGuard::set(&base2);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur2);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 1, "4x on 0.5 s must gate: {}", render(&r));

        for d in [&base, &cur, &base2, &cur2] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    fn calibrate(threads: usize, simd_vector: bool, simd_s: f64) -> CalibrateFile {
        let mut f = CalibrateFile::new(threads, simd_vector);
        f.rows.push(mc_compute::calibrate::CalibrateRow {
            n: 1024,
            naive_s: None,
            blocked_s: 2.0 * simd_s,
            simd_s,
            simd_gflops: 2.0 * 1024f64.powi(3) / simd_s / 1e9,
        });
        f
    }

    fn write_calibrate(dir: &std::path::Path, f: &CalibrateFile) {
        let json = serde_json::to_string_pretty(f).unwrap();
        std::fs::write(dir.join(CALIBRATE_FILE), json).unwrap();
    }

    #[test]
    fn calibrate_tier_slowdown_gates_past_the_floor() {
        let rec = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let base = write_dir("cal-base", std::slice::from_ref(&rec), None);
        write_calibrate(&base, &calibrate(8, true, 0.5));
        let cur = write_dir("cal-cur", std::slice::from_ref(&rec), None);
        write_calibrate(&cur, &calibrate(8, true, 1.5));
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        // Both the simd and the derived blocked cell regressed 3x past
        // the quarter-second floor; the untimed naive row never pairs.
        assert_eq!(r.regressions, 2, "{}", render(&r));
        assert!(r
            .report
            .entries
            .iter()
            .any(|e| e.key == "calibrate/simd/n1024/t8"));
        assert!(!r
            .report
            .entries
            .iter()
            .any(|e| e.key.starts_with("calibrate/naive/")));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn calibrate_one_sided_or_simd_mismatch_skips() {
        // Baseline has no calibrate artifact: one-sided, reported as a
        // skip, nothing gates.
        let rec = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let base = write_dir("cal-skip-base", std::slice::from_ref(&rec), None);
        let cur = write_dir("cal-skip-cur", std::slice::from_ref(&rec), None);
        write_calibrate(&cur, &calibrate(8, true, 1.5));
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0, "{}", render(&r));
        assert!(r
            .skipped
            .iter()
            .any(|s| s.contains(CALIBRATE_FILE) && s.contains("only one side")));
        drop(_guard);

        // Vector availability differs: simd cells are dropped on both
        // sides (blocked still pairs, and here it stayed flat).
        write_calibrate(&base, &calibrate(8, false, 9.0));
        let mut flat = calibrate(8, true, 9.0);
        flat.rows[0].simd_s = 0.1; // wildly different, but incomparable
        write_calibrate(&cur, &flat);
        let _guard = EnvGuard::set(&base);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0, "{}", render(&r));
        assert!(r.skipped.iter().any(|s| s.contains("vector availability")));
        assert!(!r
            .report
            .entries
            .iter()
            .any(|e| e.key.starts_with("calibrate/simd/")));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn old_schema_calibrate_baseline_skips_gracefully() {
        let rec = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let base = write_dir("cal-schema-base", std::slice::from_ref(&rec), None);
        let v0 = r#"{ "schema_version": 0, "threads": 8, "simd_vector": true, "rows": [] }"#;
        std::fs::write(base.join(CALIBRATE_FILE), v0).unwrap();
        let cur = write_dir("cal-schema-cur", &[rec], None);
        write_calibrate(&cur, &calibrate(8, true, 0.5));
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0, "{}", render(&r));
        assert!(r
            .skipped
            .iter()
            .any(|s| s.contains(CALIBRATE_FILE) && s.contains("only one side")));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn v2_schema_bench_baseline_skips_gracefully() {
        // A v2-layout artifact (per-entry threads, but no gflops or
        // backend columns) must be treated as absent so a v2→v3
        // transition skips instead of gating.
        let rec = record("fig3", "fig3/mixed plateau (TFLOPS)", 175.0);
        let base = write_dir("schema2-base", std::slice::from_ref(&rec), None);
        let v2 = r#"{
  "schema_version": 2,
  "entries": [ { "id": "sgemm_blocked", "n": 1024, "threads": 1, "wall_s": 0.58 } ]
}"#;
        std::fs::write(base.join(BENCH_FILE), v2).unwrap();
        let cur = write_dir("schema2-cur", &[rec], Some(&bench(1, 0.06)));
        let _guard = EnvGuard::set(&base);
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&cur);
        let r = run(&ctx).unwrap();
        assert_eq!(r.regressions, 0, "{}", render(&r));
        assert!(r.skipped.iter().any(|s| s.contains("only one side")));

        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }
}
