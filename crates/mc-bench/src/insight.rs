//! Insight gate: bottleneck verdicts and Eq. 2 model drift over the
//! corpus replay — the `insight` artifact.
//!
//! Replays the Fig. 6/7 corpus on every registered device with a trace
//! ring attached, then pushes the captured timelines through the
//! `mc-insight` diagnosis layer:
//!
//! * every attributed kernel launch must receive **exactly one**
//!   bottleneck verdict whose compute/DRAM classification agrees with
//!   its roofline regime (`unclassified == 0`,
//!   `regime_inconsistent == 0`);
//! * every library launch's Eq. 2 prediction must stay inside the
//!   calibrated drift band against the engine-comparable wall time
//!   (`drift_out_of_band == 0`, band
//!   [`mc_insight::DEFAULT_DRIFT_BAND`]);
//! * the plan search's finalist scores are audited for **ranking
//!   inversions** — pairs the analytic model ordered opposite to the
//!   engine — which are recorded in the payload (they are the reason
//!   the search keeps its dry-run tier, not a failure).
//!
//! The `mi250x-gcd` device replays the corpus through the rocBLAS-style
//! library path (plan spans carry `predicted_time_s` /
//! `measured_time_s` / `handoff_penalty_s`, so drift is observable);
//! the raw-kernel devices replay representative MFMA/MMA workloads and
//! contribute verdict coverage for the non-library planes. The corpus
//! always includes the canonical diagnostic pair: a large square SGEMM
//! (compute-bound at a high achieved-peak fraction) and a small-K
//! SGEMM (DRAM-bound: exposed HBM time the compute cannot cover).
//!
//! Any gate violation fails the `experiments` driver (non-zero exit);
//! the envelope also lands as `<sink>/insight.insight.json` and the
//! metrics summary — verdict counts plus the round-latency and
//! |drift| histograms — as `<metrics_dir>/insight.insight.om`. See
//! `docs/OBSERVABILITY.md` for the taxonomy and the drift-band policy.

use std::path::PathBuf;
use std::sync::Arc;

use mc_blas::{select_plan, BlasHandle, GemmDesc, GemmOp};
use mc_insight::{
    diagnose, drift_report, inversions_from_outcome, register_insight_metrics, Bottleneck,
    DriftObservation, DriftReport, InversionRecord, KernelVerdict, DEFAULT_DRIFT_BAND,
    INSIGHT_SCHEMA_VERSION,
};
use mc_isa::MatrixArch;
use mc_sim::{DeviceId, DeviceRegistry};
use mc_trace::{MetricsRegistry, RingSink, TraceEvent};
use mc_types::DType;
use mc_wmma::{mma_loop_kernel, wmma_gemm_tile_kernel, LoopKernelParams};
use serde::{Deserialize, Serialize, Value};

use crate::autotune::SWEEP_OPS;
use crate::experiment::{IterBudgets, RunContext};

/// The square sizes the library corpus sweeps per budget tier. The
/// grid is about diagnosis breadth (small, medium, large regimes), not
/// sweep completeness — the full §VII grid lives in `fig6`/`fig7`.
pub fn corpus_sizes(budgets: &IterBudgets) -> Vec<usize> {
    if *budgets == IterBudgets::smoke() {
        vec![1024]
    } else {
        vec![512, 2048, 4096]
    }
}

/// The library-path corpus: every Fig. 6/7 routine at the tier's
/// sizes, plus the canonical diagnostic pair — a large square SGEMM
/// (compute-bound) and a small-K SGEMM (DRAM-bound) — which is present
/// at every tier so the gate always proves both classifications.
pub fn corpus(budgets: &IterBudgets) -> Vec<GemmDesc> {
    let sizes = corpus_sizes(budgets);
    let mut v: Vec<GemmDesc> = SWEEP_OPS
        .iter()
        .flat_map(|&op| sizes.iter().map(move |&n| GemmDesc::square(op, n)))
        .collect();
    v.push(GemmDesc::square(GemmOp::Sgemm, 4096));
    v.push(GemmDesc {
        k: 64,
        ..GemmDesc::square(GemmOp::Sgemm, 4096)
    });
    v
}

/// One device's diagnosed replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceInsight {
    /// Registry name of the device.
    pub device: String,
    /// Attributed kernel launches in the replay.
    pub kernels: usize,
    /// Launches without a verdict (must be 0; [`diagnose`] yields one
    /// verdict per attributed launch by construction, so a non-zero
    /// count means the join broke).
    pub unclassified: usize,
    /// Verdicts whose classification agrees with the roofline regime.
    pub regime_consistent: usize,
    /// The device's model-drift distribution (library launches only;
    /// empty on raw-kernel devices).
    pub drift: DriftReport,
    /// Every verdict, in ledger order.
    pub verdicts: Vec<KernelVerdict>,
}

/// Kernel count for one verdict label (aggregated over all devices).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VerdictCount {
    /// Stable verdict label ([`Bottleneck::label`]).
    pub verdict: String,
    /// Kernels that received it.
    pub kernels: usize,
}

/// The insight gate payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Insight {
    /// One diagnosed replay per device, in registry order.
    pub devices: Vec<DeviceInsight>,
    /// Kernels per verdict label across all devices (taxonomy order).
    pub verdict_counts: Vec<VerdictCount>,
    /// Total attributed kernel launches.
    pub total_kernels: usize,
    /// Launches without a verdict — gate count (must be 0).
    pub unclassified: usize,
    /// Verdicts contradicting their roofline regime — gate count
    /// (must be 0).
    pub regime_inconsistent: usize,
    /// The calibrated band `|drift|` must stay within.
    pub drift_band: f64,
    /// Prediction-vs-measurement pairs observed across all devices.
    pub drift_observations: usize,
    /// Mean `|drift|` across all observations.
    pub drift_mean_abs: f64,
    /// Worst `|drift|` across all observations.
    pub drift_max_abs: f64,
    /// Observations outside the band — gate count (must be 0).
    pub drift_out_of_band: usize,
    /// Finalist pairs the analytic model ranked opposite to the engine
    /// (recorded, not gated: they are why the dry-run tier exists).
    pub inversions: Vec<InversionRecord>,
    /// Total recorded ranking inversions.
    pub inversion_count: usize,
}

/// Replays the corpus for one device and returns the captured timeline.
fn replay(devices: &DeviceRegistry, id: DeviceId, budgets: &IterBudgets) -> Vec<TraceEvent> {
    let sink = Arc::new(RingSink::new());
    let mut traced = devices.clone();
    traced.set_trace_sink(sink.clone());

    if id == DeviceId::Mi250xGcd {
        let mut handle = BlasHandle::from_registry(&traced, id);
        for desc in corpus(budgets) {
            handle
                .gemm_timed(&desc)
                .expect("corpus descriptors fit in device memory");
        }
        return sink.events();
    }

    let mut gpu = traced.gpu(id);
    let arch = gpu.spec().die.arch;
    let kernel = match arch {
        MatrixArch::Cdna2 => {
            let mut k = wmma_gemm_tile_kernel(arch, DType::F32, DType::F16, (16, 16, 16), 64)
                .expect("CDNA2 tile kernel builds");
            k.workgroups = crate::trace::ragged_workgroups(&gpu, &k);
            k
        }
        MatrixArch::Cdna1 | MatrixArch::Ampere => {
            let shape = if arch == MatrixArch::Ampere {
                (16, 8, 16)
            } else {
                (16, 16, 16)
            };
            let mut k = mma_loop_kernel(LoopKernelParams {
                arch,
                cd: DType::F32,
                ab: DType::F16,
                shape,
                wavefronts: 64,
                iterations: 256,
            })
            .expect("mixed-precision loop kernel builds");
            k.workgroups = crate::trace::ragged_workgroups(&gpu, &k);
            k
        }
    };
    gpu.launch(0, &kernel)
        .expect("representative launch succeeds");
    sink.events()
}

/// Runs the plan search over the corpus grid and records every ranking
/// inversion among the dry-run finalists.
fn probe_inversions(devices: &DeviceRegistry, budgets: &IterBudgets) -> Vec<InversionRecord> {
    let cfg = devices.config(DeviceId::Mi250xGcd).clone();
    let die = cfg.package.die.clone();
    let grid: Vec<(GemmOp, usize)> = SWEEP_OPS
        .iter()
        .flat_map(|&op| corpus_sizes(budgets).into_iter().map(move |n| (op, n)))
        .collect();
    crate::experiment::par_map(devices.trace_sink().is_none(), grid, |(op, n)| {
        let out = select_plan(&die, &cfg, &GemmDesc::square(op, n))
            .expect("corpus descriptors are valid");
        inversions_from_outcome(DeviceId::Mi250xGcd.as_str(), op.routine(), n as u64, &out)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Runs the insight gate over every built-in device. Returns the
/// payload and the concatenated timelines (the events feed the metrics
/// exposition; they are too large for the envelope itself).
pub fn run(devices: &DeviceRegistry, budgets: &IterBudgets) -> (Insight, Vec<TraceEvent>) {
    let parallel = devices.trace_sink().is_none();
    let diagnosed: Vec<(DeviceInsight, Vec<TraceEvent>)> =
        crate::experiment::par_map(parallel, DeviceId::ALL.to_vec(), |id| {
            let events = replay(devices, id, budgets);
            let records = mc_obs::Attributor::from_registry(devices).attribute(&events);
            let verdicts = diagnose(&events, &records);
            let regime_consistent = verdicts
                .iter()
                .filter(|v| v.bottleneck.consistent_with_regime(&v.evidence.regime))
                .count();
            let device = DeviceInsight {
                device: id.as_str().to_owned(),
                kernels: records.len(),
                unclassified: records.len() - verdicts.len(),
                regime_consistent,
                drift: drift_report(&events, DEFAULT_DRIFT_BAND),
                verdicts,
            };
            (device, events)
        });
    let inversions = probe_inversions(devices, budgets);

    let mut device_insights = Vec::new();
    let mut all_events = Vec::new();
    for (d, events) in diagnosed {
        device_insights.push(d);
        all_events.extend(events);
    }
    let all_verdicts: Vec<&KernelVerdict> =
        device_insights.iter().flat_map(|d| &d.verdicts).collect();
    let verdict_counts = Bottleneck::ALL
        .iter()
        .map(|b| VerdictCount {
            verdict: b.label().to_owned(),
            kernels: all_verdicts.iter().filter(|v| v.bottleneck == *b).count(),
        })
        .collect();
    let all_obs: Vec<DriftObservation> = device_insights
        .iter()
        .flat_map(|d| d.drift.observations.iter().cloned())
        .collect();
    let aggregate = DriftReport::new(all_obs, DEFAULT_DRIFT_BAND);
    let total_kernels: usize = device_insights.iter().map(|d| d.kernels).sum();
    let regime_consistent: usize = device_insights.iter().map(|d| d.regime_consistent).sum();
    let insight = Insight {
        total_kernels,
        unclassified: device_insights.iter().map(|d| d.unclassified).sum(),
        regime_inconsistent: all_verdicts.len() - regime_consistent,
        verdict_counts,
        drift_band: aggregate.band,
        drift_observations: aggregate.observations.len(),
        drift_mean_abs: aggregate.mean_abs_drift,
        drift_max_abs: aggregate.max_abs_drift,
        drift_out_of_band: aggregate.out_of_band,
        inversion_count: inversions.len(),
        inversions,
        devices: device_insights,
    };
    (insight, all_events)
}

/// Rebuilds the aggregate drift report from a payload (the per-device
/// reports are authoritative; this is the cross-device summary the
/// metrics exposition uses).
fn aggregate_report(insight: &Insight) -> DriftReport {
    let obs: Vec<DriftObservation> = insight
        .devices
        .iter()
        .flat_map(|d| d.drift.observations.iter().cloned())
        .collect();
    DriftReport::new(obs, insight.drift_band)
}

/// Writes the gate's artifacts: the schema-versioned
/// `<sink>/insight.insight.json` envelope, and — when a metrics
/// directory is configured — the `<metrics_dir>/insight.insight.om`
/// OpenMetrics snapshot with the verdict counts, drift gauges, and the
/// round-latency / |drift| histogram families. Returns the paths
/// written.
pub fn persist_insight(
    ctx: &RunContext,
    insight: &Insight,
    events: &[TraceEvent],
) -> std::io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    if let Some(dir) = &ctx.json_sink {
        std::fs::create_dir_all(dir)?;
        let envelope = Value::Object(vec![
            (
                "schema_version".to_owned(),
                Value::U64(u64::from(INSIGHT_SCHEMA_VERSION)),
            ),
            ("insight".to_owned(), serde_json::to_value(insight)),
        ]);
        let path = dir.join("insight.insight.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&envelope).expect("envelope serializes"),
        )?;
        written.push(path);
    }
    if let Some(dir) = &ctx.metrics_dir {
        std::fs::create_dir_all(dir)?;
        let verdicts: Vec<KernelVerdict> = insight
            .devices
            .iter()
            .flat_map(|d| d.verdicts.iter().cloned())
            .collect();
        let mut registry = MetricsRegistry::new();
        register_insight_metrics(&verdicts, &aggregate_report(insight), events, &mut registry);
        let path = dir.join("insight.insight.om");
        std::fs::write(&path, mc_trace::openmetrics(&registry))?;
        written.push(path);
    }
    Ok(written)
}

/// Renders the diagnosis as text: the per-device summary, one
/// explanation line per kernel, the recorded inversions, and the gate
/// verdict.
pub fn render(insight: &Insight) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("insight: bottleneck verdicts and Eq. 2 model drift\n");
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>12} {:>10} {:>11} {:>8}",
        "device", "kernels", "consistent", "drift_obs", "max|drift|", "out"
    );
    for d in &insight.devices {
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>12} {:>10} {:>10.1}% {:>8}",
            d.device,
            d.kernels,
            d.regime_consistent,
            d.drift.observations.len(),
            d.drift.max_abs_drift * 100.0,
            d.drift.out_of_band,
        );
    }
    for d in &insight.devices {
        for v in &d.verdicts {
            let drift = v
                .drift
                .map(|x| format!(" (drift {:+.1}%)", x * 100.0))
                .unwrap_or_default();
            let _ = writeln!(
                s,
                "  {} {}: {} — {}{drift}",
                d.device,
                v.kernel,
                v.bottleneck.label(),
                v.explanation
            );
        }
    }
    let counts: Vec<String> = insight
        .verdict_counts
        .iter()
        .filter(|c| c.kernels > 0)
        .map(|c| format!("{} {}", c.kernels, c.verdict))
        .collect();
    let _ = writeln!(
        s,
        "{} kernel(s): {}; drift |mean| {:.1}% / max {:.1}% over {} launch(es), band {:.0}%",
        insight.total_kernels,
        counts.join(", "),
        insight.drift_mean_abs * 100.0,
        insight.drift_max_abs * 100.0,
        insight.drift_observations,
        insight.drift_band * 100.0,
    );
    let _ = writeln!(
        s,
        "{} ranking inversion(s) caught by the dry-run tier",
        insight.inversion_count
    );
    for inv in &insight.inversions {
        let _ = writeln!(
            s,
            "  inversion: {} {} N={}: model prefers {}, engine prefers {} (gaps {:.1}%/{:.1}%)",
            inv.device,
            inv.op,
            inv.n,
            inv.preferred_by_model,
            inv.preferred_by_engine,
            inv.analytic_gap * 100.0,
            inv.engine_gap * 100.0,
        );
    }
    let pass = insight.unclassified == 0
        && insight.regime_inconsistent == 0
        && insight.drift_out_of_band == 0;
    let _ = writeln!(
        s,
        "gate: {} ({} unclassified, {} regime-inconsistent, {} drift out of band)",
        if pass { "PASS" } else { "FAIL" },
        insight.unclassified,
        insight.regime_inconsistent,
        insight.drift_out_of_band,
    );
    s
}

/// The insight diagnosis as a registered experiment.
pub struct InsightExperiment;

impl crate::experiment::Experiment for InsightExperiment {
    fn id(&self) -> &'static str {
        "insight"
    }

    fn title(&self) -> &'static str {
        "Gate — bottleneck verdicts and Eq. 2 model drift over the corpus replay"
    }

    fn device(&self) -> &'static str {
        "all"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![
            Check::new("insight/unclassified kernels", 0.0, 0.0, "/unclassified"),
            Check::new(
                "insight/regime-inconsistent verdicts",
                0.0,
                0.0,
                "/regime_inconsistent",
            ),
            Check::new(
                "insight/drift observations out of band",
                0.0,
                0.0,
                "/drift_out_of_band",
            ),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (Value, String) {
        let (insight, events) = run(&ctx.devices, &ctx.budgets);
        if let Err(e) = persist_insight(ctx, &insight, &events) {
            eprintln!("error: could not write insight artifacts: {e}");
        }
        (serde_json::to_value(&insight), render(&insight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment as _;

    #[test]
    fn corpus_always_carries_the_canonical_pair() {
        for budgets in [IterBudgets::smoke(), IterBudgets::reduced()] {
            let c = corpus(&budgets);
            let small_k = c.last().expect("non-empty corpus");
            assert_eq!((small_k.m, small_k.n, small_k.k), (4096, 4096, 64));
            let square = &c[c.len() - 2];
            assert_eq!((square.m, square.n, square.k), (4096, 4096, 4096));
            // Every routine of the Fig. 6/7 evaluation is swept.
            for op in SWEEP_OPS {
                assert!(c.iter().any(|d| d.op == op), "{op:?} missing");
            }
        }
        assert!(corpus(&IterBudgets::reduced()).len() > corpus(&IterBudgets::smoke()).len());
    }

    #[test]
    fn gate_passes_on_every_builtin_device() {
        let (insight, events) = run(&DeviceRegistry::builtin(), &IterBudgets::smoke());
        assert_eq!(insight.devices.len(), DeviceId::ALL.len());
        assert_eq!(insight.unclassified, 0, "{}", render(&insight));
        assert_eq!(insight.regime_inconsistent, 0, "{}", render(&insight));
        assert_eq!(insight.drift_out_of_band, 0, "{}", render(&insight));
        assert!(insight.total_kernels > 0);
        assert!(insight.drift_observations > 0, "library plane unobserved");
        assert!(!events.is_empty());
        // Every kernel got exactly one verdict.
        let verdicts: usize = insight.devices.iter().map(|d| d.verdicts.len()).sum();
        assert_eq!(verdicts, insight.total_kernels);
        let counted: usize = insight.verdict_counts.iter().map(|c| c.kernels).sum();
        assert_eq!(counted, insight.total_kernels);
    }

    #[test]
    fn canonical_shapes_get_their_textbook_verdicts() {
        let (insight, _) = run(&DeviceRegistry::builtin(), &IterBudgets::smoke());
        let gcd = insight
            .devices
            .iter()
            .find(|d| d.device == "mi250x-gcd")
            .expect("library device diagnosed");
        assert_eq!(gcd.kernels, corpus(&IterBudgets::smoke()).len());
        // The corpus ends with the canonical pair, in launch order.
        let square = &gcd.verdicts[gcd.verdicts.len() - 2];
        let small_k = &gcd.verdicts[gcd.verdicts.len() - 1];
        assert_eq!(square.bottleneck, Bottleneck::ComputeBound, "{square:?}");
        assert!(square.evidence.achieved_fraction > 0.5);
        assert_eq!(small_k.bottleneck, Bottleneck::DramBound, "{small_k:?}");
        assert!(small_k.evidence.memory_stall_fraction > mc_insight::MEMORY_STALL_MIN);
    }

    #[test]
    fn diagnosis_is_deterministic_across_thread_counts() {
        // `--jobs N` only resizes the rayon pool; the replay clones its
        // own registry per device, so the parallel and sequential paths
        // must produce byte-identical payloads. A sink-attached registry
        // forces the sequential path (the par_map convention).
        let devices = DeviceRegistry::builtin();
        let (parallel, _) = run(&devices, &IterBudgets::smoke());
        let mut sequential_devices = devices.clone();
        sequential_devices.set_trace_sink(Arc::new(RingSink::new()));
        let (sequential, _) = run(&sequential_devices, &IterBudgets::smoke());
        assert_eq!(parallel, sequential);
        assert_eq!(
            serde_json::to_string(&serde_json::to_value(&parallel)).unwrap(),
            serde_json::to_string(&serde_json::to_value(&sequential)).unwrap()
        );
    }

    #[test]
    fn experiment_gate_checks_pass_and_artifacts_land() {
        let base = std::env::temp_dir().join(format!(
            "mc-bench-insight-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let ctx = RunContext::new(IterBudgets::smoke())
            .with_sink(base.join("results"))
            .with_metrics(base.join("metrics"));
        let record = InsightExperiment.run(&ctx);
        assert_eq!(record.checks.len(), 3);
        assert!(
            record.checks.iter().all(|c| c.pass()),
            "{}",
            record.rendered
        );
        assert!(
            record.rendered.contains("gate: PASS"),
            "{}",
            record.rendered
        );

        let envelope = std::fs::read_to_string(base.join("results/insight.insight.json"))
            .expect("insight envelope written");
        let value: Value = serde_json::from_str(&envelope).expect("envelope parses");
        assert_eq!(
            value.get("schema_version").and_then(Value::as_u64),
            Some(u64::from(INSIGHT_SCHEMA_VERSION))
        );
        assert!(value
            .pointer("/insight/devices/0/verdicts/0/bottleneck")
            .is_some());

        let om = std::fs::read_to_string(base.join("metrics/insight.insight.om"))
            .expect("metrics snapshot written");
        assert!(om.contains("# TYPE insight_kernels gauge"), "{om}");
        assert!(
            om.contains("# TYPE insight_plan_drift_ratio histogram"),
            "{om}"
        );
        assert!(
            om.contains("# TYPE insight_round_latency_s_seconds histogram"),
            "{om}"
        );
        assert!(om.ends_with("# EOF\n"), "{om}");
        let _ = std::fs::remove_dir_all(&base);
    }
}
