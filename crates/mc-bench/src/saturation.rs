//! Extension experiment: empirical performance-saturation size.
//!
//! The paper's related work (ref. \[19], Eberius et al.) extends the
//! roofline with "a new metric of saturated problem size". Applied
//! here: for each GEMM routine, the smallest `N` at which throughput
//! reaches a target fraction of that routine's own peak — the practical
//! "how big must my matrices be before Matrix Cores pay off" number
//! application developers need.

use mc_blas::{BlasHandle, GemmDesc, GemmOp};
use mc_sim::{DeviceId, DeviceRegistry};
use serde::{Deserialize, Serialize};

/// One routine's saturation measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaturationRow {
    /// Routine name.
    pub routine: String,
    /// Peak throughput over the sweep (TFLOPS).
    pub peak_tflops: f64,
    /// Smallest N reaching `target` × peak.
    pub saturation_n: usize,
    /// Throughput at half the saturation size (how steep the ramp is).
    pub half_size_fraction: f64,
}

/// The saturation survey.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Saturation {
    /// Target fraction of peak.
    pub target: f64,
    /// One row per routine.
    pub rows: Vec<SaturationRow>,
}

/// Runs the survey at a target fraction of each routine's peak.
pub fn run(devices: &DeviceRegistry, target: f64) -> Saturation {
    let mut handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
    let sizes: Vec<usize> = (4..=13).map(|p| 1usize << p).collect(); // 16..8192

    let rows = GemmOp::PAPER
        .iter()
        .map(|&op| {
            let points: Vec<(usize, f64)> = sizes
                .iter()
                .map(|&n| {
                    (
                        n,
                        handle
                            .gemm_timed(&GemmDesc::square(op, n))
                            .expect("fits")
                            .tflops,
                    )
                })
                .collect();
            let peak = points.iter().map(|p| p.1).fold(0.0, f64::max);
            let saturation_n = points
                .iter()
                .find(|(_, t)| *t >= target * peak)
                .map(|(n, _)| *n)
                .expect("peak itself satisfies the target");
            let half = points
                .iter()
                .find(|(n, _)| *n * 2 == saturation_n)
                .map(|(_, t)| t / peak)
                .unwrap_or(0.0);
            SaturationRow {
                routine: op.routine().to_owned(),
                peak_tflops: peak,
                saturation_n,
                half_size_fraction: half,
            }
        })
        .collect();

    Saturation { target, rows }
}

/// The saturation survey as a registered experiment (90% target).
pub struct SaturationExperiment;

impl crate::experiment::Experiment for SaturationExperiment {
    fn id(&self) -> &'static str {
        "saturation"
    }

    fn title(&self) -> &'static str {
        "Extension — empirical saturation size"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let s = run(&ctx.devices, 0.9);
        (serde_json::to_value(&s), render(&s))
    }
}

/// Renders the survey as text.
pub fn render(s: &Saturation) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "Extension: empirical saturation size (smallest N at {:.0}% of each routine's peak)\n",
        s.target * 100.0
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>14} {:>18}",
        "routine", "peak (TF)", "saturation N", "at half that N"
    );
    for r in &s.rows {
        let _ = writeln!(
            out,
            "{:<8} {:>12.1} {:>14} {:>17.0}%",
            r.routine,
            r.peak_tflops,
            r.saturation_n,
            r.half_size_fraction * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_sizes_are_reasonable() {
        let s = run(&DeviceRegistry::builtin(), 0.9);
        let row = |r: &str| s.rows.iter().find(|x| x.routine == r).unwrap();
        // The 90%-of-peak points for the matrix-core routines land in
        // the multi-thousand range (Fig. 6/7's rising flanks).
        for routine in ["sgemm", "dgemm", "hhs", "hss"] {
            let n = row(routine).saturation_n;
            assert!((2048..=8192).contains(&n), "{routine}: {n}");
        }
    }

    #[test]
    fn hgemm_saturates_earlier_at_a_lower_peak() {
        // The SIMD path has a far lower roof, so it saturates sooner.
        let s = run(&DeviceRegistry::builtin(), 0.9);
        let hgemm = s.rows.iter().find(|x| x.routine == "hgemm").unwrap();
        let hhs = s.rows.iter().find(|x| x.routine == "hhs").unwrap();
        assert!(hgemm.peak_tflops < hhs.peak_tflops / 4.0);
        assert!(hgemm.saturation_n <= hhs.saturation_n);
    }

    #[test]
    fn ramp_is_steep_below_saturation() {
        let s = run(&DeviceRegistry::builtin(), 0.9);
        for r in &s.rows {
            // At half the saturation size, throughput is well below target.
            assert!(
                r.half_size_fraction < 0.9,
                "{}: {}",
                r.routine,
                r.half_size_fraction
            );
        }
    }
}
