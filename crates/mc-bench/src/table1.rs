//! Table I: supported datatypes and shapes of MFMA operations on Matrix
//! Cores (AMD) and Tensor Cores (NVIDIA) at the instruction level.

use mc_isa::{ampere_catalog, cdna2_catalog, IsaCatalog};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// `typeCD <- typeAB` label.
    pub types: String,
    /// CDNA2 shapes (`×` when unsupported).
    pub cdna2: Vec<String>,
    /// Ampere shapes (`×` when unsupported).
    pub ampere: Vec<String>,
}

/// The reproduced Table I.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

fn shapes(catalog: &IsaCatalog, cd: DType, ab: DType) -> Vec<String> {
    let mut v: Vec<String> = catalog
        .by_types(cd, ab)
        .into_iter()
        .filter(|i| !i.legacy && i.shape.blocks == 1)
        .map(|i| i.shape.mnemonic_token())
        .collect();
    v.sort();
    v
}

/// Regenerates Table I from the instruction catalogs.
pub fn run() -> Table1 {
    let amd = cdna2_catalog();
    let nv = ampere_catalog();
    // The paper's four floating-point rows.
    let combos = [
        (DType::F64, DType::F64),
        (DType::F32, DType::F32),
        (DType::F32, DType::F16),
        (DType::F16, DType::F16),
    ];
    let rows = combos
        .into_iter()
        .map(|(cd, ab)| Table1Row {
            types: format!("{cd} <- {ab}"),
            cdna2: shapes(amd, cd, ab),
            ampere: shapes(nv, cd, ab),
        })
        .collect();
    Table1 { rows }
}

/// Table I as a registered experiment.
pub struct Table1Experiment;

impl crate::experiment::Experiment for Table1Experiment {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table I — supported MFMA datatypes/shapes"
    }

    fn device(&self) -> &'static str {
        "mi250x+a100"
    }

    fn execute(&self, _ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let t = run();
        (serde_json::to_value(&t), render(&t))
    }
}

/// Renders the table as text.
pub fn render(t: &Table1) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Table I: supported MFMA/MMA shapes (D <- A*B + C)\n");
    let _ = writeln!(
        s,
        "{:<16} {:<24} {:<24}",
        "types", "AMD CDNA2", "Nvidia Ampere"
    );
    for r in &t.rows {
        let fmt = |v: &Vec<String>| {
            if v.is_empty() {
                "x".to_owned()
            } else {
                v.join(", ")
            }
        };
        let _ = writeln!(
            s,
            "{:<16} {:<24} {:<24}",
            r.types,
            fmt(&r.cdna2),
            fmt(&r.ampere)
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table1() {
        let t = run();
        let row = |types: &str| t.rows.iter().find(|r| r.types == types).unwrap();

        let f64row = row("FP64 <- FP64");
        assert_eq!(f64row.cdna2, vec!["16x16x4"]);
        assert_eq!(f64row.ampere, vec!["8x8x4"]);

        let f32row = row("FP32 <- FP32");
        assert_eq!(f32row.cdna2, vec!["16x16x4", "32x32x2"]);
        assert!(f32row.ampere.is_empty(), "crossed-out cell");

        let mixed = row("FP32 <- FP16");
        assert_eq!(mixed.cdna2, vec!["16x16x16", "32x32x8"]);
        assert_eq!(mixed.ampere, vec!["16x8x16", "16x8x8"]);

        let half = row("FP16 <- FP16");
        assert!(half.cdna2.is_empty(), "crossed-out cell");
        assert_eq!(half.ampere, vec!["16x8x16", "16x8x8"]);
    }

    #[test]
    fn renders_crosses_for_unsupported() {
        let text = render(&run());
        assert!(text.contains("FP16 <- FP16"));
        assert!(text
            .lines()
            .any(|l| l.starts_with("FP16 <- FP16") && l.contains('x')));
    }
}
