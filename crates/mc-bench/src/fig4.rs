//! Fig. 4: achieved floating-point throughput on MI250X Matrix Cores
//! (whole package, both GCDs in parallel) vs A100 Tensor Cores, for the
//! four type combinations of Table I.

use mc_isa::{ampere_catalog, cdna2_catalog};
use mc_sim::{throughput_run_all_dies, DeviceId, DeviceRegistry};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// One bar group of Fig. 4.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Type-combination label.
    pub types: String,
    /// MI250X measured TFLOPS (both GCDs); `None` when unsupported.
    pub mi250x_tflops: Option<f64>,
    /// MI250X theoretical peak TFLOPS.
    pub mi250x_peak: Option<f64>,
    /// A100 measured TFLOPS; `None` when unsupported.
    pub a100_tflops: Option<f64>,
    /// A100 theoretical peak TFLOPS.
    pub a100_peak: Option<f64>,
}

/// The reproduced Fig. 4 plus the §V-C headline comparisons.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// One row per type combination.
    pub rows: Vec<Fig4Row>,
    /// FP64 advantage of MI250X over A100 (the paper's 3.5×).
    pub fp64_advantage: f64,
}

/// Regenerates Fig. 4.
pub fn run(devices: &DeviceRegistry, iterations: u64) -> Fig4 {
    let amd_cat = cdna2_catalog();
    let nv_cat = ampere_catalog();

    let combos: Vec<(&str, DType, DType)> = vec![
        ("FP64 <- FP64", DType::F64, DType::F64),
        ("FP32 <- FP32", DType::F32, DType::F32),
        ("FP32 <- FP16", DType::F32, DType::F16),
        ("FP16 <- FP16", DType::F16, DType::F16),
    ];

    let rows: Vec<Fig4Row> =
        crate::experiment::par_map(devices.trace_sink().is_none(), combos, |(label, cd, ab)| {
            let amd_instr = amd_cat.best_for_types(cd, ab);
            let nv_instr = nv_cat.best_for_types(cd, ab);

            let (mi250x_tflops, mi250x_peak) = match amd_instr {
                Some(i) => {
                    let mut amd = devices.gpu(DeviceId::Mi250x);
                    let waves = u64::from(amd.spec().die.total_matrix_units());
                    let r = throughput_run_all_dies(&mut amd, i, waves, iterations)
                        .expect("AMD launch");
                    (
                        Some(r.tflops),
                        Some(amd.spec().peak_flops(i.flops_per_cu_per_cycle()) / 1e12),
                    )
                }
                None => (None, None),
            };
            let (a100_tflops, a100_peak) = match nv_instr {
                Some(i) => {
                    let mut nv = devices.gpu(DeviceId::A100);
                    let waves = u64::from(nv.spec().die.total_matrix_units());
                    let r =
                        throughput_run_all_dies(&mut nv, i, waves, iterations).expect("NV launch");
                    (
                        Some(r.tflops),
                        Some(nv.spec().peak_flops(i.flops_per_cu_per_cycle()) / 1e12),
                    )
                }
                None => (None, None),
            };
            Fig4Row {
                types: label.to_owned(),
                mi250x_tflops,
                mi250x_peak,
                a100_tflops,
                a100_peak,
            }
        });

    let fp64 = &rows[0];
    let fp64_advantage = fp64.mi250x_tflops.unwrap() / fp64.a100_tflops.unwrap();
    Fig4 {
        rows,
        fp64_advantage,
    }
}

/// Fig. 4 as a registered experiment.
pub struct Fig4Experiment;

impl crate::experiment::Experiment for Fig4Experiment {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn title(&self) -> &'static str {
        "Fig. 4 — MI250X vs A100 peak throughput"
    }

    fn device(&self) -> &'static str {
        "mi250x+a100"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![
            Check::new(
                "fig4/MI250X mixed (TFLOPS)",
                350.0,
                0.03,
                "/rows/2/mi250x_tflops",
            ),
            Check::new(
                "fig4/MI250X float (TFLOPS)",
                88.0,
                0.04,
                "/rows/1/mi250x_tflops",
            ),
            Check::new(
                "fig4/MI250X double (TFLOPS)",
                69.0,
                0.05,
                "/rows/0/mi250x_tflops",
            ),
            Check::new(
                "fig4/A100 mixed (TFLOPS)",
                290.0,
                0.02,
                "/rows/2/a100_tflops",
            ),
            Check::new(
                "fig4/A100 double (TFLOPS)",
                19.4,
                0.02,
                "/rows/0/a100_tflops",
            ),
            Check::new("fig4/FP64 advantage (x)", 3.5, 0.08, "/fp64_advantage"),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let f = run(&ctx.devices, ctx.budgets.tput_iters);
        (serde_json::to_value(&f), render(&f))
    }
}

/// Renders the figure data as text.
pub fn render(f: &Fig4) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Fig. 4: peak measured throughput, MI250X (2 GCDs) vs A100, TFLOPS\n");
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>8} {:>10} {:>8}",
        "types", "MI250X", "(peak)", "A100", "(peak)"
    );
    let fmt = |x: Option<f64>| x.map_or("x".to_owned(), |v| format!("{v:.1}"));
    for r in &f.rows {
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>8} {:>10} {:>8}",
            r.types,
            fmt(r.mi250x_tflops),
            fmt(r.mi250x_peak),
            fmt(r.a100_tflops),
            fmt(r.a100_peak)
        );
    }
    let _ = writeln!(
        s,
        "FP64 Matrix-Core advantage: {:.1}x (paper: 3.5x)",
        f.fp64_advantage
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> DeviceRegistry {
        DeviceRegistry::builtin()
    }

    #[test]
    fn headline_numbers_match_paper() {
        // §V-C: AMD 350/88/69 TFLOPS (mixed/float/double), A100 290/19.4.
        let f = run(&devices(), 100_000);
        let row = |t: &str| f.rows.iter().find(|r| r.types == t).unwrap();

        let mixed = row("FP32 <- FP16");
        assert!((mixed.mi250x_tflops.unwrap() - 350.0).abs() < 7.0);
        assert!((mixed.a100_tflops.unwrap() - 290.0).abs() < 5.0);

        let double = row("FP64 <- FP64");
        assert!(
            (double.mi250x_tflops.unwrap() - 69.0).abs() < 3.0,
            "got {:?}",
            double.mi250x_tflops
        );
        assert!((double.a100_tflops.unwrap() - 19.4).abs() < 0.4);

        let single = row("FP32 <- FP32");
        assert!((single.mi250x_tflops.unwrap() - 88.0).abs() < 3.0);
        assert!(single.a100_tflops.is_none(), "A100 has no FP32 tensor path");

        let half = row("FP16 <- FP16");
        assert!(half.mi250x_tflops.is_none(), "CDNA2 has no FP16<-FP16");
        assert!(half.a100_tflops.unwrap() > 280.0);
    }

    #[test]
    fn fp64_advantage_about_3_5x() {
        let f = run(&devices(), 100_000);
        assert!(
            (f.fp64_advantage - 3.55).abs() < 0.3,
            "got {}",
            f.fp64_advantage
        );
    }

    #[test]
    fn amd_wins_three_of_four() {
        let f = run(&devices(), 50_000);
        let amd_wins = f
            .rows
            .iter()
            .filter(|r| match (r.mi250x_tflops, r.a100_tflops) {
                (Some(a), Some(n)) => a > n,
                (Some(_), None) => true,
                _ => false,
            })
            .count();
        assert_eq!(amd_wins, 3, "AMD outperforms in 3 of the 4 combos (§V-C)");
    }
}
