//! Extension experiment: the *rise* of AMD Matrix Cores across
//! generations — MI100 (CDNA1) → MI250X (CDNA2), with the A100 as the
//! competitive reference.
//!
//! The paper's §II frames CDNA2's Matrix Cores as "AMD's second
//! generation matrix-specialized processing units", with FP64 MFMA and
//! full-rate bf16 as the generational additions. This experiment runs
//! the §V throughput micro-benchmark on all three simulated devices and
//! reports the per-generation gains.

use mc_isa::{ampere_catalog, cdna1_catalog, cdna2_catalog, IsaCatalog};
use mc_sim::{throughput_run_all_dies, DeviceId, DeviceRegistry, Gpu};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// One (device, type-combination) measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenerationCell {
    /// Measured TFLOPS (TOPS for INT8); `None` when unsupported.
    pub tflops: Option<f64>,
}

/// One type-combination row across the three devices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenerationRow {
    /// Type-combination label.
    pub types: String,
    /// MI100 (CDNA1).
    pub mi100: Option<f64>,
    /// MI250X (CDNA2, both GCDs).
    pub mi250x: Option<f64>,
    /// A100 (Ampere).
    pub a100: Option<f64>,
}

/// The generations survey.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Generations {
    /// One row per type combination.
    pub rows: Vec<GenerationRow>,
    /// MI250X-over-MI100 mixed-precision gain.
    pub mixed_gain: f64,
}

fn best_peak(gpu: &mut Gpu, catalog: &IsaCatalog, cd: DType, ab: DType, iters: u64) -> Option<f64> {
    let instr = catalog.best_for_types(cd, ab)?;
    let waves = u64::from(gpu.spec().die.total_matrix_units());
    Some(
        throughput_run_all_dies(gpu, instr, waves, iters)
            .expect("microbenchmark launch")
            .tflops,
    )
}

/// Runs the generations survey.
pub fn run(devices: &DeviceRegistry, iterations: u64) -> Generations {
    let mut mi100 = devices.gpu(DeviceId::Mi100);
    let mut mi250x = devices.gpu(DeviceId::Mi250x);
    let mut a100 = devices.gpu(DeviceId::A100);

    let combos = [
        ("FP64 <- FP64", DType::F64, DType::F64),
        ("FP32 <- FP32", DType::F32, DType::F32),
        ("FP32 <- FP16", DType::F32, DType::F16),
        ("FP32 <- BF16", DType::F32, DType::Bf16),
        ("INT32 <- INT8", DType::I32, DType::I8),
    ];

    let rows: Vec<GenerationRow> = combos
        .into_iter()
        .map(|(label, cd, ab)| GenerationRow {
            types: label.to_owned(),
            mi100: best_peak(&mut mi100, cdna1_catalog(), cd, ab, iterations),
            mi250x: best_peak(&mut mi250x, cdna2_catalog(), cd, ab, iterations),
            a100: best_peak(&mut a100, ampere_catalog(), cd, ab, iterations),
        })
        .collect();

    let mixed = rows.iter().find(|r| r.types == "FP32 <- FP16").unwrap();
    let mixed_gain = mixed.mi250x.unwrap() / mixed.mi100.unwrap();
    Generations { rows, mixed_gain }
}

/// The generation survey as a registered experiment.
pub struct GenerationsExperiment;

impl crate::experiment::Experiment for GenerationsExperiment {
    fn id(&self) -> &'static str {
        "generations"
    }

    fn title(&self) -> &'static str {
        "Extension — MI100→MI250X generation survey"
    }

    fn device(&self) -> &'static str {
        "mi100+mi250x+a100"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let g = run(&ctx.devices, ctx.budgets.tput_iters);
        (serde_json::to_value(&g), render(&g))
    }
}

/// Renders the survey as text.
pub fn render(g: &Generations) -> String {
    use std::fmt::Write as _;
    let mut s =
        String::from("Extension: the rise of AMD Matrix Cores — generation survey (T(FL)OPS)\n");
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>10}",
        "types", "MI100", "MI250X", "A100"
    );
    let fmt = |x: Option<f64>| x.map_or("x".to_owned(), |v| format!("{v:.1}"));
    for r in &g.rows {
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>10} {:>10}",
            r.types,
            fmt(r.mi100),
            fmt(r.mi250x),
            fmt(r.a100)
        );
    }
    let _ = writeln!(
        s,
        "CDNA1 -> CDNA2 mixed-precision gain: {:.2}x; FP64 MFMA: new in CDNA2",
        g.mixed_gain
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp64_matrix_cores_are_new_in_cdna2() {
        let g = run(&DeviceRegistry::builtin(), 100_000);
        let fp64 = g.rows.iter().find(|r| r.types == "FP64 <- FP64").unwrap();
        assert!(fp64.mi100.is_none(), "MI100 has no FP64 MFMA");
        assert!(fp64.mi250x.unwrap() > 65.0);
    }

    #[test]
    fn mixed_gain_matches_datasheet_ratio() {
        // MI100: 184.6 TF peak; MI250X: 383 — both at ~91% sustained:
        // gain ≈ 383/184.6 ≈ 2.07.
        let g = run(&DeviceRegistry::builtin(), 100_000);
        assert!((g.mixed_gain - 2.07).abs() < 0.1, "{}", g.mixed_gain);
        let mixed = g.rows.iter().find(|r| r.types == "FP32 <- FP16").unwrap();
        assert!(
            (mixed.mi100.unwrap() - 168.0).abs() < 5.0,
            "{:?}",
            mixed.mi100
        );
    }

    #[test]
    fn bf16_full_rate_is_generational() {
        let g = run(&DeviceRegistry::builtin(), 100_000);
        let bf = g.rows.iter().find(|r| r.types == "FP32 <- BF16").unwrap();
        // CDNA1 bf16 runs at half the fp16 rate; CDNA2 at full rate.
        let mixed = g.rows.iter().find(|r| r.types == "FP32 <- FP16").unwrap();
        let r1 = bf.mi100.unwrap() / mixed.mi100.unwrap();
        let r2 = bf.mi250x.unwrap() / mixed.mi250x.unwrap();
        assert!((r1 - 0.5).abs() < 0.02, "CDNA1 half rate: {r1}");
        assert!((r2 - 1.0).abs() < 0.02, "CDNA2 full rate: {r2}");
    }

    #[test]
    fn nvidia_column_only_where_supported() {
        let g = run(&DeviceRegistry::builtin(), 50_000);
        let f32row = g.rows.iter().find(|r| r.types == "FP32 <- FP32").unwrap();
        assert!(f32row.a100.is_none());
        assert!(f32row.mi100.is_some() && f32row.mi250x.is_some());
    }
}
