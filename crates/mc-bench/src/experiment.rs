//! The experiment abstraction: one registry, one run context, one
//! record format for every artifact in the suite.
//!
//! Each table/figure/extension module implements [`Experiment`]; the
//! `experiments` driver, the [`crate::report`] aggregator, and the
//! integration tests all consume the same [`registry`]. A run produces
//! an [`ExperimentRecord`] — a schema-versioned serde envelope carrying
//! the payload plus evaluated [`Check`] outcomes — which serializes to
//! one JSON file per experiment under `results/`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use mc_power::SamplerConfig;
use mc_sim::DeviceRegistry;
use mc_trace::{chrome_trace_json, MetricsRegistry, RingSink, TraceEvent};
use serde::{Deserialize, Serialize, Value};

/// Version stamped into every [`ExperimentRecord`]; bump when the
/// envelope layout changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Iteration budgets for the three micro-benchmark harness classes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterBudgets {
    /// Latency micro-benchmark loop iterations (Table II).
    pub micro_iters: u64,
    /// Throughput sweep iterations per wavefront (Figs. 3–4, extensions).
    pub tput_iters: u64,
    /// Power sweep iterations per point (Fig. 5) — controls how long the
    /// sampler observes each kernel.
    pub power_iters: u64,
}

impl IterBudgets {
    /// The paper's full budgets: 40 M latency loops, 10⁷ throughput
    /// iterations, and ≥110 s of sampled kernel per power point (≥1000
    /// samples at the 100 ms period, §IV-C).
    pub fn paper() -> Self {
        IterBudgets {
            micro_iters: 40_000_000,
            tput_iters: 10_000_000,
            power_iters: 6_000_000_000,
        }
    }

    /// Reduced budgets for interactive runs; the simulator is
    /// iteration-exact for latency/throughput, and the power sweep keeps
    /// enough samples for stable fits.
    pub fn reduced() -> Self {
        IterBudgets {
            micro_iters: 1_000_000,
            tput_iters: 200_000,
            power_iters: 600_000_000,
        }
    }

    /// Minimal budgets for tests that only exercise plumbing.
    pub fn smoke() -> Self {
        IterBudgets {
            micro_iters: 100_000,
            tput_iters: 50_000,
            power_iters: 60_000_000,
        }
    }

    /// Budgets for a `--paper-iters` flag value.
    pub fn for_flag(paper_iters: bool) -> Self {
        if paper_iters {
            IterBudgets::paper()
        } else {
            IterBudgets::reduced()
        }
    }
}

/// Everything an experiment needs to run: the device registry, the
/// iteration budgets, the power-sampler configuration, and an optional
/// JSON sink directory for record envelopes.
#[derive(Clone, Debug)]
pub struct RunContext {
    /// Device constructor path (single source of `Gpu`s / `BlasHandle`s).
    pub devices: DeviceRegistry,
    /// Iteration budgets.
    pub budgets: IterBudgets,
    /// Power sampler configuration (Fig. 5).
    pub sampler: SamplerConfig,
    /// Directory record envelopes are written to (`results/` by
    /// convention); `None` disables persistence.
    pub json_sink: Option<PathBuf>,
    /// Directory Chrome trace-event files are written to (`--trace DIR`);
    /// `None` disables execution tracing entirely, which is the fast
    /// path: devices keep their no-op sink and pay nothing.
    pub trace_dir: Option<PathBuf>,
    /// Directory OpenMetrics snapshots are written to (`--metrics DIR`).
    /// Like `trace_dir`, setting it activates span capture: each run's
    /// attribution aggregates are exported as
    /// `<dir>/<id>.om` in OpenMetrics text exposition format.
    pub metrics_dir: Option<PathBuf>,
}

impl RunContext {
    /// A context with the built-in devices and the given budgets.
    pub fn new(budgets: IterBudgets) -> Self {
        RunContext {
            devices: DeviceRegistry::builtin(),
            budgets,
            sampler: SamplerConfig::default(),
            json_sink: None,
            trace_dir: None,
            metrics_dir: None,
        }
    }

    /// Reduced-budget context (the driver's default).
    pub fn reduced() -> Self {
        RunContext::new(IterBudgets::reduced())
    }

    /// Full paper-budget context (`--paper-iters`).
    pub fn paper() -> Self {
        RunContext::new(IterBudgets::paper())
    }

    /// Sets the JSON sink directory.
    pub fn with_sink(mut self, dir: impl Into<PathBuf>) -> Self {
        self.json_sink = Some(dir.into());
        self
    }

    /// Sets the trace directory (`--trace DIR`): every experiment run
    /// through [`Experiment::run`] captures its execution timeline and
    /// writes `<dir>/<id>.trace.json` in Chrome trace-event format.
    pub fn with_trace(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Sets the metrics directory (`--metrics DIR`): every experiment
    /// run through [`Experiment::run`] captures its execution timeline,
    /// attributes it, and writes the aggregate metrics as
    /// `<dir>/<id>.om` in OpenMetrics text exposition format (plus the
    /// attribution ledger, see [`RunContext::persist_observability`]).
    pub fn with_metrics(mut self, dir: impl Into<PathBuf>) -> Self {
        self.metrics_dir = Some(dir.into());
        self
    }

    /// Whether span capture is active: either output that consumes a
    /// timeline (`--trace`, `--metrics`) turns the ring on.
    fn captures_spans(&self) -> bool {
        self.trace_dir.is_some() || self.metrics_dir.is_some()
    }

    /// Maps `f` over a sweep's points, in parallel on the global rayon
    /// pool when tracing is disabled.
    ///
    /// Results come back in item order and every point computes
    /// independently, so parallel and sequential execution produce
    /// identical results. With `--trace` or `--metrics` the points run
    /// sequentially: each device advances a monotonic trace clock, and
    /// interleaving launches from worker threads would interleave their
    /// spans.
    pub fn par_points<I, R, F>(&self, items: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync + Send,
    {
        par_map(!self.captures_spans(), items, f)
    }

    /// When span capture is enabled (`--trace` or `--metrics`), returns
    /// a clone of this context whose device registry feeds every
    /// constructed `Gpu`/`BlasHandle` into a fresh bounded ring, plus
    /// the ring itself; otherwise returns this context unchanged and no
    /// ring. Each run gets its own ring so parallel experiments never
    /// interleave their timelines.
    pub fn traced(&self) -> (RunContext, Option<Arc<RingSink>>) {
        if !self.captures_spans() {
            return (self.clone(), None);
        }
        let sink = Arc::new(RingSink::new());
        let mut ctx = self.clone();
        ctx.devices.set_trace_sink(sink.clone());
        (ctx, Some(sink))
    }

    /// Writes a captured timeline to `<trace_dir>/<id>.trace.json` as
    /// Chrome trace-event JSON (loadable in Perfetto / `chrome://
    /// tracing`). Returns the path written, or `None` when no trace
    /// directory is configured.
    pub fn persist_trace(
        &self,
        id: &str,
        events: &[TraceEvent],
    ) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.trace_dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{id}.trace.json"));
        std::fs::write(&path, chrome_trace_json(events))?;
        Ok(Some(path))
    }

    /// Writes the observability artifacts for a captured timeline: the
    /// per-kernel attribution ledger as schema-versioned JSONL next to
    /// the experiment's envelope (`<json_sink>/<id>.attribution.jsonl`,
    /// falling back to the metrics directory when no sink is set), and —
    /// when a metrics directory is configured — the ledger's aggregate
    /// metrics as `<metrics_dir>/<id>.om` in OpenMetrics text
    /// exposition format. Returns the paths written.
    pub fn persist_observability(
        &self,
        id: &str,
        events: &[TraceEvent],
    ) -> std::io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        let records = mc_obs::Attributor::from_registry(&self.devices).attribute(events);
        if let Some(dir) = self.json_sink.as_ref().or(self.metrics_dir.as_ref()) {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("{id}.attribution.jsonl"));
            std::fs::write(&path, mc_obs::to_jsonl(&records))?;
            written.push(path);
        }
        if let Some(dir) = &self.metrics_dir {
            std::fs::create_dir_all(dir)?;
            let mut registry = MetricsRegistry::new();
            mc_obs::register_attribution_metrics(&records, &mut registry);
            let path = dir.join(format!("{id}.om"));
            std::fs::write(&path, mc_trace::openmetrics(&registry))?;
            written.push(path);
        }
        Ok(written)
    }

    /// Writes one verifier gate's aggregate diagnostic counts as
    /// `<metrics_dir>/<id>.verify.om` in OpenMetrics text exposition
    /// format (via [`mc_obs::register_verifier_metrics`]), giving
    /// scrapers the same zero-diagnostic invariant the gate itself
    /// enforces. The name is distinct from the `<id>.om` attribution
    /// exposition, which [`RunContext::persist_observability`] writes
    /// for traced runs. Returns the path written, or `None` when no
    /// metrics directory is configured.
    pub fn persist_verifier_metrics(
        &self,
        id: &str,
        counts: &mc_obs::VerifierCounts,
    ) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.metrics_dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let mut registry = MetricsRegistry::new();
        mc_obs::register_verifier_metrics(counts, &mut registry);
        let path = dir.join(format!("{id}.verify.om"));
        std::fs::write(&path, mc_trace::openmetrics(&registry))?;
        Ok(Some(path))
    }

    /// Writes the host packing-pool counters accumulated during a run
    /// as `<metrics_dir>/<id>.pool.om` in OpenMetrics text exposition
    /// format (via [`mc_obs::register_compute_pool_metrics`]), so the
    /// steady-state-reuse invariant the `pool_reuse` test enforces is
    /// scrapeable next to the wall times it explains. Returns the path
    /// written, or `None` when no metrics directory is configured.
    pub fn persist_pool_metrics(
        &self,
        id: &str,
        counts: &mc_obs::PoolCounts,
    ) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.metrics_dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let mut registry = MetricsRegistry::new();
        mc_obs::register_compute_pool_metrics(counts, &mut registry);
        let path = dir.join(format!("{id}.pool.om"));
        std::fs::write(&path, mc_trace::openmetrics(&registry))?;
        Ok(Some(path))
    }

    /// Writes a record envelope to `<sink>/<experiment id>.json`,
    /// creating the directory. Returns the path written, or `None` when
    /// no sink is configured.
    pub fn persist(&self, record: &ExperimentRecord) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.json_sink else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", record.experiment));
        let json = serde_json::to_string_pretty(record)
            .expect("experiment records are always serializable");
        std::fs::write(&path, json)?;
        Ok(Some(path))
    }
}

/// Maps `f` over `items`, on the global rayon pool when `parallel` is
/// true and in item order on the calling thread otherwise. Results
/// always come back in item order. Sweep `run` functions that only see
/// a [`DeviceRegistry`] use this directly, passing
/// `devices.trace_sink().is_none()` — a registry with a sink attached
/// is feeding a timeline, and interleaved launches from worker threads
/// would interleave its spans.
pub fn par_map<I, R, F>(parallel: bool, items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync + Send,
{
    if !parallel {
        return items.into_iter().map(f).collect();
    }
    use rayon::prelude::*;
    items.into_par_iter().map(f).collect()
}

/// One compared quantity: a measured value against the paper's
/// published value with a relative pass band.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being compared.
    pub metric: String,
    /// The paper's published value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Acceptable relative deviation for a "pass".
    pub band: f64,
}

impl Comparison {
    /// Relative deviation from the paper value.
    pub fn deviation(&self) -> f64 {
        (self.measured - self.paper).abs() / self.paper.abs().max(f64::MIN_POSITIVE)
    }

    /// Whether the measurement is within the band.
    pub fn pass(&self) -> bool {
        self.deviation() <= self.band
    }
}

/// A declarative paper pass-band: where to find the measured value in
/// an experiment's JSON payload, and what the paper says it should be.
#[derive(Clone, Debug, PartialEq)]
pub struct Check {
    /// Metric label (stable; `report` groups by the `<id>/` prefix).
    pub metric: &'static str,
    /// The paper's published value.
    pub paper: f64,
    /// Acceptable relative deviation.
    pub band: f64,
    /// RFC 6901 JSON pointer into the experiment payload.
    pub pointer: &'static str,
}

impl Check {
    /// Declares a check.
    pub const fn new(metric: &'static str, paper: f64, band: f64, pointer: &'static str) -> Self {
        Check {
            metric,
            paper,
            band,
            pointer,
        }
    }

    /// Evaluates the check against a payload. A missing or non-numeric
    /// pointer target yields `measured = NaN`, which never passes — a
    /// wiring bug surfaces as a failed comparison rather than a panic.
    pub fn evaluate(&self, payload: &Value) -> Comparison {
        let measured = payload
            .pointer(self.pointer)
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        Comparison {
            metric: self.metric.to_owned(),
            paper: self.paper,
            measured,
            band: self.band,
        }
    }
}

/// The versioned envelope one experiment run produces.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Envelope layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Stable experiment id (`table2`, `fig5`, …).
    pub experiment: String,
    /// Human-readable title.
    pub title: String,
    /// Device(s) the experiment ran on (registry names).
    pub device: String,
    /// Iteration budgets the run used.
    pub config: IterBudgets,
    /// Wall-clock runtime of the experiment in seconds.
    pub wall_time_s: f64,
    /// Evaluated paper pass-bands.
    pub checks: Vec<Comparison>,
    /// Rendered text artifact (what the CLI prints).
    pub rendered: String,
    /// The full result structure as a JSON value.
    pub payload: Value,
}

/// One registered experiment: a table, figure, or extension artifact.
pub trait Experiment: Send + Sync {
    /// Stable identifier; doubles as the CLI artifact name and the
    /// record filename.
    fn id(&self) -> &'static str;

    /// Human-readable title.
    fn title(&self) -> &'static str;

    /// Registry name(s) of the device(s) this experiment models.
    fn device(&self) -> &'static str;

    /// Declarative paper pass-bands over the payload.
    fn checks(&self) -> Vec<Check> {
        Vec::new()
    }

    /// Runs the experiment, returning its JSON payload and rendered text.
    fn execute(&self, ctx: &RunContext) -> (Value, String);

    /// Runs and wraps the result in a versioned [`ExperimentRecord`],
    /// evaluating this experiment's checks against the payload. When the
    /// context has a trace directory, the run executes against a traced
    /// clone of the registry and its captured timeline is written to
    /// `<trace_dir>/<id>.trace.json`.
    fn run(&self, ctx: &RunContext) -> ExperimentRecord {
        let start = Instant::now();
        let (traced_ctx, ring) = ctx.traced();
        let (payload, rendered) = self.execute(&traced_ctx);
        if let Some(ring) = ring {
            let events = ring.events();
            if let Err(e) = ctx.persist_trace(self.id(), &events) {
                eprintln!("error: could not write trace for `{}`: {e}", self.id());
            }
            if let Err(e) = ctx.persist_observability(self.id(), &events) {
                eprintln!(
                    "error: could not write attribution for `{}`: {e}",
                    self.id()
                );
            }
        }
        let wall_time_s = start.elapsed().as_secs_f64();
        let checks = self.checks().iter().map(|c| c.evaluate(&payload)).collect();
        ExperimentRecord {
            schema_version: SCHEMA_VERSION,
            experiment: self.id().to_owned(),
            title: self.title().to_owned(),
            device: self.device().to_owned(),
            config: ctx.budgets,
            wall_time_s,
            checks,
            rendered,
            payload,
        }
    }
}

/// Every experiment in the suite, in canonical presentation order.
///
/// `report` is last by construction: it aggregates the other
/// experiments' recorded envelopes instead of re-running them.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::table1::Table1Experiment),
        Box::new(crate::table2::Table2Experiment),
        Box::new(crate::table3::Table3Experiment),
        Box::new(crate::fig2::Fig2Experiment),
        Box::new(crate::fig3::Fig3Experiment),
        Box::new(crate::fig4::Fig4Experiment),
        Box::new(crate::fig5::Fig5Experiment),
        Box::new(crate::fig6::Fig6Experiment),
        Box::new(crate::fig7::Fig7Experiment),
        Box::new(crate::fig8::Fig8Experiment),
        Box::new(crate::fig9::Fig9Experiment),
        Box::new(crate::solver_ext::SolverExtExperiment),
        Box::new(crate::ml_dtypes::MlDtypesExperiment),
        Box::new(crate::generations::GenerationsExperiment),
        Box::new(crate::saturation::SaturationExperiment),
        Box::new(crate::lint::LintExperiment),
        Box::new(crate::flow::FlowExperiment),
        Box::new(crate::trace::TraceExperiment),
        Box::new(crate::perf::PerfExperiment),
        Box::new(crate::autotune::AutotuneExperiment),
        Box::new(crate::regress::RegressExperiment),
        Box::new(crate::insight::InsightExperiment),
        Box::new(crate::hostprof::HostprofExperiment),
        Box::new(crate::report::ReportExperiment),
    ]
}

/// Parses record envelopes from a sink directory (one `.json` per
/// experiment). Unreadable or foreign JSON files are skipped; records
/// with a different schema version are reported as errors.
pub fn load_records(dir: &Path) -> Result<Vec<ExperimentRecord>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(Vec::new()), // no recordings yet
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut records = Vec::new();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let Ok(record) = serde_json::from_str::<ExperimentRecord>(&text) else {
            continue; // not an experiment envelope
        };
        if record.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "{}: schema version {} (this binary reads {SCHEMA_VERSION})",
                path.display(),
                record.schema_version
            ));
        }
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_honor_the_paper_flag() {
        assert_eq!(IterBudgets::for_flag(true), IterBudgets::paper());
        assert_eq!(IterBudgets::for_flag(false), IterBudgets::reduced());
        // The satellite fix: --paper-iters must scale the power sweep too.
        assert!(IterBudgets::paper().power_iters > IterBudgets::reduced().power_iters);
    }

    #[test]
    fn check_evaluates_by_pointer() {
        let payload = Value::Object(vec![(
            "series".into(),
            Value::Array(vec![Value::Object(vec![(
                "plateau_tflops".into(),
                Value::F64(172.0),
            )])]),
        )]);
        let check = Check::new(
            "fig3/mixed plateau (TFLOPS)",
            175.0,
            0.03,
            "/series/0/plateau_tflops",
        );
        let cmp = check.evaluate(&payload);
        assert!(cmp.pass());
        assert!((cmp.measured - 172.0).abs() < 1e-12);

        // A broken pointer fails loudly instead of panicking.
        let broken = Check::new("x", 1.0, 0.5, "/missing").evaluate(&payload);
        assert!(broken.measured.is_nan());
        assert!(!broken.pass());
    }

    #[test]
    fn registry_ids_are_unique_and_report_is_last() {
        let experiments = registry();
        let ids: Vec<&str> = experiments.iter().map(|e| e.id()).collect();
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(
            deduped.len(),
            ids.len(),
            "duplicate experiment ids: {ids:?}"
        );
        assert_eq!(ids.last(), Some(&"report"));
    }

    #[test]
    fn persist_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "mc-bench-experiment-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let record = ExperimentRecord {
            schema_version: SCHEMA_VERSION,
            experiment: "table1".into(),
            title: "t".into(),
            device: "mi250x".into(),
            config: IterBudgets::smoke(),
            wall_time_s: 0.5,
            checks: vec![Comparison {
                metric: "m".into(),
                paper: 1.0,
                measured: 1.01,
                band: 0.05,
            }],
            rendered: "text".into(),
            payload: Value::Object(vec![("x".into(), Value::U64(3))]),
        };
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&dir);
        let path = ctx.persist(&record).unwrap().unwrap();
        assert!(path.ends_with("table1.json"));
        let loaded = load_records(&dir).unwrap();
        assert_eq!(loaded, vec![record]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verifier_metrics_expose_gate_counts() {
        let dir = std::env::temp_dir().join(format!(
            "mc-bench-verify-om-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Without a metrics directory the helper is a no-op.
        let ctx = RunContext::new(IterBudgets::smoke());
        let counts = mc_obs::VerifierCounts::new("flow", 42, 0, 1);
        assert_eq!(ctx.persist_verifier_metrics("flow", &counts).unwrap(), None);

        let ctx = ctx.with_metrics(&dir);
        let path = ctx
            .persist_verifier_metrics("flow", &counts)
            .unwrap()
            .unwrap();
        assert!(path.ends_with("flow.verify.om"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("verifier_flow_subjects 42"), "{text}");
        assert!(text.contains("verifier_flow_errors 0"), "{text}");
        assert!(text.contains("verifier_flow_warnings 1"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_metrics_expose_reuse_counters() {
        let dir = std::env::temp_dir().join(format!(
            "mc-bench-pool-om-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Without a metrics directory the helper is a no-op.
        let ctx = RunContext::new(IterBudgets::smoke());
        let counts = mc_obs::PoolCounts::new(96, 4, 100, 0, 8192);
        assert_eq!(ctx.persist_pool_metrics("perf", &counts).unwrap(), None);

        let ctx = ctx.with_metrics(&dir);
        let path = ctx.persist_pool_metrics("perf", &counts).unwrap().unwrap();
        assert!(path.ends_with("perf.pool.om"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("compute_pool_hits 96"), "{text}");
        assert!(text.contains("compute_pool_misses 4"), "{text}");
        assert!(text.contains("compute_pool_hit_rate_ratio 0.96"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
