//! Extension experiment: the machine-learning datatypes (§II).
//!
//! The paper's evaluation focuses on the IEEE types for HPC, noting that
//! Matrix Cores "also support 8-byte (INT8) integer … along with the
//! half-precision datatype bfloat16, which are specifically targeting
//! machine learning workloads". This experiment completes the picture:
//! instruction-level throughput for INT8 and both bfloat16 generations
//! (current `_1k` encodings at full rate, legacy CDNA1 encodings at half
//! rate), using the same §V micro-benchmark.

use mc_isa::cdna2_catalog;
use mc_sim::{throughput_run_all_dies, DeviceId, DeviceRegistry};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// One instruction's measured throughput.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MlDtypeRow {
    /// Instruction mnemonic.
    pub mnemonic: String,
    /// Measured package throughput in TFLOPS (TOPS for INT8).
    pub tops: f64,
    /// Theoretical package peak.
    pub peak_tops: f64,
    /// Fraction of peak.
    pub fraction: f64,
}

/// The experiment result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MlDtypes {
    /// One row per instruction.
    pub rows: Vec<MlDtypeRow>,
}

/// Runs the ML-datatype throughput survey on the whole MI250X package.
pub fn run(devices: &DeviceRegistry, iterations: u64) -> MlDtypes {
    let mut gpu = devices.gpu(DeviceId::Mi250x);
    let catalog = cdna2_catalog();
    let picks = [
        ("v_mfma_i32_16x16x16i8", DType::I32, DType::I8),
        ("v_mfma_f32_16x16x16bf16_1k", DType::F32, DType::Bf16),
        ("v_mfma_f32_16x16x8bf16", DType::F32, DType::Bf16), // legacy, half rate
    ];
    let rows = picks
        .into_iter()
        .map(|(mnemonic, _cd, _ab)| {
            let instr = *catalog.by_mnemonic(mnemonic).expect("catalogued");
            let r = throughput_run_all_dies(&mut gpu, &instr, 440, iterations)
                .expect("ML dtype launch");
            let peak = gpu.spec().peak_flops(instr.flops_per_cu_per_cycle()) / 1e12;
            MlDtypeRow {
                mnemonic: mnemonic.to_owned(),
                tops: r.tflops,
                peak_tops: peak,
                fraction: r.tflops / peak,
            }
        })
        .collect();
    MlDtypes { rows }
}

/// The ML-datatype extension as a registered experiment.
pub struct MlDtypesExperiment;

impl crate::experiment::Experiment for MlDtypesExperiment {
    fn id(&self) -> &'static str {
        "mldtypes"
    }

    fn title(&self) -> &'static str {
        "Extension — INT8/BF16 instruction throughput"
    }

    fn device(&self) -> &'static str {
        "mi250x"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let m = run(&ctx.devices, ctx.budgets.tput_iters);
        (serde_json::to_value(&m), render(&m))
    }
}

/// Renders the experiment as text.
pub fn render(m: &MlDtypes) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Extension: ML datatypes (INT8, BF16) on the MI250X package\n");
    let _ = writeln!(
        s,
        "{:<30} {:>10} {:>10} {:>8}",
        "instruction", "T(FL)OPS", "peak", "%"
    );
    for r in &m.rows {
        let _ = writeln!(
            s,
            "{:<30} {:>10.1} {:>10.1} {:>7.1}%",
            r.mnemonic,
            r.tops,
            r.peak_tops,
            r.fraction * 100.0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_hits_the_383_tops_class() {
        let m = run(&DeviceRegistry::builtin(), 100_000);
        let i8row = &m.rows[0];
        // Same per-cycle rate family as FP16: ~383 TOPS peak, ~350 achieved.
        assert!((i8row.peak_tops - 383.0).abs() < 1.0);
        assert!((i8row.tops - 350.0).abs() < 7.0, "{}", i8row.tops);
    }

    #[test]
    fn bf16_1k_matches_fp16_and_legacy_is_half_rate() {
        let m = run(&DeviceRegistry::builtin(), 100_000);
        let bf = &m.rows[1];
        let legacy = &m.rows[2];
        assert!((bf.tops - 350.0).abs() < 7.0, "{}", bf.tops);
        let ratio = legacy.tops / bf.tops;
        assert!((ratio - 0.5).abs() < 0.02, "legacy/new = {ratio}");
    }

    #[test]
    fn all_rows_achieve_high_fraction_of_peak() {
        let m = run(&DeviceRegistry::builtin(), 50_000);
        for r in &m.rows {
            assert!(
                r.fraction > 0.88 && r.fraction < 1.0,
                "{}: {}",
                r.mnemonic,
                r.fraction
            );
        }
    }
}
