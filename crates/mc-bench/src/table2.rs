//! Table II: measured latency of Matrix Core MFMA instructions,
//! regenerated with the single-wavefront loop micro-benchmark (§IV-A).

use mc_sim::{measure_latency, DeviceId, DeviceRegistry};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// One row of Table II.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// `typeCD <- typeAB` label.
    pub types: String,
    /// Shape token.
    pub shape: String,
    /// Measured latency in cycles.
    pub latency_cycles: f64,
    /// Implied FLOPs/CU/cycle (the §V-A validation identity).
    pub flops_per_cu_per_cycle: f64,
}

/// The reproduced Table II.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows in the paper's order.
    pub rows: Vec<Table2Row>,
    /// Loop iterations used per measurement.
    pub iterations: u64,
}

/// The shapes the paper measures, in its row order.
pub const PAPER_ROWS: [(DType, DType, u32, u32, u32); 5] = [
    (DType::F32, DType::F32, 32, 32, 2),
    (DType::F32, DType::F32, 16, 16, 4),
    (DType::F32, DType::F16, 32, 32, 8),
    (DType::F32, DType::F16, 16, 16, 16),
    (DType::F64, DType::F64, 16, 16, 4),
];

/// Regenerates Table II. `iterations` of 40 million matches the paper;
/// smaller values give identical results on the simulator.
pub fn run(devices: &DeviceRegistry, iterations: u64) -> Table2 {
    let mut gpu = devices.gpu(DeviceId::Mi250x);
    let catalog = mc_isa::cdna2_catalog();
    let rows = PAPER_ROWS
        .into_iter()
        .map(|(cd, ab, m, n, k)| {
            let instr = catalog.find(cd, ab, m, n, k).expect("paper rows exist");
            let r = measure_latency(&mut gpu, 0, instr, iterations).expect("launch succeeds");
            Table2Row {
                types: format!("{cd} <- {ab}"),
                shape: format!("{m}x{n}x{k}"),
                latency_cycles: r.cycles,
                flops_per_cu_per_cycle: r.flops_per_cu_per_cycle,
            }
        })
        .collect();
    Table2 { rows, iterations }
}

/// Table II as a registered experiment.
pub struct Table2Experiment;

impl crate::experiment::Experiment for Table2Experiment {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Table II — measured MFMA instruction latencies"
    }

    fn device(&self) -> &'static str {
        "mi250x"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![
            Check::new(
                "table2/FP32 <- FP32 32x32x2 latency (cycles)",
                64.0,
                0.01,
                "/rows/0/latency_cycles",
            ),
            Check::new(
                "table2/FP32 <- FP32 16x16x4 latency (cycles)",
                32.0,
                0.01,
                "/rows/1/latency_cycles",
            ),
            Check::new(
                "table2/FP32 <- FP16 32x32x8 latency (cycles)",
                64.0,
                0.01,
                "/rows/2/latency_cycles",
            ),
            Check::new(
                "table2/FP32 <- FP16 16x16x16 latency (cycles)",
                32.0,
                0.01,
                "/rows/3/latency_cycles",
            ),
            Check::new(
                "table2/FP64 <- FP64 16x16x4 latency (cycles)",
                32.0,
                0.01,
                "/rows/4/latency_cycles",
            ),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let t = run(&ctx.devices, ctx.budgets.micro_iters);
        (serde_json::to_value(&t), render(&t))
    }
}

/// Renders the table as text.
pub fn render(t: &Table2) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "Table II: measured MFMA latency ({} loop iterations, 1 wavefront)\n",
        t.iterations
    );
    let _ = writeln!(
        s,
        "{:<16} {:<10} {:>16} {:>20}",
        "types", "m x n x k", "latency (cycles)", "FLOPs/CU/cycle"
    );
    for r in &t.rows {
        let _ = writeln!(
            s,
            "{:<16} {:<10} {:>16.1} {:>20.0}",
            r.types, r.shape, r.latency_cycles, r.flops_per_cu_per_cycle
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> DeviceRegistry {
        DeviceRegistry::builtin()
    }

    #[test]
    fn reproduces_paper_latencies() {
        let t = run(&devices(), 1_000_000);
        let expected = [64.0, 32.0, 64.0, 32.0, 32.0];
        assert_eq!(t.rows.len(), 5);
        for (row, want) in t.rows.iter().zip(expected) {
            assert!(
                (row.latency_cycles - want).abs() < 0.05,
                "{} {}: {} vs {want}",
                row.types,
                row.shape,
                row.latency_cycles
            );
        }
    }

    #[test]
    fn implied_rates_match_cdna2_whitepaper() {
        // §V-A: 8mnk/c must equal the documented FLOPs/CU/cycle.
        let t = run(&devices(), 100_000);
        for row in &t.rows {
            let want = if row.types.contains("FP16") {
                1024.0
            } else {
                256.0
            };
            assert!((row.flops_per_cu_per_cycle - want).abs() < 1.0, "{row:?}");
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let t = run(&devices(), 10_000);
        let text = render(&t);
        assert!(text.contains("16x16x16"));
        assert!(text.contains("FP64 <- FP64"));
    }
}
