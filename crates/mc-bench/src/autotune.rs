//! Autotune — the scored plan search against the static planner across
//! the paper's rocBLAS sweep (Figs. 6–7 shapes).
//!
//! For every routine of the Fig. 6/7 evaluation (SGEMM, DGEMM, HGEMM,
//! HSS, HHS) and every size of the §VII `N×N×N` grid, this experiment
//! runs [`mc_blas::select_plan`] — enumerate, lint-gate, rank with the
//! Eq. 2 analytic model, dry-run the finalists on the pure simulator
//! engine — and records the searched plan's engine time next to the
//! static planner's. The search dry-runs the static plan as a finalist
//! and takes the engine-time argmin, so the selected plan is never
//! slower than the static one under the engine's own model; the
//! experiment's gate check asserts exactly that envelope over the whole
//! sweep (`losing_points == 0`).
//!
//! The sweep also exercises the §VII policy rules as *outcomes*: HGEMM
//! points must come back SIMD-only (no FP16-accumulating MFMA exists),
//! and the scaled mixed-precision N = 16 points must stay off the
//! Matrix Cores (the pipeline-handoff penalty, `docs/AUTOTUNE.md`).
//!
//! Points are pure engine computations (no device state, no host GEMM),
//! so the full grid is cheap and runs in parallel.

use mc_blas::{select_plan, GemmDesc, GemmOp, Strategy};
use mc_sim::{DeviceId, DeviceRegistry};
use serde::{Deserialize, Serialize};

use crate::experiment::IterBudgets;
use crate::gemm_sweep_sizes;

/// The routines of the Fig. 6/7 evaluation, in presentation order.
pub const SWEEP_OPS: [GemmOp; 5] = [
    GemmOp::Sgemm,
    GemmOp::Dgemm,
    GemmOp::Hgemm,
    GemmOp::Hss,
    GemmOp::Hhs,
];

/// One (routine, N) point of the autotune sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AutotunePoint {
    /// Routine name.
    pub routine: String,
    /// Square problem dimension.
    pub n: usize,
    /// The static planner's engine-modeled time in seconds.
    pub static_time_s: f64,
    /// The searched plan's engine-modeled time in seconds.
    pub searched_time_s: f64,
    /// `static_time_s / searched_time_s` (≥ 1.0 by construction).
    pub speedup: f64,
    /// Compact description of the winning strategy.
    pub strategy: String,
    /// Whether the winner uses the Matrix Cores.
    pub matrix_cores: bool,
    /// Candidate strategies enumerated for this point.
    pub enumerated: usize,
    /// Candidates the static verifier rejected.
    pub lint_rejected: usize,
    /// Candidates the dataflow verifier rejected (races, waitcnt,
    /// register working-set overflows).
    pub flow_rejected: usize,
}

/// The autotune sweep payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Autotune {
    /// Every (routine, N) point of the sweep.
    pub points: Vec<AutotunePoint>,
    /// Points where the searched plan was slower than the static plan —
    /// the gate count, zero by the search's argmin construction.
    pub losing_points: usize,
    /// Points where the search found a strictly faster plan.
    pub improved_points: usize,
    /// Smallest selected-vs-static speedup across the sweep.
    pub min_speedup: f64,
    /// Largest selected-vs-static speedup across the sweep.
    pub max_speedup: f64,
}

/// The size grid for a budget tier: the full §VII grid up to 8192 for
/// the reduced and paper tiers, a three-point smoke subset otherwise.
/// (The search never allocates matrices, so the cap is about sweep
/// breadth, not memory.)
pub fn sweep_sizes(budgets: &IterBudgets) -> Vec<usize> {
    if *budgets == IterBudgets::smoke() {
        vec![16, 256, 2048]
    } else {
        gemm_sweep_sizes(8192)
    }
}

/// Compact human-readable form of a strategy for the payload.
fn describe(strategy: &Strategy) -> String {
    match strategy {
        Strategy::MatrixCore {
            instr,
            macro_tile,
            wave_tile,
            k_step,
            buffering,
        } => format!(
            "{} mt{}x{} wt{}x{} k{} {:?}",
            instr.mnemonic(),
            macro_tile.0,
            macro_tile.1,
            wave_tile.0,
            wave_tile.1,
            k_step,
            buffering
        ),
        Strategy::SimdOnly { .. } => "simd".to_owned(),
    }
}

/// Runs the autotune sweep over the given size grid.
pub fn run(devices: &DeviceRegistry, sizes: &[usize]) -> Autotune {
    let cfg = devices.config(DeviceId::Mi250xGcd).clone();
    let die = cfg.package.die.clone();
    let grid: Vec<(GemmOp, usize)> = SWEEP_OPS
        .iter()
        .flat_map(|&op| sizes.iter().map(move |&n| (op, n)))
        .collect();
    let points: Vec<AutotunePoint> =
        crate::experiment::par_map(devices.trace_sink().is_none(), grid, |(op, n)| {
            let out = select_plan(&die, &cfg, &GemmDesc::square(op, n))
                .expect("sweep descriptors are valid");
            // The gate's second invariant: a searched winner is
            // race-free by construction, because build_plan rejects
            // flow-failing candidates before ranking. Re-verify the
            // winner so a future planner regression trips here.
            let verdict = mc_flow::analyze_kernel(&die, &out.plan.kernel);
            assert!(
                !verdict.has_errors(),
                "searched winner {op} N={n} failed dataflow verification:\n{}",
                verdict.render()
            );
            AutotunePoint {
                routine: op.routine().to_owned(),
                n,
                static_time_s: out.static_time_s,
                searched_time_s: out.searched_time_s,
                speedup: out.speedup(),
                strategy: describe(&out.plan.strategy),
                matrix_cores: out.plan.strategy.uses_matrix_cores(),
                enumerated: out.enumerated,
                lint_rejected: out.lint_rejected,
                flow_rejected: out.flow_rejected,
            }
        });
    let losing_points = points
        .iter()
        .filter(|p| p.searched_time_s > p.static_time_s)
        .count();
    let improved_points = points
        .iter()
        .filter(|p| p.searched_time_s < p.static_time_s)
        .count();
    let min_speedup = points
        .iter()
        .map(|p| p.speedup)
        .fold(f64::INFINITY, f64::min);
    let max_speedup = points.iter().map(|p| p.speedup).fold(0.0, f64::max);
    Autotune {
        points,
        losing_points,
        improved_points,
        min_speedup,
        max_speedup,
    }
}

/// The autotune sweep as a registered experiment.
pub struct AutotuneExperiment;

impl crate::experiment::Experiment for AutotuneExperiment {
    fn id(&self) -> &'static str {
        "autotune"
    }

    fn title(&self) -> &'static str {
        "Gate — scored plan search vs static planner over the Fig. 6/7 sweep"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![Check::new(
            "autotune/points losing to static",
            0.0,
            0.0,
            "/losing_points",
        )]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let a = run(&ctx.devices, &sweep_sizes(&ctx.budgets));
        (serde_json::to_value(&a), render(&a))
    }
}

/// Renders the sweep as text.
pub fn render(a: &Autotune) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Autotune: scored plan search vs static planner (engine model)\n");
    let _ = writeln!(
        s,
        "{:>6} {:>6} {:>12} {:>12} {:>8}  winner",
        "op", "N", "static_s", "searched_s", "speedup"
    );
    for p in &a.points {
        let _ = writeln!(
            s,
            "{:>6} {:>6} {:>12.6e} {:>12.6e} {:>7.3}x  {}",
            p.routine, p.n, p.static_time_s, p.searched_time_s, p.speedup, p.strategy
        );
    }
    let _ = writeln!(
        s,
        "{} points: {} improved, {} losing (must be 0); speedup {:.3}x..{:.3}x",
        a.points.len(),
        a.improved_points,
        a.losing_points,
        a.min_speedup,
        a.max_speedup
    );
    let verdict = if a.losing_points == 0 {
        "gate: PASS (selected never slower than static)"
    } else {
        "gate: FAIL"
    };
    let _ = writeln!(s, "{verdict}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, RunContext};

    #[test]
    fn sweep_never_loses_to_static() {
        let a = run(&DeviceRegistry::builtin(), &[16, 256, 2048]);
        assert_eq!(a.points.len(), SWEEP_OPS.len() * 3);
        assert_eq!(a.losing_points, 0, "{}", render(&a));
        assert!(a.min_speedup >= 1.0);
        assert!(a.max_speedup >= a.min_speedup);
    }

    #[test]
    fn policy_rules_hold_as_outcomes() {
        let a = run(&DeviceRegistry::builtin(), &[16, 256]);
        for p in &a.points {
            if p.routine == "hgemm" {
                assert!(!p.matrix_cores, "hgemm N={} must stay SIMD", p.n);
            }
            if p.n == 16 && (p.routine == "hhs" || p.routine == "hss") {
                assert!(!p.matrix_cores, "{} N=16 must stay SIMD", p.routine);
            }
        }
    }

    #[test]
    fn sweep_sizes_scale_with_budget() {
        assert_eq!(sweep_sizes(&IterBudgets::smoke()), vec![16, 256, 2048]);
        let full = sweep_sizes(&IterBudgets::reduced());
        assert_eq!(full.first(), Some(&16));
        assert_eq!(full.last(), Some(&8192));
        assert!(full.len() > 5);
    }

    #[test]
    fn experiment_gate_check_passes() {
        let ctx = RunContext::new(IterBudgets::smoke());
        let record = AutotuneExperiment.run(&ctx);
        assert_eq!(record.checks.len(), 1);
        assert!(
            record.checks.iter().all(|c| c.pass()),
            "{}",
            record.rendered
        );
        assert!(record.rendered.contains("gate: PASS"));
    }

    #[test]
    fn points_report_search_accounting() {
        let a = run(&DeviceRegistry::builtin(), &[2048]);
        let sgemm = a
            .points
            .iter()
            .find(|p| p.routine == "sgemm")
            .expect("sgemm swept");
        assert!(sgemm.enumerated > 10, "{}", sgemm.enumerated);
        assert!(sgemm.matrix_cores);
        assert!(sgemm.strategy.contains("mt"), "{}", sgemm.strategy);
        // Today's emitters produce no flow-rejected candidates; the
        // field exists so a regression shows up in the payload.
        assert_eq!(sgemm.flow_rejected, 0);
    }
}
