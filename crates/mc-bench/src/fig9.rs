//! Fig. 9: the number of floating-point operations executed on Matrix
//! Cores and SIMD units per GEMM, measured from counters and compared
//! against the paper's `2N³` / `3N²` polynomial model.

use mc_blas::{BlasHandle, GemmDesc, GemmOp};
use mc_model::FlopDistribution;
use mc_profiler::{FlopBreakdown, ProfilerSession};
use mc_sim::{DeviceId, DeviceRegistry};
use serde::{Deserialize, Serialize};

/// One measured/modelled point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig9Point {
    /// Matrix dimension N.
    pub n: usize,
    /// Measured Matrix Core FLOPs (Eq. 1).
    pub measured_mfma: u64,
    /// Measured SIMD FLOPs (Eq. 1).
    pub measured_simd: u64,
    /// Model: `2N³`.
    pub model_mfma: u64,
    /// Model: `3N²`.
    pub model_simd: u64,
}

/// One routine's series.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig9Series {
    /// Routine name.
    pub routine: String,
    /// Per-N points.
    pub points: Vec<Fig9Point>,
}

/// The reproduced Fig. 9.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig9 {
    /// SGEMM and DGEMM series (the figure's routines).
    pub series: Vec<Fig9Series>,
}

/// Regenerates Fig. 9 over the paper's N range (16 … 8192 suffices to
/// validate the polynomial; larger N only extends the same lines).
pub fn run(devices: &DeviceRegistry) -> Fig9 {
    let mut handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
    let sizes = [16usize, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];
    let series = [GemmOp::Sgemm, GemmOp::Dgemm]
        .into_iter()
        .map(|op| {
            let points = sizes
                .iter()
                .map(|&n| {
                    let session =
                        ProfilerSession::begin(handle.gpu(), handle.die()).expect("valid die");
                    handle.gemm_timed(&GemmDesc::square(op, n)).expect("fits");
                    let counters = session.end(handle.gpu()).expect("valid die");
                    let b = FlopBreakdown::from_counters(&counters);
                    Fig9Point {
                        n,
                        measured_mfma: b.total_matrix_core(),
                        measured_simd: b.total_simd(),
                        model_mfma: FlopDistribution::matrix_core_flops(n as u64),
                        model_simd: FlopDistribution::simd_flops(n as u64),
                    }
                })
                .collect();
            Fig9Series {
                routine: op.routine().to_owned(),
                points,
            }
        })
        .collect();
    Fig9 { series }
}

/// Fig. 9 as a registered experiment.
pub struct Fig9Experiment;

impl crate::experiment::Experiment for Fig9Experiment {
    fn id(&self) -> &'static str {
        "fig9"
    }

    fn title(&self) -> &'static str {
        "Fig. 9 — FLOP distribution vs the 2N³/3N² model"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let f = run(&ctx.devices);
        (serde_json::to_value(&f), render(&f))
    }
}

/// Renders the figure data as text.
pub fn render(f: &Fig9) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        "Fig. 9: FLOPs on Matrix Cores vs SIMD units (measured | 2N^3 / 3N^2 model)\n",
    );
    for g in &f.series {
        let _ = writeln!(s, "-- {} --", g.routine);
        let _ = writeln!(
            s,
            "{:>8} {:>16} {:>16} {:>16} {:>16}",
            "N", "MC measured", "MC model", "SIMD measured", "SIMD model"
        );
        for p in &g.points {
            let _ = writeln!(
                s,
                "{:>8} {:>16} {:>16} {:>16} {:>16}",
                p.n, p.measured_mfma, p.model_mfma, p.measured_simd, p.model_simd
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_overlaps_measurement_for_n_ge_32() {
        // §VII: "The overlapping of the model and experimental values
        // for N ≥ 32 validates our model".
        let f = run(&DeviceRegistry::builtin());
        for g in &f.series {
            for p in g.points.iter().filter(|p| p.n >= 32) {
                assert_eq!(p.measured_mfma, p.model_mfma, "{} N={}", g.routine, p.n);
                assert_eq!(p.measured_simd, p.model_simd, "{} N={}", g.routine, p.n);
            }
        }
    }

    #[test]
    fn mc_to_simd_ratio_is_two_thirds_n() {
        let f = run(&DeviceRegistry::builtin());
        for g in &f.series {
            for p in g.points.iter().filter(|p| p.n >= 64) {
                let ratio = p.measured_mfma as f64 / p.measured_simd as f64;
                let expect = 2.0 * p.n as f64 / 3.0;
                assert!(
                    (ratio - expect).abs() / expect < 0.01,
                    "{} N={}",
                    g.routine,
                    p.n
                );
            }
        }
    }

    #[test]
    fn cubic_term_dominates_quickly() {
        let f = run(&DeviceRegistry::builtin());
        let p = f.series[0].points.iter().find(|p| p.n == 1024).unwrap();
        assert!(p.measured_mfma > 600 * p.measured_simd);
    }
}
