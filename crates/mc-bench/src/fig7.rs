//! Fig. 7: rocBLAS mixed-precision GEMM throughput (HGEMM / HSS / HHS)
//! plus the §VII Matrix-Core-over-SIMD speedup analysis that uses HGEMM
//! as the SIMD-only reference.

use mc_blas::GemmOp;
use mc_sim::DeviceRegistry;
use serde::{Deserialize, Serialize};

use crate::fig6::{render_series, sweep, GemmSeries};

/// The reproduced Fig. 7.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig7 {
    /// HGEMM (SIMD-only) series.
    pub hgemm: GemmSeries,
    /// HHS series.
    pub hhs: GemmSeries,
    /// HSS series.
    pub hss: GemmSeries,
    /// Per-N speedup of HHS over HGEMM (§VII: 2.3–7.5×).
    pub speedup_hhs_over_hgemm: Vec<(usize, f64)>,
    /// Largest per-N speedup (the paper's 7.5× headline).
    pub max_speedup: f64,
}

/// Regenerates Fig. 7.
pub fn run(devices: &DeviceRegistry) -> Fig7 {
    let hgemm = sweep(devices, GemmOp::Hgemm);
    let hhs = sweep(devices, GemmOp::Hhs);
    let hss = sweep(devices, GemmOp::Hss);

    let speedup: Vec<(usize, f64)> = hhs
        .points
        .iter()
        .filter_map(|p| {
            let base = hgemm.points.iter().find(|q| q.n == p.n)?;
            (p.n >= 1024).then_some((p.n, p.tflops / base.tflops))
        })
        .collect();
    let max_speedup = speedup.iter().map(|p| p.1).fold(0.0, f64::max);

    Fig7 {
        hgemm,
        hhs,
        hss,
        speedup_hhs_over_hgemm: speedup,
        max_speedup,
    }
}

/// Fig. 7 as a registered experiment.
pub struct Fig7Experiment;

impl crate::experiment::Experiment for Fig7Experiment {
    fn id(&self) -> &'static str {
        "fig7"
    }

    fn title(&self) -> &'static str {
        "Fig. 7 — rocBLAS HGEMM/HSS/HHS vs N + speedups"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![
            Check::new("fig7/HHS peak (TFLOPS)", 155.0, 0.12, "/hhs/peak/tflops"),
            Check::new("fig7/max MC speedup (x)", 7.5, 0.20, "/max_speedup"),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let f = run(&ctx.devices);
        (serde_json::to_value(&f), render(&f))
    }
}

/// Renders the figure data as text.
pub fn render(f: &Fig7) -> String {
    use std::fmt::Write as _;
    let mut s = render_series(
        "Fig. 7: rocBLAS mixed-precision GEMM throughput (TFLOPS)",
        &[&f.hgemm, &f.hhs, &f.hss],
    );
    let _ = writeln!(s, "Matrix-Core speedup (HHS / HGEMM):");
    for (n, x) in &f.speedup_hhs_over_hgemm {
        let _ = writeln!(s, "  N = {n:>6}: {x:.1}x");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hhs_peak_near_paper() {
        // §VII: 155 TFLOPS peak for HHS, 88% of the §V one-GCD plateau.
        // Our simulator lands high (≈170, see EXPERIMENTS.md); assert the
        // shape: well above 100, below the 175 microbench plateau.
        let f = run(&DeviceRegistry::builtin());
        assert!(
            f.hhs.peak.tflops > 130.0 && f.hhs.peak.tflops < 176.0,
            "{}",
            f.hhs.peak.tflops
        );
        assert!(
            f.hhs.peak.n >= 4096 && f.hhs.peak.n <= 16384,
            "{}",
            f.hhs.peak.n
        );
    }

    #[test]
    fn hgemm_always_loses() {
        // §VII: "HGEMM ... is consistently outperformed by HSS and HHS
        // for all matrix sizes" (above the launch-bound regime).
        let f = run(&DeviceRegistry::builtin());
        for p in f.hgemm.points.iter().filter(|p| p.n >= 256) {
            let hhs = f.hhs.points.iter().find(|q| q.n == p.n).unwrap();
            let hss = f.hss.points.iter().find(|q| q.n == p.n).unwrap();
            assert!(hhs.tflops > p.tflops, "N={}", p.n);
            assert!(hss.tflops > p.tflops, "N={}", p.n);
        }
    }

    #[test]
    fn hhs_outperforms_hss_above_1024() {
        let f = run(&DeviceRegistry::builtin());
        for p in f.hhs.points.iter().filter(|p| p.n > 1024) {
            let hss = f.hss.points.iter().find(|q| q.n == p.n).unwrap();
            assert!(
                p.tflops >= hss.tflops * 0.98,
                "N={}: {} vs {}",
                p.n,
                p.tflops,
                hss.tflops
            );
        }
    }

    #[test]
    fn speedup_in_paper_band() {
        // §VII: 2.3x–7.5x Matrix Cores over SIMD in mixed precision.
        let f = run(&DeviceRegistry::builtin());
        let max = f
            .speedup_hhs_over_hgemm
            .iter()
            .map(|p| p.1)
            .fold(0.0, f64::max);
        let min = f
            .speedup_hhs_over_hgemm
            .iter()
            .map(|p| p.1)
            .fold(f64::MAX, f64::min);
        assert!(max > 5.0 && max < 10.0, "max {max}");
        assert!(min > 1.5 && min < 5.0, "min {min}");
    }

    #[test]
    fn hgemm_plateau_near_20_tflops() {
        let f = run(&DeviceRegistry::builtin());
        let big: Vec<f64> = f
            .hgemm
            .points
            .iter()
            .filter(|p| p.n >= 8192)
            .map(|p| p.tflops)
            .collect();
        let mean = big.iter().sum::<f64>() / big.len() as f64;
        assert!((mean - 20.0).abs() < 6.0, "{mean}");
    }
}
