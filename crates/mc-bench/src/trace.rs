//! Trace replay gate: the `trace` artifact.
//!
//! Replays one representative GEMM workload on every registered device
//! with a ring-buffer trace sink attached, then audits the captured
//! timeline the way a profiler's self-test would: spans must nest by
//! category depth, per-CU pipeline busy time can never exceed the
//! kernel wall time, sequential launches may not overlap on a lane, and
//! — the rocprof cross-check — the `ctr.*` counter arguments summed
//! over all kernel spans must equal the [`mc_sim::HwCounters`] bank the
//! device accumulated. The run also funnels every telemetry surface
//! (`HwCounters`, package power, SMI sampling statistics) through one
//! [`mc_trace::MetricsRegistry`], so the unified snapshot API is
//! exercised end to end. Any violation or mismatch fails the artifact
//! (the `experiments` driver exits non-zero), so a regression in the
//! instrumentation can never silently ship broken timelines.

use std::collections::BTreeMap;
use std::sync::Arc;

use mc_blas::{BlasHandle, GemmDesc, GemmOp};
use mc_isa::MatrixArch;
use mc_power::{BackgroundSampler, SamplerConfig};
use mc_profiler::ProfilerSession;
use mc_sim::{engine, DeviceId, DeviceRegistry, Gpu, HwCounters, Smi, COUNTER_NAMES};
use mc_trace::{
    check_invariants, folded_stacks, ArgValue, Category, MetricsRegistry, RingSink, TraceEvent,
};
use mc_types::DType;
use mc_wmma::{mma_loop_kernel, wmma_gemm_tile_kernel, LoopKernelParams};
use serde::{Deserialize, Serialize};

/// The audited timeline of one device's replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceTimeline {
    /// Registry name of the device.
    pub device: String,
    /// Total captured events.
    pub events: usize,
    /// Events evicted from the ring (must be 0 for a valid cross-check).
    pub dropped: u64,
    /// Plan spans (mc-blas planner windows).
    pub plan_spans: usize,
    /// Kernel launch spans.
    pub kernel_spans: usize,
    /// Dispatch-round spans.
    pub round_spans: usize,
    /// Counter samples (power, occupancy).
    pub counter_samples: usize,
    /// Timeline extent in microseconds (last span end).
    pub extent_us: f64,
    /// Folded flamegraph lines the timeline collapses into.
    pub flame_lines: usize,
    /// Named metrics the run registered.
    pub metrics: usize,
    /// Timeline invariant violations (empty for a healthy tree).
    pub violations: Vec<String>,
    /// Event-total vs `HwCounters` disagreements (empty when healthy).
    pub counter_mismatches: Vec<String>,
}

/// The full replay result across every registered device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceReplay {
    /// One audited timeline per device, in registry order.
    pub timelines: Vec<DeviceTimeline>,
    /// Total captured events.
    pub total_events: usize,
    /// Total invariant violations — the gate (must be 0).
    pub total_violations: usize,
    /// Total counter cross-check mismatches — the gate (must be 0).
    pub total_counter_mismatches: usize,
}

/// What one device replay produced: the captured ring, the counter bank
/// the device itself accumulated (summed over dies), and the metrics
/// registry every telemetry surface was funnelled into.
struct Replay {
    sink: Arc<RingSink>,
    counters: HwCounters,
    metrics: MetricsRegistry,
}

/// Representative workgroup count: fills every CU twice over and leaves
/// a ragged tail, so the timeline shows full rounds and a partial one.
pub(crate) fn ragged_workgroups(gpu: &Gpu, k: &mc_isa::KernelDesc) -> u64 {
    let die = &gpu.spec().die;
    let per_cu = engine::workgroups_per_cu(die, k).unwrap_or(1).max(1);
    let capacity = u64::from(per_cu) * u64::from(die.compute_units);
    2 * capacity + capacity / 3 + 1
}

fn aggregate_counters(gpu: &Gpu) -> HwCounters {
    let mut total = HwCounters::default();
    for die in 0..gpu.spec().dies as usize {
        total.merge(&gpu.counters(die).expect("die index from spec"));
    }
    total
}

/// Replays the representative workload for one device and collects its
/// telemetry through every surface at once.
fn replay(devices: &DeviceRegistry, id: DeviceId) -> Replay {
    let sink = Arc::new(RingSink::new());
    let mut traced = devices.clone();
    traced.set_trace_sink(sink.clone());
    let mut metrics = MetricsRegistry::new();

    if id == DeviceId::Mi250xGcd {
        // The library path: rocBLAS-style HHS GEMMs through the planner,
        // so the timeline carries plan spans around the kernel spans.
        let mut handle = BlasHandle::from_registry(&traced, id);
        let session = ProfilerSession::begin(handle.gpu(), 0).expect("die 0 exists");
        let mut last = None;
        for n in [1024usize, 2048] {
            let perf = handle
                .gemm_timed(&GemmDesc::square(GemmOp::Hhs, n))
                .expect("representative GEMM fits in device memory");
            last = Some(perf);
        }
        let perf = last.expect("loop ran");
        perf.package.register_metrics(&mut metrics);
        session
            .end_metrics(handle.gpu(), &mut metrics)
            .expect("session die is valid");
        sample_power(&perf.package, &mut metrics);
        let counters = aggregate_counters(handle.gpu());
        return Replay {
            sink,
            counters,
            metrics,
        };
    }

    let mut gpu = traced.gpu(id);
    let arch = gpu.spec().die.arch;
    let kernel = match arch {
        MatrixArch::Cdna2 => {
            let mut k = wmma_gemm_tile_kernel(arch, DType::F32, DType::F16, (16, 16, 16), 64)
                .expect("CDNA2 tile kernel builds");
            k.workgroups = ragged_workgroups(&gpu, &k);
            k
        }
        MatrixArch::Cdna1 | MatrixArch::Ampere => {
            let shape = if arch == MatrixArch::Ampere {
                (16, 8, 16)
            } else {
                (16, 16, 16)
            };
            let mut k = mma_loop_kernel(LoopKernelParams {
                arch,
                cd: DType::F32,
                ab: DType::F16,
                shape,
                wavefronts: 64,
                iterations: 256,
            })
            .expect("mixed-precision loop kernel builds");
            k.workgroups = ragged_workgroups(&gpu, &k);
            k
        }
    };

    let session = ProfilerSession::begin(&gpu, 0).expect("die 0 exists");
    // One launch per die in parallel (the paper's one-process-per-GCD
    // methodology), then a second sequential launch on die 0 so the
    // trace clock's no-overlap guarantee is exercised too.
    let launches: Vec<(usize, mc_isa::KernelDesc)> = (0..gpu.spec().dies as usize)
        .map(|d| (d, kernel.clone()))
        .collect();
    let result = gpu
        .launch_parallel(&launches)
        .expect("representative launch succeeds");
    gpu.launch(0, &kernel).expect("sequential launch succeeds");
    result.register_metrics(&mut metrics);
    session
        .end_metrics(&gpu, &mut metrics)
        .expect("session die is valid");
    sample_power(&result, &mut metrics);
    let counters = aggregate_counters(&gpu);
    Replay {
        sink,
        counters,
        metrics,
    }
}

/// Funnels the launch's power profile through the SMI sampler and into
/// the registry, closing the loop over the third telemetry surface.
fn sample_power(result: &mc_sim::PackageResult, metrics: &mut MetricsRegistry) {
    let smi = Smi::attach(result.profile.clone(), 0.0, 7);
    let sampler = BackgroundSampler::spawn(
        smi,
        SamplerConfig {
            period_s: (result.time_s / 16.0).max(1e-9),
            min_samples: 1,
        },
    );
    sampler.join_metrics(metrics);
}

/// Audits one device's captured timeline.
fn audit(id: DeviceId, replay: &Replay) -> DeviceTimeline {
    let events = replay.sink.events();
    let dropped = replay.sink.dropped();
    let mut violations: Vec<String> = check_invariants(&events)
        .iter()
        .map(|v| v.to_string())
        .collect();
    if dropped > 0 {
        violations.push(format!(
            "[ring-capacity] {dropped} event(s) evicted; totals are not auditable"
        ));
    }

    // The rocprof cross-check: `ctr.*` arguments summed over all kernel
    // spans must reproduce the device's own counter bank exactly.
    let mut from_events: BTreeMap<String, u64> = BTreeMap::new();
    let mut plan_spans = 0usize;
    let mut kernel_spans = 0usize;
    let mut round_spans = 0usize;
    let mut counter_samples = 0usize;
    let mut extent_us = 0.0f64;
    for event in &events {
        if matches!(event, TraceEvent::Counter { .. }) {
            counter_samples += 1;
        }
        let Some(span) = event.as_span() else {
            continue;
        };
        extent_us = extent_us.max(span.end_us());
        match span.category {
            Category::Plan => plan_spans += 1,
            Category::Round => round_spans += 1,
            Category::Kernel => {
                kernel_spans += 1;
                for (key, value) in &span.args {
                    if let (Some(name), ArgValue::U64(v)) = (key.strip_prefix("ctr."), value) {
                        *from_events.entry(name.to_owned()).or_default() += v;
                    }
                }
            }
            _ => {}
        }
    }
    let mut counter_mismatches = Vec::new();
    for name in COUNTER_NAMES {
        let device = replay.counters.get(name).expect("published counter");
        let traced = from_events.get(*name).copied().unwrap_or(0);
        if device != traced {
            counter_mismatches.push(format!(
                "{name}: device bank {device} vs event total {traced}"
            ));
        }
    }

    // Every telemetry surface must have landed in the unified registry.
    for probe in ["counters.SQ_WAVES", "sim.time_s", "power.smi.samples"] {
        if replay.metrics.value(probe).is_none() {
            violations.push(format!("[metrics] `{probe}` missing from the registry"));
        }
    }

    DeviceTimeline {
        device: id.as_str().to_owned(),
        events: events.len(),
        dropped,
        plan_spans,
        kernel_spans,
        round_spans,
        counter_samples,
        extent_us,
        flame_lines: folded_stacks(&events).lines().count(),
        metrics: replay.metrics.len(),
        violations,
        counter_mismatches,
    }
}

/// Runs the replay gate over every built-in device.
pub fn run(devices: &DeviceRegistry) -> TraceReplay {
    let mut timelines = Vec::new();
    for id in DeviceId::ALL {
        let replay = replay(devices, id);
        timelines.push(audit(id, &replay));
    }
    TraceReplay {
        total_events: timelines.iter().map(|t| t.events).sum(),
        total_violations: timelines.iter().map(|t| t.violations.len()).sum(),
        total_counter_mismatches: timelines.iter().map(|t| t.counter_mismatches.len()).sum(),
        timelines,
    }
}

/// Renders the replay as text.
pub fn render(replay: &TraceReplay) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("trace replay: timeline audit of the instrumented engine\n");
    let _ = writeln!(
        s,
        "{:<12} {:>7} {:>6} {:>8} {:>7} {:>7} {:>9} {:>8} {:>11}",
        "device", "events", "plans", "kernels", "rounds", "flame", "metrics", "viol", "ctr-misses"
    );
    for t in &replay.timelines {
        let _ = writeln!(
            s,
            "{:<12} {:>7} {:>6} {:>8} {:>7} {:>7} {:>9} {:>8} {:>11}",
            t.device,
            t.events,
            t.plan_spans,
            t.kernel_spans,
            t.round_spans,
            t.flame_lines,
            t.metrics,
            t.violations.len(),
            t.counter_mismatches.len(),
        );
        for v in &t.violations {
            let _ = writeln!(s, "  violation: {v}");
        }
        for m in &t.counter_mismatches {
            let _ = writeln!(s, "  counter mismatch: {m}");
        }
    }
    let _ = writeln!(
        s,
        "total: {} event(s), {} violation(s), {} counter mismatch(es){}",
        replay.total_events,
        replay.total_violations,
        replay.total_counter_mismatches,
        if replay.total_violations == 0 && replay.total_counter_mismatches == 0 {
            " — timelines are self-consistent"
        } else {
            " — FAILING"
        }
    );
    s
}

/// The trace replay as a registered experiment.
pub struct TraceExperiment;

impl crate::experiment::Experiment for TraceExperiment {
    fn id(&self) -> &'static str {
        "trace"
    }

    fn title(&self) -> &'static str {
        "mc-trace — timeline replay and telemetry cross-check gate"
    }

    fn device(&self) -> &'static str {
        "all"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        vec![
            crate::experiment::Check::new(
                "trace/timeline violations",
                0.0,
                0.0,
                "/total_violations",
            ),
            crate::experiment::Check::new(
                "trace/counter cross-check mismatches",
                0.0,
                0.0,
                "/total_counter_mismatches",
            ),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let replay = run(&ctx.devices);
        (serde_json::to_value(&replay), render(&replay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_clean_on_every_builtin_device() {
        let replay = run(&DeviceRegistry::builtin());
        assert_eq!(replay.timelines.len(), DeviceId::ALL.len());
        assert_eq!(replay.total_violations, 0, "{}", render(&replay));
        assert_eq!(replay.total_counter_mismatches, 0, "{}", render(&replay));
        assert!(replay.total_events > 0);
    }

    #[test]
    fn timelines_carry_the_expected_structure() {
        let replay = run(&DeviceRegistry::builtin());
        for t in &replay.timelines {
            assert!(t.kernel_spans > 0, "{}: no kernel spans", t.device);
            assert!(t.round_spans >= t.kernel_spans, "{}", t.device);
            assert!(t.counter_samples > 0, "{}: no counter samples", t.device);
            assert!(t.extent_us > 0.0, "{}", t.device);
            assert!(t.flame_lines > 0, "{}", t.device);
            assert_eq!(t.dropped, 0, "{}", t.device);
            // All three telemetry surfaces landed in the registry:
            // counters.* (14 names) + sim.*/power.* + power.smi.*.
            assert!(t.metrics > 20, "{}: only {} metrics", t.device, t.metrics);
        }
        // Plan spans ride on the library-path device only.
        let gcd = replay
            .timelines
            .iter()
            .find(|t| t.device == "mi250x-gcd")
            .expect("gcd timeline");
        assert_eq!(gcd.plan_spans, 2, "one per gemm_timed call");
        // The package device launched on both dies plus a second round.
        let package = replay
            .timelines
            .iter()
            .find(|t| t.device == "mi250x")
            .expect("package timeline");
        assert_eq!(package.kernel_spans, 3);
    }

    #[test]
    fn a_tampered_timeline_is_caught() {
        // Re-audit the mi100 replay with a corrupted counter bank: the
        // cross-check must notice the books no longer balance.
        let devices = DeviceRegistry::builtin();
        let mut r = replay(&devices, DeviceId::Mi100);
        let clean = audit(DeviceId::Mi100, &r);
        assert!(clean.counter_mismatches.is_empty());
        r.counters.waves_launched += 1;
        let tampered = audit(DeviceId::Mi100, &r);
        assert_eq!(tampered.counter_mismatches.len(), 1, "{tampered:?}");
    }

    #[test]
    fn rendering_reports_a_clean_replay() {
        let replay = run(&DeviceRegistry::builtin());
        let text = render(&replay);
        assert!(text.contains("timelines are self-consistent"), "{text}");
        assert!(text.contains("mi250x-gcd"));
    }
}
