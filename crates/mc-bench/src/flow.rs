//! Flow sweep: dataflow verification of every shipped kernel (the
//! `mc-flow` artifact).
//!
//! The lint sweep proves every shipped kernel is *instruction-legal*;
//! this gate proves every shipped kernel is *pipeline-correct*: no LDS
//! race between wavefronts, no consumer of an unretired load, no
//! barrier with LDS traffic still outstanding, and a register working
//! set inside the declared budget. It walks the same corpus as the lint
//! sweep — one `mc-wmma` loop kernel per catalog instruction per
//! device, the LDS-staged WMMA GEMM tile kernels, and the `mc-blas`
//! planner output (single- *and* double-buffered pipelines) for every
//! routine × size on the CDNA2 devices — and any error-severity finding
//! fails the artifact, so a kernel generator that drops a barrier or a
//! waitcnt can never silently ship plausible-but-wrong curves.

use mc_blas::{build_plan, plan_gemm, select_strategy, GemmDesc, GemmOp, Strategy};
use mc_flow::{analyze_kernel, FlowDiagnostic, FlowReport};
use mc_isa::{Buffering, MatrixArch};
use mc_sim::DeviceId;
use mc_wmma::{mma_loop_kernel, wmma_gemm_tile_kernel, LoopKernelParams};
use serde::{Deserialize, Serialize};

/// One flow-verified subject.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowSubject {
    /// Registry name of the device the subject was verified against.
    pub device: String,
    /// Corpus class: `wmma-loop`, `wmma-tile`, or `gemm-plan`.
    pub kind: String,
    /// Kernel name.
    pub subject: String,
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// The findings themselves (empty for clean subjects).
    pub diagnostics: Vec<FlowDiagnostic>,
}

impl FlowSubject {
    fn from_report(device: &str, kind: &str, report: FlowReport) -> Self {
        FlowSubject {
            device: device.to_owned(),
            kind: kind.to_owned(),
            subject: report.subject,
            errors: report
                .diagnostics
                .iter()
                .filter(|d| d.severity == mc_flow::Severity::Error)
                .count(),
            warnings: report
                .diagnostics
                .iter()
                .filter(|d| d.severity == mc_flow::Severity::Warning)
                .count(),
            diagnostics: report.diagnostics,
        }
    }
}

/// The full sweep result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowSweep {
    /// Every verified subject, in sweep order.
    pub subjects: Vec<FlowSubject>,
    /// Compile-path failures that prevented building a corpus kernel
    /// (always empty for a healthy tree; counted as errors).
    pub build_failures: Vec<String>,
    /// Total error-severity findings across all subjects and failures.
    pub total_errors: usize,
    /// Total warning-severity findings.
    pub total_warnings: usize,
}

/// GEMM problem edges the planner corpus covers (same as the lint
/// sweep): the tiny strategy boundary, a mid-size tile-exact point, and
/// a padded off-grid size.
const GEMM_SIZES: [usize; 3] = [16, 1024, 4000];

/// Runs the sweep over every registered device.
pub fn run(devices: &mc_sim::DeviceRegistry) -> FlowSweep {
    let mut subjects = Vec::new();
    let mut build_failures = Vec::new();

    for id in DeviceId::ALL {
        let device = id.as_str();
        let die = &devices.config(id).package.die;

        // One throughput loop kernel per catalog instruction.
        let waves = match die.arch {
            MatrixArch::Cdna1 | MatrixArch::Cdna2 => 440,
            MatrixArch::Ampere => 432,
        };
        let mut seen = Vec::new();
        for instr in mc_lint::catalog_for(die.arch).instructions() {
            if seen.contains(&instr.mnemonic()) {
                continue;
            }
            seen.push(instr.mnemonic());
            let params = LoopKernelParams {
                arch: die.arch,
                cd: instr.cd,
                ab: instr.ab,
                shape: (instr.shape.m, instr.shape.n, instr.shape.k),
                wavefronts: waves,
                iterations: 64,
            };
            match mma_loop_kernel(params) {
                Ok(kernel) => subjects.push(FlowSubject::from_report(
                    device,
                    "wmma-loop",
                    analyze_kernel(die, &kernel),
                )),
                Err(mc_wmma::WmmaError::Flow(report)) => {
                    subjects.push(FlowSubject::from_report(device, "wmma-loop", report));
                }
                Err(e) => build_failures.push(format!("{device}: {}: {e}", instr.mnemonic())),
            }
        }

        if die.arch == MatrixArch::Cdna2 {
            // The LDS-staged cooperative tile kernel, both CDNA2 shapes.
            for shape in [(16, 16, 16), (32, 32, 8)] {
                match wmma_gemm_tile_kernel(
                    die.arch,
                    mc_types::DType::F32,
                    mc_types::DType::F16,
                    shape,
                    64,
                ) {
                    Ok(kernel) => subjects.push(FlowSubject::from_report(
                        device,
                        "wmma-tile",
                        analyze_kernel(die, &kernel),
                    )),
                    Err(mc_wmma::WmmaError::Flow(report)) => {
                        subjects.push(FlowSubject::from_report(device, "wmma-tile", report));
                    }
                    Err(e) => build_failures.push(format!("{device}: tile {shape:?}: {e}")),
                }
            }

            // Planner output for every routine × size, plus the opposite
            // buffering mode for each Matrix Core pick: the flow gate's
            // whole point is proving the stage rotation of *both*
            // pipeline variants, not just the strategy the planner
            // happens to prefer.
            for op in GemmOp::ALL {
                for n in GEMM_SIZES {
                    let desc = GemmDesc::square(op, n);
                    match plan_gemm(die, &desc) {
                        Ok(plan) => subjects.push(FlowSubject::from_report(
                            device,
                            "gemm-plan",
                            analyze_kernel(die, &plan.kernel),
                        )),
                        Err(mc_blas::BlasError::Flow(report)) => {
                            subjects.push(FlowSubject::from_report(device, "gemm-plan", report));
                        }
                        Err(e) => build_failures.push(format!("{device}: {op} N={n}: {e}")),
                    }
                    if let Strategy::MatrixCore {
                        instr,
                        macro_tile,
                        wave_tile,
                        k_step,
                        buffering,
                    } = select_strategy(&desc)
                    {
                        let flipped = Strategy::MatrixCore {
                            instr,
                            macro_tile,
                            wave_tile,
                            k_step,
                            buffering: match buffering {
                                Buffering::Single => Buffering::Double,
                                Buffering::Double => Buffering::Single,
                            },
                        };
                        match build_plan(die, &desc, flipped) {
                            Ok(plan) => subjects.push(FlowSubject::from_report(
                                device,
                                "gemm-plan",
                                analyze_kernel(die, &plan.kernel),
                            )),
                            Err(mc_blas::BlasError::Flow(report)) => {
                                subjects.push(FlowSubject::from_report(
                                    device,
                                    "gemm-plan",
                                    report,
                                ));
                            }
                            Err(e) => {
                                build_failures.push(format!("{device}: {op} N={n} flipped: {e}"))
                            }
                        }
                    }
                }
            }
        }
    }

    let total_errors = subjects.iter().map(|s| s.errors).sum::<usize>() + build_failures.len();
    let total_warnings = subjects.iter().map(|s| s.warnings).sum();
    FlowSweep {
        subjects,
        build_failures,
        total_errors,
        total_warnings,
    }
}

/// Renders the sweep as text.
pub fn render(sweep: &FlowSweep) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("mc-flow sweep: dataflow verification of the shipped kernel corpus\n");
    let _ = writeln!(
        s,
        "{:<12} {:<14} {:>8} {:>7} {:>9}",
        "device", "class", "subjects", "errors", "warnings"
    );
    for id in DeviceId::ALL {
        for kind in ["wmma-loop", "wmma-tile", "gemm-plan"] {
            let rows: Vec<&FlowSubject> = sweep
                .subjects
                .iter()
                .filter(|r| r.device == id.as_str() && r.kind == kind)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let _ = writeln!(
                s,
                "{:<12} {:<14} {:>8} {:>7} {:>9}",
                id.as_str(),
                kind,
                rows.len(),
                rows.iter().map(|r| r.errors).sum::<usize>(),
                rows.iter().map(|r| r.warnings).sum::<usize>(),
            );
        }
    }
    for failure in &sweep.build_failures {
        let _ = writeln!(s, "build failure: {failure}");
    }
    for subject in sweep.subjects.iter().filter(|r| !r.diagnostics.is_empty()) {
        for d in &subject.diagnostics {
            s.push_str(&d.render(&subject.subject));
        }
    }
    let _ = writeln!(
        s,
        "total: {} subject(s), {} error(s), {} warning(s){}",
        sweep.subjects.len(),
        sweep.total_errors,
        sweep.total_warnings,
        if sweep.total_errors == 0 {
            " — corpus is flow clean"
        } else {
            " — FAILING"
        }
    );
    s
}

/// The flow sweep as a registered experiment.
pub struct FlowExperiment;

impl crate::experiment::Experiment for FlowExperiment {
    fn id(&self) -> &'static str {
        "flow"
    }

    fn title(&self) -> &'static str {
        "mc-flow — dataflow race & synchronization sweep over the shipped kernels"
    }

    fn device(&self) -> &'static str {
        "all"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        vec![
            crate::experiment::Check::new("flow/error diagnostics", 0.0, 0.0, "/total_errors"),
            crate::experiment::Check::new("flow/warning diagnostics", 0.0, 0.0, "/total_warnings"),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let sweep = run(&ctx.devices);
        let counts = mc_obs::VerifierCounts::new(
            "flow",
            sweep.subjects.len(),
            sweep.total_errors,
            sweep.total_warnings,
        );
        if let Err(e) = ctx.persist_verifier_metrics("flow", &counts) {
            eprintln!("error: could not write flow verifier metrics: {e}");
        }
        (serde_json::to_value(&sweep), render(&sweep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_sim::DeviceRegistry;

    #[test]
    fn shipped_corpus_is_flow_clean() {
        let sweep = run(&DeviceRegistry::builtin());
        assert!(
            sweep.build_failures.is_empty(),
            "{:?}",
            sweep.build_failures
        );
        assert_eq!(sweep.total_errors, 0, "{}", render(&sweep));
        assert_eq!(sweep.total_warnings, 0, "{}", render(&sweep));
    }

    #[test]
    fn sweep_covers_every_device_and_both_bufferings() {
        let sweep = run(&DeviceRegistry::builtin());
        for id in DeviceId::ALL {
            assert!(
                sweep
                    .subjects
                    .iter()
                    .any(|s| s.device == id.as_str() && s.kind == "wmma-loop"),
                "missing loop kernels for {id}"
            );
        }
        // Both pipeline variants of each Matrix Core routine appear:
        // the flipped-buffering plan doubles the matrix-core rows.
        let plans = sweep
            .subjects
            .iter()
            .filter(|s| s.device == "mi250x" && s.kind == "gemm-plan")
            .count();
        assert!(plans > GemmOp::ALL.len() * 3, "{plans}");
        assert!(sweep
            .subjects
            .iter()
            .any(|s| s.device == "mi250x" && s.kind == "wmma-tile"));
    }

    #[test]
    fn rendering_reports_a_clean_corpus() {
        let sweep = run(&DeviceRegistry::builtin());
        let text = render(&sweep);
        assert!(text.contains("corpus is flow clean"), "{text}");
        assert!(text.contains("mi250x"));
        assert!(text.contains("gemm-plan"));
    }
}
