//! Lint sweep: static verification of every shipped kernel and device
//! spec (the `mc-lint` artifact).
//!
//! The paper's §IV-A methodology compiles every benchmark with `-S` and
//! inspects the assembly to prove the intended `V_MFMA_*` instructions
//! are emitted. This artifact is the same idea turned into a gate: it
//! audits every registered device spec against the paper's Eq. 2
//! pipeline identity, then runs the static verifier over the whole
//! shipped kernel corpus — one `mc-wmma` loop kernel per catalog
//! instruction per device, the LDS-staged WMMA GEMM tile kernels, and
//! the `mc-blas` planner output for every routine × size on the CDNA2
//! devices. Any error-severity diagnostic fails the artifact (the
//! `experiments` driver exits non-zero), so a broken kernel generator
//! can never silently ship plausible-but-wrong throughput curves.

use mc_blas::{plan_gemm, GemmDesc, GemmOp};
use mc_isa::MatrixArch;
use mc_lint::{audit_package, lint_kernel, Diagnostic, LintReport};
use mc_sim::DeviceId;
use mc_wmma::{mma_loop_kernel, wmma_gemm_tile_kernel, LoopKernelParams};
use serde::{Deserialize, Serialize};

/// One linted subject (a kernel or a device spec).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LintSubject {
    /// Registry name of the device the subject was verified against.
    pub device: String,
    /// Corpus class: `device-audit`, `wmma-loop`, `wmma-tile`, or
    /// `gemm-plan`.
    pub kind: String,
    /// Kernel name or audit subject.
    pub subject: String,
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// The findings themselves (empty for clean subjects).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintSubject {
    fn from_report(device: &str, kind: &str, report: LintReport) -> Self {
        LintSubject {
            device: device.to_owned(),
            kind: kind.to_owned(),
            subject: report.subject,
            errors: report
                .diagnostics
                .iter()
                .filter(|d| d.severity == mc_lint::Severity::Error)
                .count(),
            warnings: report
                .diagnostics
                .iter()
                .filter(|d| d.severity == mc_lint::Severity::Warning)
                .count(),
            diagnostics: report.diagnostics,
        }
    }
}

/// The full sweep result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LintSweep {
    /// Every verified subject, in sweep order.
    pub subjects: Vec<LintSubject>,
    /// Compile-path failures that prevented building a corpus kernel
    /// (always empty for a healthy tree; counted as errors).
    pub build_failures: Vec<String>,
    /// Total error-severity findings across all subjects and failures.
    pub total_errors: usize,
    /// Total warning-severity findings.
    pub total_warnings: usize,
}

/// GEMM problem edges the planner corpus covers: the tiny strategy
/// boundary, a mid-size tile-exact point, and a padded off-grid size.
const GEMM_SIZES: [usize; 3] = [16, 1024, 4000];

/// Runs the sweep over every registered device.
pub fn run(devices: &mc_sim::DeviceRegistry) -> LintSweep {
    let mut subjects = Vec::new();
    let mut build_failures = Vec::new();

    for id in DeviceId::ALL {
        let device = id.as_str();
        let package = &devices.config(id).package;
        let die = &package.die;

        // Device-spec audit (Eq. 2 pipeline identity, wavefront width).
        subjects.push(LintSubject::from_report(
            device,
            "device-audit",
            audit_package(package),
        ));

        // One throughput loop kernel per catalog instruction.
        let waves = match die.arch {
            MatrixArch::Cdna1 | MatrixArch::Cdna2 => 440,
            MatrixArch::Ampere => 432,
        };
        let mut seen = Vec::new();
        for instr in mc_lint::catalog_for(die.arch).instructions() {
            if seen.contains(&instr.mnemonic()) {
                continue;
            }
            seen.push(instr.mnemonic());
            let params = LoopKernelParams {
                arch: die.arch,
                cd: instr.cd,
                ab: instr.ab,
                shape: (instr.shape.m, instr.shape.n, instr.shape.k),
                wavefronts: waves,
                iterations: 64,
            };
            match mma_loop_kernel(params) {
                Ok(kernel) => subjects.push(LintSubject::from_report(
                    device,
                    "wmma-loop",
                    lint_kernel(die, &kernel),
                )),
                Err(mc_wmma::WmmaError::Lint(report)) => {
                    subjects.push(LintSubject::from_report(device, "wmma-loop", report));
                }
                Err(e) => build_failures.push(format!("{device}: {}: {e}", instr.mnemonic())),
            }
        }

        // The LDS-staged cooperative tile kernel, both CDNA2 shapes (the
        // builder resolves the nearest supported shape per architecture).
        if die.arch == MatrixArch::Cdna2 {
            for shape in [(16, 16, 16), (32, 32, 8)] {
                match wmma_gemm_tile_kernel(
                    die.arch,
                    mc_types::DType::F32,
                    mc_types::DType::F16,
                    shape,
                    64,
                ) {
                    Ok(kernel) => subjects.push(LintSubject::from_report(
                        device,
                        "wmma-tile",
                        lint_kernel(die, &kernel),
                    )),
                    Err(mc_wmma::WmmaError::Lint(report)) => {
                        subjects.push(LintSubject::from_report(device, "wmma-tile", report));
                    }
                    Err(e) => build_failures.push(format!("{device}: tile {shape:?}: {e}")),
                }
            }

            // Planner output for every routine × size. The planner
            // targets the CDNA2 catalog, so only CDNA2 devices host it.
            for op in GemmOp::ALL {
                for n in GEMM_SIZES {
                    match plan_gemm(die, &GemmDesc::square(op, n)) {
                        Ok(plan) => subjects.push(LintSubject::from_report(
                            device,
                            "gemm-plan",
                            lint_kernel(die, &plan.kernel),
                        )),
                        Err(mc_blas::BlasError::Lint(report)) => {
                            subjects.push(LintSubject::from_report(device, "gemm-plan", report));
                        }
                        Err(e) => build_failures.push(format!("{device}: {op} N={n}: {e}")),
                    }
                }
            }
        }
    }

    let total_errors = subjects.iter().map(|s| s.errors).sum::<usize>() + build_failures.len();
    let total_warnings = subjects.iter().map(|s| s.warnings).sum();
    LintSweep {
        subjects,
        build_failures,
        total_errors,
        total_warnings,
    }
}

/// Renders the sweep as text.
pub fn render(sweep: &LintSweep) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("mc-lint sweep: static verification of the shipped kernel corpus\n");
    let _ = writeln!(
        s,
        "{:<12} {:<14} {:>8} {:>7} {:>9}",
        "device", "class", "subjects", "errors", "warnings"
    );
    for id in DeviceId::ALL {
        for kind in ["device-audit", "wmma-loop", "wmma-tile", "gemm-plan"] {
            let rows: Vec<&LintSubject> = sweep
                .subjects
                .iter()
                .filter(|r| r.device == id.as_str() && r.kind == kind)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let _ = writeln!(
                s,
                "{:<12} {:<14} {:>8} {:>7} {:>9}",
                id.as_str(),
                kind,
                rows.len(),
                rows.iter().map(|r| r.errors).sum::<usize>(),
                rows.iter().map(|r| r.warnings).sum::<usize>(),
            );
        }
    }
    for failure in &sweep.build_failures {
        let _ = writeln!(s, "build failure: {failure}");
    }
    for subject in sweep.subjects.iter().filter(|r| !r.diagnostics.is_empty()) {
        for d in &subject.diagnostics {
            s.push_str(&d.render(&subject.subject));
        }
    }
    let _ = writeln!(
        s,
        "total: {} subject(s), {} error(s), {} warning(s){}",
        sweep.subjects.len(),
        sweep.total_errors,
        sweep.total_warnings,
        if sweep.total_errors == 0 {
            " — corpus is lint clean"
        } else {
            " — FAILING"
        }
    );
    s
}

/// The lint sweep as a registered experiment.
pub struct LintExperiment;

impl crate::experiment::Experiment for LintExperiment {
    fn id(&self) -> &'static str {
        "lint"
    }

    fn title(&self) -> &'static str {
        "mc-lint — static verification sweep over the shipped kernels"
    }

    fn device(&self) -> &'static str {
        "all"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        vec![
            crate::experiment::Check::new("lint/error diagnostics", 0.0, 0.0, "/total_errors"),
            crate::experiment::Check::new("lint/warning diagnostics", 0.0, 0.0, "/total_warnings"),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let sweep = run(&ctx.devices);
        (serde_json::to_value(&sweep), render(&sweep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_sim::DeviceRegistry;

    #[test]
    fn shipped_corpus_is_lint_clean() {
        let sweep = run(&DeviceRegistry::builtin());
        assert!(
            sweep.build_failures.is_empty(),
            "{:?}",
            sweep.build_failures
        );
        assert_eq!(sweep.total_errors, 0, "{}", render(&sweep));
        assert_eq!(sweep.total_warnings, 0, "{}", render(&sweep));
    }

    #[test]
    fn sweep_covers_every_device_and_corpus_class() {
        let sweep = run(&DeviceRegistry::builtin());
        for id in DeviceId::ALL {
            assert!(
                sweep
                    .subjects
                    .iter()
                    .any(|s| s.device == id.as_str() && s.kind == "device-audit"),
                "missing audit for {id}"
            );
            assert!(
                sweep
                    .subjects
                    .iter()
                    .any(|s| s.device == id.as_str() && s.kind == "wmma-loop"),
                "missing loop kernels for {id}"
            );
        }
        // Planner and tile corpora ride on the CDNA2 devices.
        assert!(sweep
            .subjects
            .iter()
            .any(|s| s.device == "mi250x" && s.kind == "gemm-plan"));
        assert!(sweep
            .subjects
            .iter()
            .any(|s| s.device == "mi250x" && s.kind == "wmma-tile"));
        // Every GemmOp routine appears in the plans.
        for op in GemmOp::ALL {
            assert!(
                sweep.subjects.iter().any(|s| s.kind == "gemm-plan"
                    && s.subject.contains(&format!("_{op}_"))
                    || s.subject.contains(&format!("gemm_{op}"))),
                "no plan for {op}"
            );
        }
    }

    #[test]
    fn rendering_reports_a_clean_corpus() {
        let sweep = run(&DeviceRegistry::builtin());
        let text = render(&sweep);
        assert!(text.contains("corpus is lint clean"), "{text}");
        assert!(text.contains("mi250x"));
        assert!(text.contains("gemm-plan"));
    }
}
