//! Fig. 5 and the §VI analysis: package power consumption at increasing
//! Matrix Core throughput for the three datatypes, the recovered Eq. 3
//! linear models, idle power, peak powers, and power efficiency.
//!
//! Methodology follows §IV-C/§VI: one process per GCD (both dies run the
//! micro-benchmark in parallel), power sampled through the SMI interface
//! at 100 ms over the kernel lifetime, ≥1000 samples per point.

use mc_isa::cdna2_catalog;
use mc_power::sampler::BackgroundSampler;
use mc_power::{gflops_per_watt, PowerModel, SamplerConfig};
use mc_sim::{throughput_run_all_dies, DeviceId, DeviceRegistry, Smi};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// One measured operating point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Wavefronts per die.
    pub wavefronts_per_die: u64,
    /// Achieved package throughput in TFLOPS.
    pub tflops: f64,
    /// Mean sampled package power in watts.
    pub watts: f64,
    /// Number of power samples collected.
    pub samples: usize,
}

/// One datatype's power series with its recovered linear model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig5Series {
    /// Series label.
    pub label: String,
    /// Input datatype of the MFMA mix.
    pub dtype: DType,
    /// Operating points.
    pub points: Vec<Fig5Point>,
    /// Least-squares fit over the points (the Eq. 3 recovery).
    pub fitted_slope_w_per_tflops: f64,
    /// Fitted intercept in watts.
    pub fitted_intercept_w: f64,
    /// Fit quality.
    pub r_squared: f64,
    /// Peak power observed in the series.
    pub peak_watts: f64,
    /// Efficiency at the highest-throughput point, GFLOPS/W.
    pub peak_gflops_per_watt: f64,
}

/// The reproduced Fig. 5 + §VI summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// One series per datatype (mixed, float, double).
    pub series: Vec<Fig5Series>,
    /// Package idle power (no kernel resident).
    pub idle_w: f64,
    /// Package power cap.
    pub power_cap_w: f64,
}

/// Regenerates Fig. 5. `iterations` controls kernel duration (the paper
/// runs each point long enough for ≥1000 samples at 100 ms).
pub fn run(devices: &DeviceRegistry, iterations: u64, sampler: SamplerConfig) -> Fig5 {
    let mut gpu = devices.gpu(DeviceId::Mi250x);
    let idle_w = gpu.spec().idle_power_w;
    let power_cap_w = gpu.spec().power_cap_w;
    let noise = gpu.config().telemetry_noise;
    let catalog = cdna2_catalog();

    let combos = [
        ("mixed", DType::F32, DType::F16, 16u32, 16u32, 16u32),
        ("float", DType::F32, DType::F32, 16, 16, 4),
        ("double", DType::F64, DType::F64, 16, 16, 4),
    ];

    let sweep: Vec<u64> = [4u64, 8, 16, 32, 64, 110, 220, 330, 440].to_vec();

    let series = combos
        .into_iter()
        .map(|(label, cd, ab, m, n, k)| {
            let instr = *catalog.find(cd, ab, m, n, k).expect("paper instruction");
            let mut points = Vec::new();
            for (idx, &wf) in sweep.iter().enumerate() {
                let r = throughput_run_all_dies(&mut gpu, &instr, wf, iterations)
                    .expect("power benchmark launch");
                let smi = Smi::attach(r.package.profile.clone(), noise, 0xF16_5EED ^ idx as u64);
                let samples = BackgroundSampler::spawn(smi, sampler).join();
                let stats = mc_sim::sample_stats(&samples);
                points.push(Fig5Point {
                    wavefronts_per_die: wf,
                    tflops: r.tflops,
                    watts: stats.mean_w,
                    samples: stats.count,
                });
            }
            let fit_pts: Vec<(f64, f64)> = points.iter().map(|p| (p.tflops, p.watts)).collect();
            let (model, fit) = PowerModel::fit(ab, &fit_pts).expect("enough points for a fit");
            let top = points.last().expect("non-empty sweep");
            Fig5Series {
                label: label.to_owned(),
                dtype: ab,
                peak_watts: points.iter().map(|p| p.watts).fold(0.0, f64::max),
                peak_gflops_per_watt: gflops_per_watt(top.tflops, top.watts),
                points,
                fitted_slope_w_per_tflops: model.slope_w_per_tflops,
                fitted_intercept_w: model.intercept_w,
                r_squared: fit.r_squared,
            }
        })
        .collect();

    Fig5 {
        series,
        idle_w,
        power_cap_w,
    }
}

/// Fig. 5 as a registered experiment.
pub struct Fig5Experiment;

impl crate::experiment::Experiment for Fig5Experiment {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Fig. 5 — power vs throughput + Eq. 3 + efficiency"
    }

    fn device(&self) -> &'static str {
        "mi250x"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![
            Check::new(
                "fig5/double slope (W/TFLOPS)",
                5.88,
                0.08,
                "/series/2/fitted_slope_w_per_tflops",
            ),
            Check::new(
                "fig5/float slope (W/TFLOPS)",
                2.18,
                0.08,
                "/series/1/fitted_slope_w_per_tflops",
            ),
            Check::new(
                "fig5/mixed slope (W/TFLOPS)",
                0.61,
                0.10,
                "/series/0/fitted_slope_w_per_tflops",
            ),
            Check::new("fig5/idle power (W)", 88.0, 0.001, "/idle_w"),
            Check::new(
                "fig5/double peak power (W)",
                541.0,
                0.02,
                "/series/2/peak_watts",
            ),
            Check::new(
                "fig5/mixed efficiency (GFLOPS/W)",
                1020.0,
                0.10,
                "/series/0/peak_gflops_per_watt",
            ),
            Check::new(
                "fig5/float efficiency (GFLOPS/W)",
                273.0,
                0.10,
                "/series/1/peak_gflops_per_watt",
            ),
            Check::new(
                "fig5/double efficiency (GFLOPS/W)",
                127.0,
                0.10,
                "/series/2/peak_gflops_per_watt",
            ),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let f = run(&ctx.devices, ctx.budgets.power_iters, ctx.sampler);
        (serde_json::to_value(&f), render(&f))
    }
}

/// Renders the figure data and §VI summary as text.
pub fn render(f: &Fig5) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "Fig. 5: package power vs throughput (idle {} W, cap {} W)\n",
        f.idle_w, f.power_cap_w
    );
    for series in &f.series {
        let _ = writeln!(s, "-- {} --", series.label);
        let _ = writeln!(
            s,
            "{:>10} {:>10} {:>10} {:>9}",
            "waves/die", "TFLOPS", "watts", "samples"
        );
        for p in &series.points {
            let _ = writeln!(
                s,
                "{:>10} {:>10.1} {:>10.1} {:>9}",
                p.wavefronts_per_die, p.tflops, p.watts, p.samples
            );
        }
        let _ = writeln!(
            s,
            "fit: PC = {:.2}*Th + {:.1}  (R2 = {:.4}); peak {:.0} W; {:.0} GFLOPS/W",
            series.fitted_slope_w_per_tflops,
            series.fitted_intercept_w,
            series.r_squared,
            series.peak_watts,
            series.peak_gflops_per_watt
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig5 {
        // Long simulated kernels are free; keep ≥1000 samples authentic
        // (~113 s of simulated kernel time per point at 100 ms period).
        run(
            &DeviceRegistry::builtin(),
            6_000_000_000,
            SamplerConfig::default(),
        )
    }

    #[test]
    fn recovered_eq3_matches_paper_coefficients() {
        let f = quick();
        let by = |l: &str| f.series.iter().find(|s| s.label == l).unwrap();
        // Paper Eq. 3: 5.88/2.18/0.61 slopes, 123–130 W intercepts.
        let d = by("double");
        assert!(
            (d.fitted_slope_w_per_tflops - 5.88).abs() < 0.45,
            "{}",
            d.fitted_slope_w_per_tflops
        );
        assert!(
            (d.fitted_intercept_w - 126.0).abs() < 8.0,
            "{}",
            d.fitted_intercept_w
        );
        let s = by("float");
        assert!(
            (s.fitted_slope_w_per_tflops - 2.18).abs() < 0.2,
            "{}",
            s.fitted_slope_w_per_tflops
        );
        let m = by("mixed");
        assert!(
            (m.fitted_slope_w_per_tflops - 0.61).abs() < 0.08,
            "{}",
            m.fitted_slope_w_per_tflops
        );
        assert!(d.r_squared > 0.99 && s.r_squared > 0.99 && m.r_squared > 0.99);
    }

    #[test]
    fn double_approaches_the_cap_others_do_not() {
        let f = quick();
        let by = |l: &str| f.series.iter().find(|s| s.label == l).unwrap();
        // §VI: double reaches 541 W, near the 560 W cap; float/mixed
        // stay around 320-340 W.
        assert!(
            (by("double").peak_watts - 541.0).abs() < 8.0,
            "{}",
            by("double").peak_watts
        );
        assert!(by("float").peak_watts < 360.0);
        assert!(by("mixed").peak_watts < 360.0);
        assert!(f.series.iter().all(|s| s.peak_watts < f.power_cap_w));
    }

    #[test]
    fn efficiency_matches_section6() {
        let f = quick();
        let by = |l: &str| f.series.iter().find(|s| s.label == l).unwrap();
        // 1020 / 273 / 127 GFLOPS/W (±10%).
        assert!(
            (by("mixed").peak_gflops_per_watt - 1020.0).abs() < 100.0,
            "{}",
            by("mixed").peak_gflops_per_watt
        );
        assert!(
            (by("float").peak_gflops_per_watt - 273.0).abs() < 27.0,
            "{}",
            by("float").peak_gflops_per_watt
        );
        assert!(
            (by("double").peak_gflops_per_watt - 127.0).abs() < 13.0,
            "{}",
            by("double").peak_gflops_per_watt
        );
    }

    #[test]
    fn every_point_has_enough_samples() {
        let f = quick();
        for series in &f.series {
            for p in &series.points {
                assert!(
                    p.samples >= 1000,
                    "{} at {} waves: {}",
                    series.label,
                    p.wavefronts_per_die,
                    p.samples
                );
            }
        }
    }

    #[test]
    fn idle_power_is_88w() {
        assert_eq!(quick().idle_w, 88.0);
    }
}
