//! Terminal plotting: renders experiment series as ASCII charts so the
//! `experiments` binary's output visually resembles the paper's figures.

use serde::{Deserialize, Serialize};

/// One plotted series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The glyph used for this series' points.
    pub glyph: char,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Axis scaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Logarithmic axis (positive values only).
    Log,
}

/// Chart configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Chart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale (the paper's Fig. 3/6/7 use log-x).
    pub x_scale: Scale,
    /// Plot area width in characters.
    pub width: usize,
    /// Plot area height in characters.
    pub height: usize,
}

impl Default for Chart {
    fn default() -> Self {
        Chart {
            title: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
            x_scale: Scale::Log,
            width: 64,
            height: 16,
        }
    }
}

fn transform(v: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => v,
        Scale::Log => v.max(f64::MIN_POSITIVE).log2(),
    }
}

/// Renders the chart with its series into a text block.
pub fn render(chart: &Chart, series: &[Series]) -> String {
    use std::fmt::Write as _;
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{} (no data)\n", chart.title);
    }
    let xs: Vec<f64> = all.iter().map(|p| transform(p.0, chart.x_scale)).collect();
    let ys: Vec<f64> = all.iter().map(|p| p.1).collect();
    let (x_min, x_max) = xs
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
    let (y_min, y_max) = ys
        .iter()
        .fold((0.0f64, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; chart.width]; chart.height];
    for s in series {
        for &(x, y) in &s.points {
            let tx = transform(x, chart.x_scale);
            let col = (((tx - x_min) / x_span) * (chart.width - 1) as f64).round() as usize;
            let row = (((y - y_min) / y_span) * (chart.height - 1) as f64).round() as usize;
            let row = chart.height - 1 - row.min(chart.height - 1);
            grid[row][col.min(chart.width - 1)] = s.glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{}", chart.title);
    let _ = writeln!(out, "{} (max at top)", chart.y_label);
    for (i, row) in grid.iter().enumerate() {
        let y_val = y_max - (i as f64 / (chart.height - 1) as f64) * y_span;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_val:>9.1} |{line}|");
    }
    let _ = writeln!(
        out,
        "{:>9} +{}+  x: {} ({:?})",
        "",
        "-".repeat(chart.width),
        chart.x_label,
        chart.x_scale
    );
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} {}", s.glyph, s.label))
        .collect();
    let _ = writeln!(out, "{:>11}{}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart {
            title: "test".into(),
            x_label: "N".into(),
            y_label: "TFLOPS".into(),
            ..Chart::default()
        }
    }

    #[test]
    fn renders_points_within_bounds() {
        let s = Series {
            label: "sgemm".into(),
            glyph: '*',
            points: vec![(16.0, 0.1), (1024.0, 20.0), (65536.0, 40.0)],
        };
        let text = render(&chart(), &[s]);
        assert!(text.contains("test"));
        assert!(text.contains("* sgemm"));
        // 3 points plotted somewhere.
        assert_eq!(text.matches('*').count(), 3 + 1 /* legend */);
    }

    #[test]
    fn saturating_series_plots_as_a_plateau() {
        // A log-x saturating curve: the top row must contain several
        // points (the plateau), the bottom rows the ramp.
        let points: Vec<(f64, f64)> = (2..=11)
            .map(|p| {
                let x = (1u64 << p) as f64;
                (x, 175.0 * (x / 440.0).min(1.0))
            })
            .collect();
        let s = Series {
            label: "mixed".into(),
            glyph: 'o',
            points,
        };
        let text = render(&chart(), &[s]);
        let top_row = text.lines().nth(2).unwrap();
        assert!(top_row.matches('o').count() >= 2, "{top_row}");
    }

    #[test]
    fn multiple_series_keep_distinct_glyphs() {
        let a = Series {
            label: "a".into(),
            glyph: 'a',
            points: vec![(1.0, 1.0), (10.0, 2.0)],
        };
        let b = Series {
            label: "b".into(),
            glyph: 'b',
            points: vec![(1.0, 3.0), (10.0, 4.0)],
        };
        let text = render(&chart(), &[a, b]);
        assert!(text.contains('a') && text.contains('b'));
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let text = render(&chart(), &[]);
        assert!(text.contains("no data"));
    }

    #[test]
    fn linear_scale_spaces_evenly() {
        let c = Chart {
            x_scale: Scale::Linear,
            width: 11,
            height: 3,
            ..chart()
        };
        let s = Series {
            label: "l".into(),
            glyph: 'x',
            points: vec![(0.0, 0.0), (5.0, 0.5), (10.0, 1.0)],
        };
        let text = render(&c, &[s]);
        // Midpoint lands in the middle column of the middle row.
        let mid_row = text.lines().nth(3).unwrap();
        let inner = mid_row.split('|').nth(1).unwrap();
        assert_eq!(inner.chars().nth(5), Some('x'), "{text}");
    }
}
