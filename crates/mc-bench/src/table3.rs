//! Table III: datatypes of the three rocBLAS half/mixed-precision GEMM
//! operations.

use mc_blas::GemmOp;
use serde::{Deserialize, Serialize};

/// One row of Table III.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Routine name (HGEMM/HHS/HSS).
    pub operation: String,
    /// A/B datatype.
    pub type_ab: String,
    /// C/D datatype.
    pub type_cd: String,
    /// Compute (α/β) datatype.
    pub compute: String,
}

/// The reproduced Table III.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows in the paper's order.
    pub rows: Vec<Table3Row>,
}

/// Regenerates Table III from the library's operation descriptors.
pub fn run() -> Table3 {
    let rows = [GemmOp::Hgemm, GemmOp::Hhs, GemmOp::Hss]
        .into_iter()
        .map(|op| Table3Row {
            operation: op.routine().to_uppercase(),
            type_ab: op.type_ab().to_string(),
            type_cd: op.type_cd().to_string(),
            compute: op.compute_type().to_string(),
        })
        .collect();
    Table3 { rows }
}

/// Table III as a registered experiment.
pub struct Table3Experiment;

impl crate::experiment::Experiment for Table3Experiment {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "Table III — mixed-precision GEMM datatype combos"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn execute(&self, _ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let t = run();
        (serde_json::to_value(&t), render(&t))
    }
}

/// Renders the table as text.
pub fn render(t: &Table3) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Table III: rocBLAS half/mixed-precision GEMM datatypes\n");
    let _ = writeln!(
        s,
        "{:<10} {:<8} {:<8} {:<14}",
        "Operation", "typeAB", "typeCD", "Compute type"
    );
    for r in &t.rows {
        let _ = writeln!(
            s,
            "{:<10} {:<8} {:<8} {:<14}",
            r.operation, r.type_ab, r.type_cd, r.compute
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table3() {
        let t = run();
        assert_eq!(t.rows.len(), 3);
        let row = |op: &str| t.rows.iter().find(|r| r.operation == op).unwrap();
        let h = row("HGEMM");
        assert_eq!(
            (h.type_ab.as_str(), h.type_cd.as_str(), h.compute.as_str()),
            ("FP16", "FP16", "FP16")
        );
        let hhs = row("HHS");
        assert_eq!(
            (
                hhs.type_ab.as_str(),
                hhs.type_cd.as_str(),
                hhs.compute.as_str()
            ),
            ("FP16", "FP16", "FP32")
        );
        let hss = row("HSS");
        assert_eq!(
            (
                hss.type_ab.as_str(),
                hss.type_cd.as_str(),
                hss.compute.as_str()
            ),
            ("FP16", "FP32", "FP32")
        );
    }
}
