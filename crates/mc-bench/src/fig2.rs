//! Fig. 2: the hierarchy of programming interfaces to Matrix Cores.
//!
//! The figure is an architecture diagram, not a measurement — but its
//! claim is testable: every layer ("a higher-level component typically
//! relies on its direct lower-layer component") must bottom out in the
//! same Matrix Core instruction. This experiment drives one mixed-
//! precision multiply-accumulate through each layer of this repository's
//! stack and records what it lowered to:
//!
//! 1. **ISA** — the raw `V_MFMA_*` opcode and machine encoding;
//! 2. **compiler intrinsic** — the LLVM builtin name;
//! 3. **rocWMMA** — `mma_sync` on fragments;
//! 4. **rocBLAS** — the GEMM planner's instruction selection;
//! 5. **LAPACK (rocSOLVER)** — the factorization whose trailing updates
//!    carry the same instruction (verified through counters).

use mc_blas::{plan_gemm, BlasHandle, GemmDesc, GemmOp, Strategy};
use mc_isa::cdna2_catalog;
use mc_isa::encoding::{encode_instance, opcode_of, Reg};
use mc_sim::{DeviceId, DeviceRegistry};
use mc_solver::{factor_timed, Factorization};
use mc_types::{DType, F16};
use mc_wmma::{mma_sync, Accumulator, Fragment, MatrixA, MatrixB};
use serde::{Deserialize, Serialize};

/// One layer's lowering evidence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerRow {
    /// Layer name, bottom-up.
    pub layer: String,
    /// What the layer exposes (opcode, builtin, API call, routine).
    pub interface: String,
    /// The instruction it lowered to.
    pub lowered_to: String,
}

/// The reproduced Fig. 2 stack walk.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig2 {
    /// One row per layer, bottom-up.
    pub rows: Vec<LayerRow>,
    /// `true` when every layer lowered to the same mnemonic.
    pub consistent: bool,
}

/// Walks the stack for the mixed-precision (FP32 ← FP16) operation.
pub fn run(devices: &DeviceRegistry) -> Fig2 {
    let instr = *cdna2_catalog()
        .find(DType::F32, DType::F16, 16, 16, 16)
        .expect("mixed 16x16x16");
    let mnemonic = instr.mnemonic();
    let mut rows = Vec::new();

    // 1. ISA.
    let opcode = opcode_of(&instr).expect("CDNA2 opcode");
    let word = encode_instance(&instr, Reg::A(0), Reg::V(0), Reg::V(2), Reg::A(0))
        .expect("encodable")
        .to_u64();
    rows.push(LayerRow {
        layer: "CDNA2 ISA".into(),
        interface: format!("opcode {opcode:#04x}, word {word:#018x}"),
        lowered_to: mnemonic.clone(),
    });

    // 2. Compiler intrinsic.
    rows.push(LayerRow {
        layer: "LLVM intrinsic".into(),
        interface: instr.builtin().expect("CDNA2 builtin"),
        lowered_to: mnemonic.clone(),
    });

    // 3. rocWMMA.
    let mut a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
    let mut b = Fragment::<MatrixB, F16, 16, 16, 16>::new();
    let c = Fragment::<Accumulator, f32, 16, 16, 16>::new();
    let mut d = Fragment::<Accumulator, f32, 16, 16, 16>::new();
    a.fill(F16::ONE);
    b.fill(F16::ONE);
    let used = mma_sync(&mut d, &a, &b, &c).expect("supported");
    rows.push(LayerRow {
        layer: "rocWMMA".into(),
        interface: "mma_sync(fragments)".into(),
        lowered_to: used.mnemonic(),
    });

    // 4. rocBLAS.
    let handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
    let plan = plan_gemm(
        &handle.gpu().spec().die,
        &GemmDesc::square(GemmOp::Hhs, 1024),
    )
    .expect("plannable");
    let blas_instr = match plan.strategy {
        Strategy::MatrixCore { instr, .. } => instr.mnemonic(),
        Strategy::SimdOnly { .. } => "simd".into(),
    };
    rows.push(LayerRow {
        layer: "rocBLAS".into(),
        interface: "gemm_ex(HHS, N=1024)".into(),
        lowered_to: blas_instr,
    });

    // 5. LAPACK layer: a Cholesky whose updates run the FP64 twin of
    // the same path; verify Matrix Cores actually fired via counters.
    let mut handle = handle;
    let perf = factor_timed(&mut handle, Factorization::Potrf, 1024, 128).expect("factorizable");
    rows.push(LayerRow {
        layer: "LAPACK (rocSOLVER)".into(),
        interface: format!(
            "potrf(1024): {:.0}% of FLOPs on Matrix Cores",
            perf.matrix_core_ratio * 100.0
        ),
        lowered_to: if perf.counters.mfma_mops_f64 > 0 {
            "v_mfma_f64_16x16x4f64".into()
        } else {
            "none".into()
        },
    });

    let consistent = rows[..4].iter().all(|r| r.lowered_to == mnemonic)
        && rows[4].lowered_to == "v_mfma_f64_16x16x4f64";
    Fig2 { rows, consistent }
}

/// Fig. 2 as a registered experiment.
pub struct Fig2Experiment;

impl crate::experiment::Experiment for Fig2Experiment {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "Fig. 2 — interface hierarchy, walked and verified"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let f = run(&ctx.devices);
        (serde_json::to_value(&f), render(&f))
    }
}

/// Renders the stack walk as text.
pub fn render(f: &Fig2) -> String {
    use std::fmt::Write as _;
    let mut s =
        String::from("Fig. 2: programming-interface hierarchy (one op walked down the stack)\n");
    for r in &f.rows {
        let _ = writeln!(s, "{:<20} {:<50} -> {}", r.layer, r.interface, r.lowered_to);
    }
    let _ = writeln!(
        s,
        "consistent lowering: {}",
        if f.consistent { "yes" } else { "NO" }
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_lowers_to_the_same_instruction() {
        let f = run(&DeviceRegistry::builtin());
        assert!(f.consistent, "{f:?}");
        assert_eq!(f.rows.len(), 5);
    }

    #[test]
    fn isa_row_carries_real_encoding() {
        let f = run(&DeviceRegistry::builtin());
        assert!(
            f.rows[0].interface.contains("0x4d"),
            "{}",
            f.rows[0].interface
        );
        assert!(f.rows[1].interface.starts_with("__builtin_amdgcn_mfma"));
    }

    #[test]
    fn solver_layer_reports_high_utilization() {
        let f = run(&DeviceRegistry::builtin());
        let pct: f64 = f.rows[4]
            .interface
            .split(": ")
            .nth(1)
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.parse().ok())
            .expect("percentage in the row");
        assert!(pct > 90.0, "{pct}");
    }
}
