//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation on the simulated devices.
//!
//! Each module owns one artifact, exposes a `run()` returning a
//! serializable result struct and a `render()` producing the
//! paper-style text table, and registers an [`experiment::Experiment`]
//! implementation in [`experiment::registry`]. The `experiments` binary
//! is a thin driver over the registry; every run can be captured as a
//! schema-versioned [`experiment::ExperimentRecord`] envelope, and
//! [`report`] evaluates the paper pass-bands ([`experiment::Check`])
//! from those envelopes. EXPERIMENTS.md records paper-vs-measured for
//! each artifact.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table I — supported MFMA datatypes/shapes |
//! | [`table2`] | Table II — measured MFMA instruction latencies |
//! | [`table3`] | Table III — mixed-precision GEMM datatype combos |
//! | [`fig2`] | Fig. 2 — interface hierarchy, walked and verified |
//! | [`fig3`] | Fig. 3 — throughput vs wavefronts + Eq. 2 model |
//! | [`fig4`] | Fig. 4 — MI250X vs A100 peak throughput |
//! | [`fig5`] | Fig. 5 — power vs throughput + Eq. 3 + efficiency |
//! | [`fig6`] | Fig. 6 — rocBLAS SGEMM/DGEMM vs N |
//! | [`fig7`] | Fig. 7 — rocBLAS HGEMM/HSS/HHS vs N + speedups |
//! | [`fig8`] | Fig. 8 — Matrix Core FLOP ratio vs N |
//! | [`fig9`] | Fig. 9 — FLOP distribution vs the 2N³/3N² model |
//! | [`solver_ext`] | Extension — MC utilization at the LAPACK layer (§III claim) |
//! | [`ml_dtypes`] | Extension — INT8/BF16 instruction throughput (§II datatypes) |
//! | [`generations`] | Extension — MI100→MI250X generation survey (§II framing) |
//! | [`saturation`] | Extension — empirical saturation size (ref. \[19] methodology) |
//! | [`lint`] | Gate — `mc-lint` static verification of the shipped kernel corpus |
//! | [`flow`] | Gate — `mc-flow` dataflow race & synchronization sweep of the corpus |
//! | [`trace`] | Gate — `mc-trace` timeline replay and telemetry cross-check |
//! | [`autotune`] | Gate — scored plan search vs static planner over the Fig. 6/7 sweep |
//! | [`regress`] | Gate — `mc-obs` perf-diff of run envelopes against committed baselines |
//! | [`insight`] | Gate — `mc-insight` bottleneck verdicts and Eq. 2 model drift over the corpus replay |
//! | [`hostprof`] | Gate — host-plane tracing overhead, per-phase attribution, and the unified host+GPU timeline |

#![deny(missing_docs)]

pub mod autotune;
pub mod experiment;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod flow;
pub mod generations;
pub mod hostprof;
pub mod insight;
pub mod lint;
pub mod ml_dtypes;
pub mod perf;
pub mod plot;
pub mod regress;
pub mod report;
pub mod saturation;
pub mod solver_ext;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod trace;

/// The square-N sweep the paper uses for the rocBLAS evaluation: a
/// fixed grid of powers of two from 16, plus the 65000 terminal point,
/// truncated where device memory is exhausted — the methodology of §VII
/// ("we increase the value of N until exhausting the GPU memory").
pub fn gemm_sweep_sizes(max_n: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = 16usize;
    while n <= max_n.min(32768) {
        v.push(n);
        n *= 2;
    }
    if max_n >= 65000 {
        v.push(65000);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_range() {
        let s = gemm_sweep_sizes(65000);
        assert_eq!(s.first(), Some(&16));
        assert_eq!(s.last(), Some(&65000));
        assert!(s.contains(&8192));
        assert!(s.contains(&32768));
    }

    #[test]
    fn sweep_clips_at_memory_boundary() {
        // A 46000-element FP64 boundary truncates the grid at 32768; the
        // grid itself is fixed (the paper never runs off-grid sizes).
        let s = gemm_sweep_sizes(46000);
        assert_eq!(s.last(), Some(&32768));
        assert!(!s.contains(&65000));
    }
}
