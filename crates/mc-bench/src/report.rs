//! Automated paper-vs-measured report generation.
//!
//! The pass-bands themselves live with the experiments as declarative
//! [`crate::experiment::Check`]s; this module only aggregates evaluated
//! comparisons — either from recorded [`ExperimentRecord`] envelopes
//! (`experiments report` after `experiments all --json results/`) or by
//! running the checked experiments at reduced budgets when no recordings
//! exist. EXPERIMENTS.md is the curated version of this output.

use std::path::PathBuf;

use serde::{Deserialize, Serialize, Value};

pub use crate::experiment::Comparison;
use crate::experiment::{load_records, registry, ExperimentRecord, RunContext};

/// The full report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// All comparisons, grouped by artifact via the metric prefix.
    pub comparisons: Vec<Comparison>,
}

impl Report {
    /// Number of passing comparisons.
    pub fn passed(&self) -> usize {
        self.comparisons.iter().filter(|c| c.pass()).count()
    }

    /// `true` when every comparison passes.
    pub fn all_pass(&self) -> bool {
        self.passed() == self.comparisons.len()
    }
}

/// Assembles a report from recorded envelopes, ordering comparisons by
/// the canonical registry order (records for unknown experiments are
/// appended at the end, so custom experiments still show up).
pub fn from_records(records: &[ExperimentRecord]) -> Report {
    let order: Vec<&'static str> = registry()
        .iter()
        .filter(|e| e.id() != "report")
        .map(|e| e.id())
        .collect();
    let mut comparisons = Vec::new();
    for id in &order {
        for record in records.iter().filter(|r| r.experiment == *id) {
            comparisons.extend(record.checks.iter().cloned());
        }
    }
    for record in records {
        if !order.contains(&record.experiment.as_str()) {
            comparisons.extend(record.checks.iter().cloned());
        }
    }
    Report { comparisons }
}

/// Runs every experiment that declares checks and assembles the report
/// from the fresh records.
pub fn run_with(ctx: &RunContext) -> Report {
    let records: Vec<ExperimentRecord> = registry()
        .iter()
        .filter(|e| !e.checks().is_empty())
        .map(|e| e.run(ctx))
        .collect();
    from_records(&records)
}

/// Runs the quantitative artifacts at reduced budgets and assembles the
/// comparison report.
pub fn run() -> Report {
    run_with(&RunContext::reduced())
}

/// Renders the report as markdown.
pub fn render(r: &Report) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("# Paper-vs-measured report\n\n");
    let _ = writeln!(
        s,
        "| metric | paper | measured | deviation | band | verdict |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for cpr in &r.comparisons {
        let _ = writeln!(
            s,
            "| {} | {:.4} | {:.4} | {:.1}% | {:.0}% | {} |",
            cpr.metric,
            cpr.paper,
            cpr.measured,
            cpr.deviation() * 100.0,
            cpr.band * 100.0,
            if cpr.pass() { "pass" } else { "DEVIATES" }
        );
    }
    let _ = writeln!(s, "\n{}/{} within band", r.passed(), r.comparisons.len());
    s
}

/// Renders the one-line kernel explanations from a recorded `insight`
/// envelope (empty when no insight record is present): every diagnosed
/// launch with its verdict and the evidence-citing justification the
/// diagnosis layer produced.
pub fn render_insight_lines(records: &[ExperimentRecord]) -> String {
    use std::fmt::Write as _;
    let Some(record) = records.iter().find(|r| r.experiment == "insight") else {
        return String::new();
    };
    let Some(devices) = record.payload.get("devices").and_then(Value::as_array) else {
        return String::new();
    };
    let mut s = String::from("\n## Kernel verdicts (insight)\n\n");
    for device in devices {
        let name = device.get("device").and_then(Value::as_str).unwrap_or("?");
        for verdict in device
            .get("verdicts")
            .and_then(Value::as_array)
            .unwrap_or(&[])
        {
            let kernel = verdict.get("kernel").and_then(Value::as_str).unwrap_or("?");
            let bottleneck = verdict
                .get("bottleneck")
                .and_then(Value::as_str)
                .unwrap_or("?");
            let explanation = verdict
                .get("explanation")
                .and_then(Value::as_str)
                .unwrap_or("");
            let _ = writeln!(s, "- `{name}` {kernel}: **{bottleneck}** — {explanation}");
        }
    }
    s
}

/// The report as a registered experiment: consumes the envelopes other
/// experiments recorded under the JSON sink (`results/` by default) and
/// re-runs nothing unless no recordings exist.
pub struct ReportExperiment;

impl ReportExperiment {
    /// The sink directory this experiment reads when the context has none.
    pub fn default_sink() -> PathBuf {
        PathBuf::from("results")
    }
}

impl crate::experiment::Experiment for ReportExperiment {
    fn id(&self) -> &'static str {
        "report"
    }

    fn title(&self) -> &'static str {
        "Paper-vs-measured report from recorded envelopes"
    }

    fn device(&self) -> &'static str {
        "mi250x+a100"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let dir = ctx
            .json_sink
            .clone()
            .unwrap_or_else(ReportExperiment::default_sink);
        let (records, load_error) = match load_records(&dir) {
            Ok(records) => (records, None),
            Err(e) => (Vec::new(), Some(e)),
        };
        let own = |r: &&ExperimentRecord| r.experiment == "report";
        let usable: Vec<ExperimentRecord> = records
            .iter()
            .filter(|r| !own(r) && !r.checks.is_empty())
            .cloned()
            .collect();
        let (report, source) = if usable.is_empty() {
            let why = match load_error {
                Some(e) => format!("unreadable envelopes ({e})"),
                None => "no recorded envelopes found".to_owned(),
            };
            (run_with(ctx), format!("{why}; re-ran checked experiments"))
        } else {
            (
                from_records(&usable),
                format!(
                    "from {} recorded envelopes in {}",
                    usable.len(),
                    dir.display()
                ),
            )
        };
        let rendered = format!(
            "{}{}({source})\n",
            render(&report),
            render_insight_lines(&usable)
        );
        (serde_json::to_value(&report), rendered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(metric: &str, paper: f64, measured: f64, band: f64) -> Comparison {
        Comparison {
            metric: metric.to_owned(),
            paper,
            measured,
            band,
        }
    }

    #[test]
    fn comparison_math() {
        let c = cmp("x", 100.0, 103.0, 0.05);
        assert!((c.deviation() - 0.03).abs() < 1e-12);
        assert!(c.pass());
        assert!(!cmp("y", 100.0, 110.0, 0.05).pass());
    }

    #[test]
    fn full_report_passes_except_documented_deviations() {
        let r = run();
        let failures: Vec<&Comparison> = r.comparisons.iter().filter(|c| !c.pass()).collect();
        // Two known deviations, documented in EXPERIMENTS.md: the DGEMM
        // peak magnitude and the HHS peak magnitude.
        assert!(failures.len() <= 2, "unexpected deviations: {failures:#?}");
        for f in &failures {
            assert!(
                f.metric.contains("DGEMM peak (TFLOPS)") || f.metric.contains("HHS peak"),
                "undocumented deviation: {f:?}"
            );
        }
        // And the vast majority must pass.
        assert!(r.passed() >= r.comparisons.len() - 2);
    }

    #[test]
    fn render_contains_verdicts() {
        let r = Report {
            comparisons: vec![cmp("a/b", 1.0, 1.0, 0.01)],
        };
        let text = render(&r);
        assert!(text.contains("| a/b |"));
        assert!(text.contains("pass"));
        assert!(text.contains("1/1 within band"));
    }

    #[test]
    fn from_records_follows_registry_order() {
        let mk = |id: &str, metric: &str| ExperimentRecord {
            schema_version: crate::experiment::SCHEMA_VERSION,
            experiment: id.to_owned(),
            title: String::new(),
            device: "mi250x".into(),
            config: crate::experiment::IterBudgets::smoke(),
            wall_time_s: 0.0,
            checks: vec![cmp(metric, 1.0, 1.0, 0.1)],
            rendered: String::new(),
            payload: serde::Value::Null,
        };
        // Passed out of order; the report re-sorts into registry order.
        let records = vec![mk("fig6", "fig6/x"), mk("table2", "table2/x")];
        let r = from_records(&records);
        let metrics: Vec<&str> = r.comparisons.iter().map(|c| c.metric.as_str()).collect();
        assert_eq!(metrics, vec!["table2/x", "fig6/x"]);
    }
}
