//! Automated paper-vs-measured report generation.
//!
//! Runs every artifact and renders a single markdown report comparing
//! measured values against the paper's published numbers, with pass
//! bands. `experiments report` writes it to stdout; EXPERIMENTS.md is
//! the curated version of this output.

use serde::{Deserialize, Serialize};

/// One compared quantity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being compared.
    pub metric: String,
    /// The paper's published value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Acceptable relative deviation for a "pass".
    pub band: f64,
}

impl Comparison {
    /// Relative deviation from the paper value.
    pub fn deviation(&self) -> f64 {
        (self.measured - self.paper).abs() / self.paper.abs().max(f64::MIN_POSITIVE)
    }

    /// Whether the measurement is within the band.
    pub fn pass(&self) -> bool {
        self.deviation() <= self.band
    }
}

/// The full report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// All comparisons, grouped by artifact via the metric prefix.
    pub comparisons: Vec<Comparison>,
}

impl Report {
    /// Number of passing comparisons.
    pub fn passed(&self) -> usize {
        self.comparisons.iter().filter(|c| c.pass()).count()
    }

    /// `true` when every comparison passes.
    pub fn all_pass(&self) -> bool {
        self.passed() == self.comparisons.len()
    }
}

fn cmp(metric: &str, paper: f64, measured: f64, band: f64) -> Comparison {
    Comparison {
        metric: metric.to_owned(),
        paper,
        measured,
        band,
    }
}

/// Runs the quantitative artifacts and assembles the comparison report.
pub fn run() -> Report {
    let mut c = Vec::new();

    // Table II.
    let t2 = crate::table2::run(1_000_000);
    for (row, paper) in t2.rows.iter().zip([64.0, 32.0, 64.0, 32.0, 32.0]) {
        c.push(cmp(
            &format!("table2/{} {} latency (cycles)", row.types, row.shape),
            paper,
            row.latency_cycles,
            0.01,
        ));
    }

    // Fig. 3 plateaus and fractions of peak.
    let f3 = crate::fig3::run(200_000);
    let series = |l: &str| f3.series.iter().find(|s| s.label == l).unwrap();
    c.push(cmp("fig3/mixed plateau (TFLOPS)", 175.0, series("mixed").plateau_tflops, 0.03));
    c.push(cmp("fig3/float plateau (TFLOPS)", 43.0, series("float").plateau_tflops, 0.03));
    c.push(cmp("fig3/double plateau (TFLOPS)", 41.0, series("double").plateau_tflops, 0.03));
    c.push(cmp("fig3/mixed fraction of peak", 0.92, series("mixed").fraction_of_peak, 0.02));
    c.push(cmp("fig3/double fraction of peak", 0.85, series("double").fraction_of_peak, 0.02));

    // Fig. 4.
    let f4 = crate::fig4::run(200_000);
    let row = |t: &str| f4.rows.iter().find(|r| r.types == t).unwrap();
    c.push(cmp("fig4/MI250X mixed (TFLOPS)", 350.0, row("FP32 <- FP16").mi250x_tflops.unwrap(), 0.03));
    c.push(cmp("fig4/MI250X float (TFLOPS)", 88.0, row("FP32 <- FP32").mi250x_tflops.unwrap(), 0.04));
    c.push(cmp("fig4/MI250X double (TFLOPS)", 69.0, row("FP64 <- FP64").mi250x_tflops.unwrap(), 0.05));
    c.push(cmp("fig4/A100 mixed (TFLOPS)", 290.0, row("FP32 <- FP16").a100_tflops.unwrap(), 0.02));
    c.push(cmp("fig4/A100 double (TFLOPS)", 19.4, row("FP64 <- FP64").a100_tflops.unwrap(), 0.02));
    c.push(cmp("fig4/FP64 advantage (x)", 3.5, f4.fp64_advantage, 0.08));

    // Fig. 5 / §VI.
    let f5 = crate::fig5::run(6_000_000_000, mc_power::SamplerConfig::default());
    let s5 = |l: &str| f5.series.iter().find(|s| s.label == l).unwrap();
    c.push(cmp("fig5/double slope (W/TFLOPS)", 5.88, s5("double").fitted_slope_w_per_tflops, 0.08));
    c.push(cmp("fig5/float slope (W/TFLOPS)", 2.18, s5("float").fitted_slope_w_per_tflops, 0.08));
    c.push(cmp("fig5/mixed slope (W/TFLOPS)", 0.61, s5("mixed").fitted_slope_w_per_tflops, 0.10));
    c.push(cmp("fig5/idle power (W)", 88.0, f5.idle_w, 0.001));
    c.push(cmp("fig5/double peak power (W)", 541.0, s5("double").peak_watts, 0.02));
    c.push(cmp("fig5/mixed efficiency (GFLOPS/W)", 1020.0, s5("mixed").peak_gflops_per_watt, 0.10));
    c.push(cmp("fig5/float efficiency (GFLOPS/W)", 273.0, s5("float").peak_gflops_per_watt, 0.10));
    c.push(cmp("fig5/double efficiency (GFLOPS/W)", 127.0, s5("double").peak_gflops_per_watt, 0.10));

    // Fig. 6.
    let f6 = crate::fig6::run();
    c.push(cmp("fig6/SGEMM peak (TFLOPS)", 43.0, f6.sgemm.peak.tflops, 0.05));
    c.push(cmp("fig6/SGEMM peak location (N)", 8192.0, f6.sgemm.peak.n as f64, 0.0));
    c.push(cmp("fig6/DGEMM peak location (N)", 4096.0, f6.dgemm.peak.n as f64, 0.0));
    c.push(cmp("fig6/DGEMM peak (TFLOPS)", 37.0, f6.dgemm.peak.tflops, 0.15));

    // Fig. 7.
    let f7 = crate::fig7::run();
    c.push(cmp("fig7/HHS peak (TFLOPS)", 155.0, f7.hhs.peak.tflops, 0.12));
    let max_speedup = f7.speedup_hhs_over_hgemm.iter().map(|p| p.1).fold(0.0, f64::max);
    c.push(cmp("fig7/max MC speedup (x)", 7.5, max_speedup, 0.20));

    Report { comparisons: c }
}

/// Renders the report as markdown.
pub fn render(r: &Report) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("# Paper-vs-measured report\n\n");
    let _ = writeln!(s, "| metric | paper | measured | deviation | band | verdict |");
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for cpr in &r.comparisons {
        let _ = writeln!(
            s,
            "| {} | {:.4} | {:.4} | {:.1}% | {:.0}% | {} |",
            cpr.metric,
            cpr.paper,
            cpr.measured,
            cpr.deviation() * 100.0,
            cpr.band * 100.0,
            if cpr.pass() { "pass" } else { "DEVIATES" }
        );
    }
    let _ = writeln!(s, "\n{}/{} within band", r.passed(), r.comparisons.len());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_math() {
        let c = cmp("x", 100.0, 103.0, 0.05);
        assert!((c.deviation() - 0.03).abs() < 1e-12);
        assert!(c.pass());
        assert!(!cmp("y", 100.0, 110.0, 0.05).pass());
    }

    #[test]
    fn full_report_passes_except_documented_deviations() {
        let r = run();
        let failures: Vec<&Comparison> =
            r.comparisons.iter().filter(|c| !c.pass()).collect();
        // Two known deviations, documented in EXPERIMENTS.md: the DGEMM
        // peak magnitude and the HHS peak magnitude.
        assert!(
            failures.len() <= 2,
            "unexpected deviations: {failures:#?}"
        );
        for f in &failures {
            assert!(
                f.metric.contains("DGEMM peak (TFLOPS)") || f.metric.contains("HHS peak"),
                "undocumented deviation: {f:?}"
            );
        }
        // And the vast majority must pass.
        assert!(r.passed() >= r.comparisons.len() - 2);
    }

    #[test]
    fn render_contains_verdicts() {
        let r = Report {
            comparisons: vec![cmp("a/b", 1.0, 1.0, 0.01)],
        };
        let text = render(&r);
        assert!(text.contains("| a/b |"));
        assert!(text.contains("pass"));
        assert!(text.contains("1/1 within band"));
    }
}
