//! Fig. 6: floating-point throughput of rocBLAS SGEMM and DGEMM for
//! `N×N×N` problems, N from 16 to the memory boundary (§VII).

use mc_blas::{BlasHandle, GemmDesc, GemmOp};
use mc_sim::{DeviceId, DeviceRegistry};
use serde::{Deserialize, Serialize};

use crate::gemm_sweep_sizes;

/// One GEMM sweep point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GemmPoint {
    /// Matrix dimension N.
    pub n: usize,
    /// Achieved TFLOPS (useful FLOPs over wall time).
    pub tflops: f64,
    /// Kernel time in seconds.
    pub time_s: f64,
}

/// One routine's sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GemmSeries {
    /// Routine name.
    pub routine: String,
    /// Sweep points (ends at the memory boundary).
    pub points: Vec<GemmPoint>,
    /// Peak throughput and the N where it occurs.
    pub peak: GemmPoint,
}

/// The reproduced Fig. 6.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig6 {
    /// SGEMM series.
    pub sgemm: GemmSeries,
    /// DGEMM series.
    pub dgemm: GemmSeries,
}

/// Sweeps one routine across the paper's N range. Points are
/// independent problems, so they run in parallel on the rayon pool
/// (sequentially when the registry is feeding a trace timeline), each
/// on its own [`BlasHandle`].
pub fn sweep(devices: &DeviceRegistry, op: GemmOp) -> GemmSeries {
    let max_n = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd).max_square_n(op);
    let sizes = gemm_sweep_sizes(max_n);
    let points: Vec<GemmPoint> =
        crate::experiment::par_map(devices.trace_sink().is_none(), sizes, |n| {
            let mut handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
            let perf = handle
                .gemm_timed(&GemmDesc::square(op, n))
                .expect("problem sized within memory");
            GemmPoint {
                n,
                tflops: perf.tflops,
                time_s: perf.time_s,
            }
        });
    let peak = *points
        .iter()
        .max_by(|a, b| a.tflops.total_cmp(&b.tflops))
        .expect("non-empty sweep");
    GemmSeries {
        routine: op.routine().to_owned(),
        points,
        peak,
    }
}

/// Regenerates Fig. 6.
pub fn run(devices: &DeviceRegistry) -> Fig6 {
    Fig6 {
        sgemm: sweep(devices, GemmOp::Sgemm),
        dgemm: sweep(devices, GemmOp::Dgemm),
    }
}

/// Fig. 6 as a registered experiment.
pub struct Fig6Experiment;

impl crate::experiment::Experiment for Fig6Experiment {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn title(&self) -> &'static str {
        "Fig. 6 — rocBLAS SGEMM/DGEMM vs N"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![
            Check::new("fig6/SGEMM peak (TFLOPS)", 43.0, 0.05, "/sgemm/peak/tflops"),
            Check::new("fig6/SGEMM peak location (N)", 8192.0, 0.0, "/sgemm/peak/n"),
            Check::new("fig6/DGEMM peak location (N)", 4096.0, 0.0, "/dgemm/peak/n"),
            Check::new("fig6/DGEMM peak (TFLOPS)", 37.0, 0.15, "/dgemm/peak/tflops"),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let f = run(&ctx.devices);
        (serde_json::to_value(&f), render(&f))
    }
}

/// Renders the figure data as text.
pub fn render(f: &Fig6) -> String {
    render_series(
        "Fig. 6: rocBLAS GEMM throughput (TFLOPS)",
        &[&f.sgemm, &f.dgemm],
    )
}

/// Shared renderer for GEMM sweeps (also used by Fig. 7).
pub fn render_series(title: &str, series: &[&GemmSeries]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{title}\n");
    let _ = write!(s, "{:>8}", "N");
    for g in series {
        let _ = write!(s, " {:>10}", g.routine);
    }
    s.push('\n');
    let ns: Vec<usize> = series
        .iter()
        .flat_map(|g| g.points.iter().map(|p| p.n))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for n in ns {
        let _ = write!(s, "{n:>8}");
        for g in series {
            match g.points.iter().find(|p| p.n == n) {
                Some(p) => {
                    let _ = write!(s, " {:>10.2}", p.tflops);
                }
                None => {
                    let _ = write!(s, " {:>10}", "-");
                }
            }
        }
        s.push('\n');
    }
    for g in series {
        let _ = writeln!(
            s,
            "peak {:<6} {:.1} TFLOPS at N = {}",
            g.routine, g.peak.tflops, g.peak.n
        );
    }
    let chart = crate::plot::Chart {
        title: "(measured)".to_owned(),
        x_label: "N".to_owned(),
        y_label: "TFLOPS".to_owned(),
        ..crate::plot::Chart::default()
    };
    let glyphs = ['s', 'd', 'h', '+', 'x'];
    let plotted: Vec<crate::plot::Series> = series
        .iter()
        .zip(glyphs)
        .map(|(g, glyph)| crate::plot::Series {
            label: g.routine.clone(),
            glyph,
            points: g.points.iter().map(|p| (p.n as f64, p.tflops)).collect(),
        })
        .collect();
    s.push_str(&crate::plot::render(&chart, &plotted));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_match_paper() {
        // §VII: "a maximum of 43 TFLOPS in single-precision at N = 8192,
        // and 37 TFLOPS in double-precision at N = 4096".
        let f = run(&DeviceRegistry::builtin());
        assert_eq!(f.sgemm.peak.n, 8192, "SGEMM peak location");
        assert!(
            (f.sgemm.peak.tflops - 43.0).abs() < 3.0,
            "{}",
            f.sgemm.peak.tflops
        );
        assert_eq!(f.dgemm.peak.n, 4096, "DGEMM peak location");
        assert!(
            f.dgemm.peak.tflops > 28.0 && f.dgemm.peak.tflops < 41.0,
            "{}",
            f.dgemm.peak.tflops
        );
    }

    #[test]
    fn drops_after_peak_then_sgemm_recovers() {
        let f = run(&DeviceRegistry::builtin());
        let at = |s: &GemmSeries, n: usize| s.points.iter().find(|p| p.n == n).unwrap().tflops;
        // SGEMM drops at 16384 and recovers by 65000 (§VII).
        assert!(at(&f.sgemm, 16384) < 0.8 * at(&f.sgemm, 8192));
        assert!(at(&f.sgemm, 65000) > 0.9 * at(&f.sgemm, 8192));
        // DGEMM drops at 8192 (earlier than SGEMM — higher footprint).
        assert!(at(&f.dgemm, 8192) < 0.8 * at(&f.dgemm, 4096));
    }

    #[test]
    fn dgemm_sweep_stops_before_65000() {
        // 65000² doubles exceed one GCD's 64 GB (§VII sweeps "until
        // exhausting the GPU memory").
        let f = run(&DeviceRegistry::builtin());
        let last = f.dgemm.points.last().unwrap().n;
        assert_eq!(last, 32768, "largest grid point fitting 64 GB of doubles");
        assert_eq!(f.sgemm.points.last().unwrap().n, 65000);
    }

    #[test]
    fn near_peak_fraction_of_microbench_plateau() {
        // §VII: rocBLAS reaches ~100% (SGEMM) and ~90% (DGEMM) of the
        // Matrix Core peaks measured in §V (43 / 41 TFLOPS).
        let f = run(&DeviceRegistry::builtin());
        assert!(f.sgemm.peak.tflops / 43.0 > 0.9);
        assert!(f.dgemm.peak.tflops / 41.0 > 0.7);
    }

    #[test]
    fn small_n_is_slow() {
        let f = run(&DeviceRegistry::builtin());
        assert!(f.sgemm.points[0].tflops < 0.01, "N=16 is launch-bound");
    }
}
