//! Fig. 8: the ratio of floating-point operations delivered by Matrix
//! Cores in rocBLAS GEMM routines, derived from hardware counters via
//! Eq. 1 (§IV-B), at increasing matrix sizes.

use mc_blas::{BlasHandle, GemmDesc, GemmOp};
use mc_profiler::{matrix_core_ratio, ProfilerSession};
use mc_sim::{DeviceId, DeviceRegistry};
use serde::{Deserialize, Serialize};

use crate::gemm_sweep_sizes;

/// One routine's ratio series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatioSeries {
    /// Routine name.
    pub routine: String,
    /// `(N, Matrix Core FLOP fraction)` points.
    pub points: Vec<(usize, f64)>,
}

/// The reproduced Fig. 8.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig8 {
    /// One series per routine.
    pub series: Vec<RatioSeries>,
}

/// Regenerates Fig. 8 using counter-capture sessions around each launch.
pub fn run(devices: &DeviceRegistry) -> Fig8 {
    let mut handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
    let series = GemmOp::PAPER
        .iter()
        .map(|&op| {
            let max_n = handle.max_square_n(op).min(16384);
            let points = gemm_sweep_sizes(max_n)
                .into_iter()
                .map(|n| {
                    let session =
                        ProfilerSession::begin(handle.gpu(), handle.die()).expect("valid die");
                    handle
                        .gemm_timed(&GemmDesc::square(op, n))
                        .expect("problem fits");
                    let counters = session.end(handle.gpu()).expect("valid die");
                    (n, matrix_core_ratio(&counters))
                })
                .collect();
            RatioSeries {
                routine: op.routine().to_owned(),
                points,
            }
        })
        .collect();
    Fig8 { series }
}

/// Fig. 8 as a registered experiment.
pub struct Fig8Experiment;

impl crate::experiment::Experiment for Fig8Experiment {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn title(&self) -> &'static str {
        "Fig. 8 — Matrix Core FLOP ratio vs N"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let f = run(&ctx.devices);
        (serde_json::to_value(&f), render(&f))
    }
}

/// Renders the figure data as text.
pub fn render(f: &Fig8) -> String {
    use std::fmt::Write as _;
    let mut s =
        String::from("Fig. 8: fraction of FLOPs delivered by Matrix Cores (from Eq. 1 counters)\n");
    let _ = write!(s, "{:>8}", "N");
    for g in &f.series {
        let _ = write!(s, " {:>8}", g.routine);
    }
    s.push('\n');
    let ns: Vec<usize> = f.series[0].points.iter().map(|p| p.0).collect();
    for (i, n) in ns.iter().enumerate() {
        let _ = write!(s, "{n:>8}");
        for g in &f.series {
            match g.points.get(i) {
                Some((pn, r)) if pn == n => {
                    let _ = write!(s, " {:>7.1}%", r * 100.0);
                }
                _ => {
                    let _ = write!(s, " {:>8}", "-");
                }
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_profiler::uses_matrix_cores;

    fn series<'a>(f: &'a Fig8, routine: &str) -> &'a RatioSeries {
        f.series.iter().find(|s| s.routine == routine).unwrap()
    }

    #[test]
    fn hgemm_ratio_is_zero_everywhere() {
        // §VII: "HGEMM does not utilize Matrix Cores at all".
        let f = run(&DeviceRegistry::builtin());
        assert!(series(&f, "hgemm").points.iter().all(|(_, r)| *r == 0.0));
    }

    #[test]
    fn mixed_ops_skip_matrix_cores_only_at_16() {
        // §VII: "HHS and HSS do not utilize Matrix Cores for the
        // smallest N = 16 matrix".
        let f = run(&DeviceRegistry::builtin());
        for routine in ["hhs", "hss"] {
            let s = series(&f, routine);
            assert_eq!(s.points[0], (16, 0.0), "{routine} at 16");
            for (n, r) in s.points.iter().skip(1) {
                assert!(*r > 0.9, "{routine} at {n}: {r}");
            }
        }
    }

    #[test]
    fn ratios_exceed_90_then_99_percent() {
        // Fig. 8: >90% for N>16 and >99% sustained for N>256, for
        // DGEMM/SGEMM/HHS/HSS.
        let f = run(&DeviceRegistry::builtin());
        for routine in ["sgemm", "dgemm", "hhs", "hss"] {
            let s = series(&f, routine);
            for (n, r) in &s.points {
                if *n > 16 {
                    assert!(*r > 0.90, "{routine} at {n}: {r}");
                }
                if *n > 256 {
                    assert!(*r > 0.99, "{routine} at {n}: {r}");
                }
            }
        }
    }

    #[test]
    fn sgemm_dgemm_use_matrix_cores_at_16() {
        let f = run(&DeviceRegistry::builtin());
        for routine in ["sgemm", "dgemm"] {
            let (n, r) = series(&f, routine).points[0];
            assert_eq!(n, 16);
            assert!(r > 0.85, "{routine}: {r}");
        }
    }

    #[test]
    fn counter_presence_test_matches_ratio() {
        // §IV-B: non-zero MFMA counters <=> Matrix Cores used.
        let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
        let session = ProfilerSession::begin(handle.gpu(), handle.die()).unwrap();
        handle
            .gemm_timed(&GemmDesc::square(GemmOp::Hgemm, 512))
            .unwrap();
        let c = session.end(handle.gpu()).unwrap();
        assert!(!uses_matrix_cores(&c));
        let session = ProfilerSession::begin(handle.gpu(), handle.die()).unwrap();
        handle
            .gemm_timed(&GemmDesc::square(GemmOp::Hss, 512))
            .unwrap();
        let c = session.end(handle.gpu()).unwrap();
        assert!(uses_matrix_cores(&c));
    }
}
