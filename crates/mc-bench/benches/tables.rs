//! Criterion benches regenerating the paper's tables.
//!
//! `table2` is the real measurement (the latency micro-benchmark);
//! `table1`/`table3` are catalog queries, benchmarked to keep the
//! harness honest about their cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    g.bench_function("table1_supported_shapes", |b| {
        b.iter(|| black_box(mc_bench::table1::run()))
    });

    g.bench_function("table2_mfma_latencies", |b| {
        b.iter(|| {
            black_box(mc_bench::table2::run(
                &mc_sim::DeviceRegistry::builtin(),
                black_box(1_000_000),
            ))
        })
    });

    g.bench_function("table3_gemm_datatypes", |b| {
        b.iter(|| black_box(mc_bench::table3::run()))
    });

    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
