//! Criterion bench for Fig. 5: the power-vs-throughput sweep with
//! SMI sampling and Eq. 3 model recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_power::SamplerConfig;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_power");
    g.sample_size(10);
    g.bench_function("three_dtype_power_sweep_with_sampling", |b| {
        b.iter(|| {
            black_box(mc_bench::fig5::run(
                &mc_sim::DeviceRegistry::builtin(),
                black_box(6_000_000_000),
                SamplerConfig::default(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
