//! Micro-benchmarks of the library itself (not the simulated device):
//! soft-float conversion, register-map queries, catalog lookups, GEMM
//! planning, and the functional MMA — the hot paths a downstream user
//! of this crate actually pays for.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_blas::{plan_gemm, GemmDesc, GemmOp};
use mc_isa::cdna2_catalog;
use mc_isa::regmap::{element_location, ElementCoord, Operand};
use mc_types::{DType, F16};
use mc_wmma::{mma_sync, Accumulator, Fragment, MatrixA, MatrixB};
use std::hint::black_box;

fn bench_soft_float(c: &mut Criterion) {
    let mut g = c.benchmark_group("library/soft_float");
    let values: Vec<f32> = (0..4096).map(|i| (i as f32) * 0.37 - 700.0).collect();
    g.bench_function("f16_from_f32_4k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &v in &values {
                acc = acc.wrapping_add(u32::from(F16::from_f32(black_box(v)).to_bits()));
            }
            black_box(acc)
        })
    });
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    g.bench_function("f16_to_f32_4k", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &h in &halves {
                acc += black_box(h).to_f32();
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_isa_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("library/isa");
    let catalog = cdna2_catalog();
    g.bench_function("catalog_find", |b| {
        b.iter(|| black_box(catalog.find(DType::F32, DType::F16, 16, 16, 16)))
    });
    let instr = *catalog.find(DType::F32, DType::F16, 16, 16, 16).unwrap();
    g.bench_function("regmap_element_location", |b| {
        b.iter(|| {
            black_box(element_location(
                &instr,
                Operand::D,
                ElementCoord {
                    block: 0,
                    row: 7,
                    col: 9,
                },
            ))
        })
    });
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("library/planner");
    let die = mc_isa::specs::mi250x().die;
    g.bench_function("plan_gemm_8192", |b| {
        b.iter(|| black_box(plan_gemm(&die, &GemmDesc::square(GemmOp::Hhs, 8192)).unwrap()))
    });
    g.finish();
}

fn bench_functional_mma(c: &mut Criterion) {
    let mut g = c.benchmark_group("library/functional_mma");
    let mut a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
    let mut b_frag = Fragment::<MatrixB, F16, 16, 16, 16>::new();
    let c_frag = Fragment::<Accumulator, f32, 16, 16, 16>::new();
    for i in 0..16 {
        for j in 0..16 {
            a.set(i, j, F16::from_f32((i * 16 + j) as f32 * 0.01));
            b_frag.set(i, j, F16::from_f32((i + j) as f32 * 0.02));
        }
    }
    g.bench_function("mma_sync_16x16x16", |bch| {
        bch.iter(|| {
            let mut d = Fragment::<Accumulator, f32, 16, 16, 16>::new();
            mma_sync(&mut d, black_box(&a), black_box(&b_frag), &c_frag).unwrap();
            black_box(d.get(0, 0))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_soft_float,
    bench_isa_queries,
    bench_planner,
    bench_functional_mma
);
criterion_main!(benches);
