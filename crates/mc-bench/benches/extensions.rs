//! Criterion benches for the extension experiments: the LAPACK-layer
//! utilization sweep and the ML-datatype throughput survey.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_blas::BlasHandle;
use mc_solver::{factor_timed, Factorization};
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    g.bench_function("solver_utilization_sweep", |b| {
        b.iter(|| black_box(mc_bench::solver_ext::run(&mc_sim::DeviceRegistry::builtin())))
    });

    g.bench_function("ml_dtypes_survey", |b| {
        b.iter(|| {
            black_box(mc_bench::ml_dtypes::run(
                &mc_sim::DeviceRegistry::builtin(),
                black_box(100_000),
            ))
        })
    });

    g.bench_function("potrf_8192", |b| {
        let mut handle = BlasHandle::from_registry(
            &mc_sim::DeviceRegistry::builtin(),
            mc_sim::DeviceId::Mi250xGcd,
        );
        b.iter(|| {
            black_box(
                factor_timed(&mut handle, Factorization::Potrf, 8192, 128)
                    .unwrap()
                    .tflops,
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
