//! Criterion bench for Fig. 3: the wavefront-scaling throughput sweep
//! (measured + Eq. 2 model) for all three datatypes, plus individual
//! saturated-plateau measurements per datatype.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_isa::cdna2_catalog;
use mc_sim::{throughput_run, DeviceId, DeviceRegistry};
use mc_types::DType;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_throughput_scaling");
    g.sample_size(10);

    g.bench_function("full_sweep_three_dtypes", |b| {
        b.iter(|| {
            black_box(mc_bench::fig3::run(
                &DeviceRegistry::builtin(),
                black_box(100_000),
            ))
        })
    });

    for (label, cd, ab, m, n, k) in [
        ("plateau_mixed", DType::F32, DType::F16, 16, 16, 16),
        ("plateau_float", DType::F32, DType::F32, 16, 16, 4),
        ("plateau_double", DType::F64, DType::F64, 16, 16, 4),
    ] {
        let instr = *cdna2_catalog().find(cd, ab, m, n, k).unwrap();
        g.bench_function(label, |b| {
            let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
            b.iter(|| {
                black_box(
                    throughput_run(&mut gpu, 0, &instr, 440, 100_000)
                        .unwrap()
                        .tflops,
                )
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
