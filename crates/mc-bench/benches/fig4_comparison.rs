//! Criterion bench for Fig. 4: the MI250X-vs-A100 whole-package peak
//! comparison across the four Table I type combinations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_vendor_comparison");
    g.sample_size(10);
    g.bench_function("four_type_combos_both_vendors", |b| {
        b.iter(|| {
            black_box(mc_bench::fig4::run(
                &mc_sim::DeviceRegistry::builtin(),
                black_box(100_000),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
