//! Criterion benches for Fig. 6 and Fig. 7: the rocBLAS GEMM sweeps in
//! all five precisions, plus single-point GEMMs at the paper's peak
//! locations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_blas::{BlasHandle, GemmDesc, GemmOp};
use std::hint::black_box;

fn bench_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig7_gemm_sweeps");
    g.sample_size(10);

    g.bench_function("fig6_sgemm_dgemm_sweep", |b| {
        b.iter(|| black_box(mc_bench::fig6::run(&mc_sim::DeviceRegistry::builtin())))
    });
    g.bench_function("fig7_mixed_precision_sweep", |b| {
        b.iter(|| black_box(mc_bench::fig7::run(&mc_sim::DeviceRegistry::builtin())))
    });
    g.finish();
}

fn bench_peak_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_peak_points");
    g.sample_size(20);
    for (op, n) in [
        (GemmOp::Sgemm, 8192usize),
        (GemmOp::Dgemm, 4096),
        (GemmOp::Hhs, 8192),
        (GemmOp::Hss, 8192),
        (GemmOp::Hgemm, 8192),
    ] {
        g.bench_with_input(
            BenchmarkId::new(op.routine(), n),
            &(op, n),
            |b, &(op, n)| {
                let mut handle = BlasHandle::from_registry(
                    &mc_sim::DeviceRegistry::builtin(),
                    mc_sim::DeviceId::Mi250xGcd,
                );
                b.iter(|| {
                    black_box(
                        handle
                            .gemm_timed(&GemmDesc::square(op, n))
                            .expect("fits")
                            .tflops,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sweeps, bench_peak_points);
criterion_main!(benches);
