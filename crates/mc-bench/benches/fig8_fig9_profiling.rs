//! Criterion benches for Fig. 8 and Fig. 9: the counter-derived Matrix
//! Core utilization sweep and the FLOP-distribution measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_profiling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_fig9_profiling");
    g.sample_size(10);
    g.bench_function("fig8_matrix_core_ratio_sweep", |b| {
        b.iter(|| black_box(mc_bench::fig8::run(&mc_sim::DeviceRegistry::builtin())))
    });
    g.bench_function("fig9_flop_distribution", |b| {
        b.iter(|| black_box(mc_bench::fig9::run(&mc_sim::DeviceRegistry::builtin())))
    });
    g.finish();
}

criterion_group!(benches, bench_profiling);
criterion_main!(benches);
