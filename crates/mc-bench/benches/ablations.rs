//! Ablation benches for the design decisions called out in DESIGN.md §4:
//!
//! * `ablation_granularity` — closed-form aggregation must make kernel
//!   cost independent of the iteration count (O(1) in loop length);
//! * `ablation_governor` — the power governor on vs off for the FP64
//!   two-GCD workload (the paper's §V-C anomaly);
//! * `ablation_sampling` — 10 ms vs 100 ms sampler periods (the paper's
//!   §IV-C validation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_isa::cdna2_catalog;
use mc_power::sampler::BackgroundSampler;
use mc_power::SamplerConfig;
use mc_sim::{throughput_run_all_dies, DeviceId, DeviceRegistry, Gpu, Smi};
use mc_types::DType;
use std::hint::black_box;

fn ablation_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_granularity");
    g.sample_size(20);
    let instr = *cdna2_catalog()
        .find(DType::F32, DType::F16, 16, 16, 16)
        .unwrap();
    // Simulation cost must not scale with loop length: 10^5 vs 10^9
    // iterations should take the same host time (closed-form per-wave
    // aggregation, DESIGN.md decision 1).
    for iters in [100_000u64, 1_000_000_000] {
        g.bench_with_input(BenchmarkId::new("iters", iters), &iters, |b, &iters| {
            let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
            b.iter(|| {
                black_box(
                    mc_sim::throughput_run(&mut gpu, 0, &instr, 440, iters)
                        .unwrap()
                        .tflops,
                )
            })
        });
    }
    g.finish();
}

fn ablation_governor(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_governor");
    g.sample_size(20);
    let instr = *cdna2_catalog()
        .find(DType::F64, DType::F64, 16, 16, 4)
        .unwrap();
    for (label, governor) in [("governor_on", true), ("governor_off", false)] {
        g.bench_function(label, |b| {
            let base = DeviceRegistry::builtin().config(DeviceId::Mi250x).clone();
            let cfg = if governor {
                base
            } else {
                base.without_governor()
            };
            let mut gpu = Gpu::new(cfg);
            b.iter(|| {
                let r = throughput_run_all_dies(&mut gpu, &instr, 440, 1_000_000).unwrap();
                // Report: ~69-71 TF / 541 W governed, ~82 TF / 605 W not.
                black_box((r.tflops, r.package.peak_power_w))
            })
        });
    }
    g.finish();
}

fn ablation_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sampling");
    g.sample_size(10);
    let instr = *cdna2_catalog()
        .find(DType::F32, DType::F16, 16, 16, 16)
        .unwrap();
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let result = throughput_run_all_dies(&mut gpu, &instr, 440, 6_000_000_000).unwrap();
    let noise = gpu.config().telemetry_noise;
    for (label, period) in [("period_100ms", 0.1), ("period_10ms", 0.01)] {
        let profile = result.package.profile.clone();
        g.bench_function(label, |b| {
            b.iter(|| {
                let smi = Smi::attach(profile.clone(), noise, 42);
                let sampler = BackgroundSampler::spawn(
                    smi,
                    SamplerConfig {
                        period_s: period,
                        min_samples: 100,
                    },
                );
                black_box(sampler.join_stats().expect("enough samples").mean_w)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_granularity,
    ablation_governor,
    ablation_sampling
);
criterion_main!(benches);
