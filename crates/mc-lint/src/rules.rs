//! The kernel-level lint rules: MFMA legality, hazard gaps, resources.

use std::collections::HashSet;

use mc_isa::encoding::{self, MfmaEncoding, Reg};
use mc_isa::specs::DieSpec;
use mc_isa::{KernelDesc, MatrixArch, MatrixInstruction, SlotOp};

use crate::{catalog_for, required_snop_gap, Diagnostic, LintReport, RuleId, Section, Span};

/// Statically analyses one kernel against a target die.
///
/// Runs every rule family in order — kernel shape, MFMA legality, hazard
/// scan (skipped on Ampere, whose tensor pipes interlock in hardware),
/// resource budgets and occupancy — and returns the findings in program
/// order as a [`LintReport`].
pub fn lint_kernel(die: &DieSpec, k: &KernelDesc) -> LintReport {
    let mut diags = Vec::new();
    check_shape(k, &mut diags);
    check_legality(die, k, &mut diags);
    if die.arch != MatrixArch::Ampere {
        check_hazards(k, &mut diags);
    }
    check_resources(die, k, &mut diags);
    LintReport::new(k.name.clone(), diags)
}

/// Iterates `(span, op)` over the static program text, in section order.
fn slots(k: &KernelDesc) -> impl Iterator<Item = (Span, &SlotOp)> {
    fn sec(section: Section, ops: &[SlotOp]) -> impl Iterator<Item = (Span, &SlotOp)> {
        ops.iter()
            .enumerate()
            .map(move |(slot, op)| (Span { section, slot }, op))
    }
    sec(Section::Prologue, &k.program.prologue)
        .chain(sec(Section::Body, &k.program.body))
        .chain(sec(Section::Epilogue, &k.program.epilogue))
}

fn check_shape(k: &KernelDesc, diags: &mut Vec<Diagnostic>) {
    let dynamic: u64 = k.program.dynamic_slots().map(|(_, n)| n).sum();
    if k.total_waves() == 0 || dynamic == 0 {
        diags.push(
            Diagnostic::error(
                RuleId::EmptyKernel,
                None,
                format!(
                    "kernel launches {} wave(s) over {} dynamic instruction(s)",
                    k.total_waves(),
                    dynamic
                ),
            )
            .with_help("a kernel needs at least one wave and one executed instruction"),
        );
    }
}

fn check_legality(die: &DieSpec, k: &KernelDesc, diags: &mut Vec<Diagnostic>) {
    let catalog = catalog_for(die.arch);
    for (span, op) in slots(k) {
        let SlotOp::Mfma(instr) = op else { continue };
        if instr.arch != die.arch {
            diags.push(
                Diagnostic::error(
                    RuleId::MfmaWrongArch,
                    Some(span),
                    format!(
                        "`{}` is a {} instruction but the target die is {}",
                        instr.mnemonic(),
                        instr.arch,
                        die.arch
                    ),
                )
                .with_help(format!(
                    "select the instruction from the {} catalog instead",
                    die.arch
                )),
            );
            continue;
        }
        match catalog.by_mnemonic(&instr.mnemonic()) {
            None => diags.push(
                Diagnostic::error(
                    RuleId::MfmaUnknownInstruction,
                    Some(span),
                    format!(
                        "`{}` does not resolve in the {} instruction catalog",
                        instr.mnemonic(),
                        die.arch
                    ),
                )
                .with_help(
                    "only the shapes of the paper's Table I exist in hardware; \
                     pick the instruction via the catalog, not by hand",
                ),
            ),
            Some(entry) if entry != instr => diags.push(
                Diagnostic::error(
                    RuleId::MfmaLatencyMismatch,
                    Some(span),
                    format!(
                        "`{}` disagrees with its catalog entry \
                         (declared {} cycles / {} block(s), catalog says {} / {})",
                        instr.mnemonic(),
                        instr.latency_cycles,
                        instr.shape.blocks,
                        entry.latency_cycles,
                        entry.shape.blocks
                    ),
                )
                .with_help(
                    "a tampered descriptor silently skews every throughput model \
                     (paper Table II); copy the catalog entry verbatim",
                ),
            ),
            Some(entry) => check_roundtrip(die, entry, span, diags),
        }
    }
}

/// On CDNA2, every catalogued MFMA must survive the VOP3P-MAI
/// encode/decode round-trip of `mc_isa::encoding`.
fn check_roundtrip(
    die: &DieSpec,
    entry: &MatrixInstruction,
    span: Span,
    diags: &mut Vec<Diagnostic>,
) {
    if die.arch != MatrixArch::Cdna2 {
        return;
    }
    let src1 = u8::try_from(entry.a_vgprs_per_lane().min(255)).unwrap_or(0);
    let round = encoding::encode_instance(entry, Reg::A(0), Reg::V(0), Reg::V(src1), Reg::A(0))
        .and_then(|enc| MfmaEncoding::from_u64(enc.to_u64()).map(|back| (enc, back)));
    let ok = match &round {
        Ok((enc, back)) => back == enc && back.mnemonic() == entry.mnemonic(),
        Err(_) => false,
    };
    if !ok {
        let detail = match round {
            Ok(_) => "decoded word differs from the encoded instance".to_owned(),
            Err(e) => e.to_string(),
        };
        diags.push(
            Diagnostic::error(
                RuleId::MfmaEncodingRoundtrip,
                Some(span),
                format!(
                    "`{}` failed the VOP3P-MAI encode/decode round-trip: {detail}",
                    entry.mnemonic()
                ),
            )
            .with_help("the opcode table in mc_isa::encoding is out of sync with the catalog"),
        );
    }
}

/// One in-flight MFMA hazard window.
struct PendingHazard {
    instr: MatrixInstruction,
    remaining: u32,
}

/// Maps a walk pass kind onto the diagnostic section it reports as.
pub(crate) fn section_of(kind: mc_isa::walk::PassKind) -> Section {
    match kind {
        mc_isa::walk::PassKind::Prologue => Section::Prologue,
        mc_isa::walk::PassKind::Body => Section::Body,
        mc_isa::walk::PassKind::Epilogue => Section::Epilogue,
    }
}

/// Body passes the hazard scan unrolls. Hazard windows are
/// iteration-independent, so two passes reach the steady state: any
/// window crossing the back edge once is seen (`mc_isa::walk`).
const HAZARD_UNROLL: u64 = 2;

/// Linear hazard scan over prologue / body / body (back-edge) / epilogue.
///
/// Tracks the issue distance since the last MFMA: a `Valu` or
/// `GlobalStore` reading the accumulator inside the window is an error,
/// `S_NOP` outside any window is waste, and a *different* MFMA touching
/// overlapping AccVGPRs inside the window is a write-after-write hazard.
/// The unrolled walk comes from [`mc_isa::walk::steady_passes`] — the
/// same back-edge linearization the `mc-flow` dataflow verifier uses —
/// so a window opened at the bottom of the loop is checked against the
/// top (diagnostics dedup by `(rule, span)` so the second pass adds
/// nothing already seen).
fn check_hazards(k: &KernelDesc, diags: &mut Vec<Diagnostic>) {
    let mut pending: Option<PendingHazard> = None;
    let mut seen: HashSet<(RuleId, Section, usize)> = HashSet::new();

    for pass in mc_isa::walk::steady_passes(&k.program, HAZARD_UNROLL) {
        let section = section_of(pass.kind);
        for (slot, op) in pass.ops.iter().enumerate() {
            let span = Span { section, slot };
            let mut emit = |d: Diagnostic, seen: &mut HashSet<_>| {
                if seen.insert((d.rule_id, section, slot)) {
                    diags.push(d);
                }
            };
            match op {
                SlotOp::Mfma(instr) => {
                    if let Some(p) = &pending {
                        if p.remaining > 0 && p.instr.mnemonic() != instr.mnemonic() {
                            let overlap =
                                p.instr.cd_agprs_per_lane().min(instr.cd_agprs_per_lane());
                            emit(
                                Diagnostic::warning(
                                    RuleId::HazardWawOverlap,
                                    Some(span),
                                    format!(
                                        "`{}` overwrites AccVGPRs a[0..{overlap}] while `{}` is \
                                         still writing them ({} slot(s) left in its window)",
                                        instr.mnemonic(),
                                        p.instr.mnemonic(),
                                        p.remaining
                                    ),
                                )
                                .with_help(
                                    "separate the two instructions or accumulate into \
                                     disjoint AccVGPR ranges",
                                ),
                                &mut seen,
                            );
                        }
                    }
                    // Back-to-back issues of the same instruction chain
                    // through the matrix pipeline without software padding.
                    pending = Some(PendingHazard {
                        instr: *instr,
                        remaining: required_snop_gap(instr),
                    });
                }
                SlotOp::Valu(_) | SlotOp::GlobalStore { .. } => {
                    if let Some(p) = &pending {
                        if p.remaining > 0 {
                            emit(
                                Diagnostic::error(
                                    RuleId::HazardMissingSnop,
                                    Some(span),
                                    format!(
                                        "accumulator of `{}` is read {} issue slot(s) too early",
                                        p.instr.mnemonic(),
                                        p.remaining
                                    ),
                                )
                                .with_help(format!(
                                    "insert `s_nop {}` (or independent instructions) before \
                                     this slot — paper §III",
                                    p.remaining
                                )),
                                &mut seen,
                            );
                        }
                    }
                    pending = None;
                }
                SlotOp::SNop(n) => match &mut pending {
                    Some(p) if p.remaining > 0 => {
                        p.remaining = p.remaining.saturating_sub(u32::from(*n));
                    }
                    _ => emit(
                        Diagnostic::warning(
                            RuleId::HazardExcessSnop,
                            Some(span),
                            format!(
                                "`s_nop {n}` pads an already-satisfied (or absent) hazard window"
                            ),
                        )
                        .with_help("remove the redundant s_nop; issue slots cost throughput"),
                        &mut seen,
                    ),
                },
                SlotOp::GlobalLoad { .. }
                | SlotOp::LdsRead { .. }
                | SlotOp::LdsWrite { .. }
                | SlotOp::Scalar
                | SlotOp::Waitcnt(_)
                | SlotOp::Barrier => {
                    if let Some(p) = &mut pending {
                        p.remaining = p.remaining.saturating_sub(1);
                    }
                }
            }
        }
    }
}

fn check_resources(die: &DieSpec, k: &KernelDesc, diags: &mut Vec<Diagnostic>) {
    // Instruction-derived per-lane register minima, from the regmap
    // element→register packing.
    let mut req_arch = 0u32;
    let mut req_acc = 0u32;
    let mut lds_touch: Option<Span> = None;
    for (span, op) in slots(k) {
        match op {
            SlotOp::Mfma(i) => {
                req_arch = req_arch.max(i.a_vgprs_per_lane() + i.b_vgprs_per_lane());
                req_acc = req_acc.max(i.cd_agprs_per_lane());
            }
            SlotOp::LdsRead { .. } | SlotOp::LdsWrite { .. } => {
                lds_touch.get_or_insert(span);
            }
            _ => {}
        }
    }

    let mut fatal = false;
    for (label, declared) in [
        ("architectural", k.arch_vgprs),
        ("accumulation", k.acc_vgprs),
    ] {
        if declared > die.vgprs_per_simd {
            fatal = true;
            diags.push(
                Diagnostic::error(
                    RuleId::VgprOverflow,
                    None,
                    format!(
                        "kernel declares {declared} {label} VGPRs per lane; \
                         the register file holds {} per SIMD",
                        die.vgprs_per_simd
                    ),
                )
                .with_help("not even one wavefront can become resident at this footprint"),
            );
        }
    }
    if k.arch_vgprs < req_arch {
        diags.push(
            Diagnostic::warning(
                RuleId::VgprUnderdeclared,
                None,
                format!(
                    "kernel declares {} architectural VGPRs but its MFMA operands \
                     need at least {req_arch} per lane",
                    k.arch_vgprs
                ),
            )
            .with_help("occupancy estimates will be optimistic; declare the real footprint"),
        );
    }
    if k.acc_vgprs < req_acc {
        diags.push(
            Diagnostic::warning(
                RuleId::VgprUnderdeclared,
                None,
                format!(
                    "kernel declares {} accumulation VGPRs but its MFMA accumulator \
                     needs at least {req_acc} per lane",
                    k.acc_vgprs
                ),
            )
            .with_help("occupancy estimates will be optimistic; declare the real footprint"),
        );
    }

    if k.lds_bytes_per_workgroup > die.lds_bytes_per_cu {
        fatal = true;
        diags.push(
            Diagnostic::error(
                RuleId::LdsOverflow,
                None,
                format!(
                    "kernel declares {} LDS bytes per workgroup; the CU has {}",
                    k.lds_bytes_per_workgroup, die.lds_bytes_per_cu
                ),
            )
            .with_help("shrink the staging tiles or split the workgroup"),
        );
    }
    if k.lds_bytes_per_workgroup == 0 {
        if let Some(span) = lds_touch {
            diags.push(
                Diagnostic::warning(
                    RuleId::LdsUndeclared,
                    Some(span),
                    "program reads or writes LDS but the kernel declares no LDS allocation"
                        .to_owned(),
                )
                .with_help("set `lds_bytes_per_workgroup` so occupancy accounts for it"),
            );
        }
    }

    if !fatal {
        check_occupancy(die, k, diags);
    }
}

/// Mirrors `mc-sim`'s occupancy model (cross-checked by the repo's
/// integration tests) to flag kernels that cannot become resident or
/// leave more than three quarters of the wave slots idle.
fn check_occupancy(die: &DieSpec, k: &KernelDesc, diags: &mut Vec<Diagnostic>) {
    let slots = die.max_waves_per_simd;
    let by_vgpr = die
        .vgprs_per_simd
        .checked_div(k.arch_vgprs)
        .unwrap_or(slots);
    let by_agpr = die.vgprs_per_simd.checked_div(k.acc_vgprs).unwrap_or(slots);
    let by_lds_wg = die
        .lds_bytes_per_cu
        .checked_div(k.lds_bytes_per_workgroup)
        .unwrap_or(u32::MAX);
    let waves_per_simd_regs = slots.min(by_vgpr).min(by_agpr);
    let waves_per_cu_regs = waves_per_simd_regs * die.simd_units_per_cu;
    let wg_by_waves = waves_per_cu_regs
        .checked_div(k.waves_per_workgroup)
        .unwrap_or(0);
    let workgroups_per_cu = wg_by_waves.min(by_lds_wg);
    let waves_per_cu = workgroups_per_cu * k.waves_per_workgroup;
    let fraction = f64::from(waves_per_cu) / f64::from(slots * die.simd_units_per_cu);

    let limiter = if workgroups_per_cu == by_lds_wg && by_lds_wg < wg_by_waves {
        "LDS capacity"
    } else if waves_per_simd_regs == by_agpr && by_agpr < slots && by_agpr <= by_vgpr {
        "accumulation-VGPR pressure"
    } else if waves_per_simd_regs == by_vgpr && by_vgpr < slots {
        "architectural-VGPR pressure"
    } else {
        "workgroup shape"
    };

    if waves_per_cu == 0 {
        diags.push(
            Diagnostic::error(
                RuleId::LowOccupancy,
                None,
                format!("no wavefront can become resident on a CU (limited by {limiter})"),
            )
            .with_help("the launch would deadlock; reduce the per-workgroup footprint"),
        );
    } else if fraction < 0.25 {
        diags.push(
            Diagnostic::warning(
                RuleId::LowOccupancy,
                None,
                format!(
                    "occupancy is {:.0}% of the wave-slot ceiling ({waves_per_cu} wave(s) \
                     per CU, limited by {limiter})",
                    fraction * 100.0
                ),
            )
            .with_help(
                "few resident waves cannot hide MFMA latency (paper Eq. 2's \
                 min(N_WF, ...) term); cross-check with mc_sim::occupancy",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{required_snop_gap, Severity};
    use mc_isa::{cdna2_catalog, KernelDesc, SlotOp, WaveProgram};
    use mc_types::DType;

    fn die() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    fn mixed() -> MatrixInstruction {
        *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap()
    }

    /// A well-formed MFMA loop kernel: loads, a padded chain, a store.
    fn clean_kernel() -> KernelDesc {
        let i = mixed();
        let gap = u8::try_from(required_snop_gap(&i)).unwrap();
        KernelDesc {
            arch_vgprs: i.a_vgprs_per_lane() + i.b_vgprs_per_lane() + 16,
            acc_vgprs: i.cd_agprs_per_lane(),
            ..KernelDesc::new(
                "clean",
                WaveProgram {
                    prologue: vec![
                        SlotOp::global_load(16),
                        SlotOp::Waitcnt(mc_isa::WaitSpec::vm(0)),
                    ],
                    body: vec![SlotOp::Mfma(i)],
                    body_iterations: 64,
                    epilogue: vec![SlotOp::SNop(gap), SlotOp::global_store(16)],
                },
            )
        }
    }

    #[test]
    fn clean_kernel_is_clean() {
        let report = lint_kernel(&die(), &clean_kernel());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn missing_snop_in_epilogue_is_an_error() {
        let mut k = clean_kernel();
        k.program.epilogue = vec![SlotOp::global_store(16)];
        let report = lint_kernel(&die(), &k);
        assert!(report.has_errors());
        assert!(
            report.fired(RuleId::HazardMissingSnop),
            "{}",
            report.render()
        );
    }

    #[test]
    fn loop_back_edge_consumer_is_caught() {
        // The consumer sits at the TOP of the loop, before the MFMA: only
        // the back-edge pass can see the hazard.
        let i = mixed();
        let mut k = clean_kernel();
        k.program.body = vec![SlotOp::Valu(mc_isa::ValuOp::new(
            mc_isa::ValuOpKind::Fma,
            DType::F32,
        ))];
        k.program.body.push(SlotOp::Mfma(i));
        k.program.epilogue = vec![
            SlotOp::SNop(u8::try_from(required_snop_gap(&i)).unwrap()),
            SlotOp::global_store(16),
        ];
        let report = lint_kernel(&die(), &k);
        assert!(
            report.fired(RuleId::HazardMissingSnop),
            "{}",
            report.render()
        );
        // And the diagnostic points into the body, not the epilogue.
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule_id == RuleId::HazardMissingSnop)
            .unwrap();
        assert_eq!(d.span.unwrap().section, Section::Body);
    }

    #[test]
    fn excess_snop_is_a_warning() {
        let mut k = clean_kernel();
        k.program.prologue.insert(0, SlotOp::SNop(4));
        let report = lint_kernel(&die(), &k);
        assert!(!report.has_errors());
        assert!(
            report.fired(RuleId::HazardExcessSnop),
            "{}",
            report.render()
        );
    }

    #[test]
    fn waw_overlap_between_different_mfmas() {
        let c = cdna2_catalog();
        let f64i = *c.find(DType::F64, DType::F64, 16, 16, 4).unwrap();
        let mut k = clean_kernel();
        k.program.body = vec![SlotOp::Mfma(mixed()), SlotOp::Mfma(f64i)];
        k.arch_vgprs = 32;
        k.acc_vgprs = 8;
        let report = lint_kernel(&die(), &k);
        assert!(
            report.fired(RuleId::HazardWawOverlap),
            "{}",
            report.render()
        );
        assert_eq!(
            report
                .diagnostics
                .iter()
                .find(|d| d.rule_id == RuleId::HazardWawOverlap)
                .unwrap()
                .severity,
            Severity::Warning
        );
    }

    #[test]
    fn wrong_arch_and_unknown_instruction() {
        let ampere = *mc_isa::ampere_catalog()
            .find(DType::F64, DType::F64, 8, 8, 4)
            .unwrap();
        let mut k = clean_kernel();
        k.program.body = vec![SlotOp::Mfma(ampere)];
        let report = lint_kernel(&die(), &k);
        assert!(report.fired(RuleId::MfmaWrongArch));

        // A hand-built shape that no hardware provides.
        let mut bogus = mixed();
        bogus.shape = mc_isa::MfmaShape::new(13, 13, 13);
        k.program.body = vec![SlotOp::Mfma(bogus)];
        let report = lint_kernel(&die(), &k);
        assert!(
            report.fired(RuleId::MfmaUnknownInstruction),
            "{}",
            report.render()
        );
    }

    #[test]
    fn tampered_latency_is_caught() {
        let mut tampered = mixed();
        tampered.latency_cycles = 4; // would fake an 8x throughput win
        let mut k = clean_kernel();
        k.program.body = vec![SlotOp::Mfma(tampered)];
        let report = lint_kernel(&die(), &k);
        assert!(
            report.fired(RuleId::MfmaLatencyMismatch),
            "{}",
            report.render()
        );
    }

    #[test]
    fn resource_rules_fire() {
        let mut k = clean_kernel();
        k.arch_vgprs = 1024;
        assert!(lint_kernel(&die(), &k).fired(RuleId::VgprOverflow));

        let mut k = clean_kernel();
        k.acc_vgprs = 0;
        let r = lint_kernel(&die(), &k);
        assert!(r.fired(RuleId::VgprUnderdeclared) && !r.has_errors());

        let mut k = clean_kernel();
        k.lds_bytes_per_workgroup = 1 << 20;
        assert!(lint_kernel(&die(), &k).fired(RuleId::LdsOverflow));

        let mut k = clean_kernel();
        k.program
            .prologue
            .push(SlotOp::lds_write(8, mc_isa::LdsAccess::fixed(0)));
        k.program
            .prologue
            .push(SlotOp::lds_read(8, mc_isa::LdsAccess::fixed(0)));
        let r = lint_kernel(&die(), &k);
        assert!(r.fired(RuleId::LdsUndeclared) && !r.has_errors());
    }

    #[test]
    fn occupancy_rules_fire() {
        let mut k = clean_kernel();
        k.arch_vgprs = 500; // 512/500 = 1 wave/SIMD -> 12.5%
        let r = lint_kernel(&die(), &k);
        assert!(
            r.fired(RuleId::LowOccupancy) && !r.has_errors(),
            "{}",
            r.render()
        );

        // 64-wave workgroups cannot fit a 32-wave CU at all.
        let mut k = clean_kernel();
        k.waves_per_workgroup = 64;
        let r = lint_kernel(&die(), &k);
        assert!(
            r.fired(RuleId::LowOccupancy) && r.has_errors(),
            "{}",
            r.render()
        );
    }

    #[test]
    fn empty_kernel_is_an_error() {
        let k = KernelDesc::new("nothing", WaveProgram::default());
        assert!(lint_kernel(&die(), &k).fired(RuleId::EmptyKernel));
        let mut k = clean_kernel();
        k.workgroups = 0;
        assert!(lint_kernel(&die(), &k).fired(RuleId::EmptyKernel));
    }

    #[test]
    fn ampere_kernels_skip_hazard_rules() {
        let a100 = mc_isa::specs::a100().die;
        let i = *mc_isa::ampere_catalog()
            .find(DType::F32, DType::F16, 16, 8, 16)
            .unwrap();
        let k = KernelDesc {
            arch_vgprs: i.a_vgprs_per_lane() + i.b_vgprs_per_lane() + 16,
            acc_vgprs: i.cd_agprs_per_lane(),
            ..KernelDesc::new(
                "ampere",
                WaveProgram {
                    prologue: vec![],
                    body: vec![SlotOp::Mfma(i)],
                    body_iterations: 8,
                    // No S_NOP before the store: fine on Ampere.
                    epilogue: vec![SlotOp::global_store(16)],
                },
            )
        };
        let report = lint_kernel(&a100, &k);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn renderer_mentions_rule_and_span() {
        let mut k = clean_kernel();
        k.program.epilogue = vec![SlotOp::global_store(16)];
        let text = lint_kernel(&die(), &k).render();
        assert!(text.contains("error[hazard-missing-snop]"), "{text}");
        assert!(text.contains("epilogue[0]"), "{text}");
        assert!(text.contains("= help:"), "{text}");
    }

    #[test]
    fn required_gap_tracks_latency() {
        let c = cdna2_catalog();
        let g16 = required_snop_gap(c.find(DType::F32, DType::F16, 16, 16, 16).unwrap());
        let g32 = required_snop_gap(c.find(DType::F32, DType::F16, 32, 32, 8).unwrap());
        assert_eq!(g16, 4);
        assert_eq!(g32, 8);
        let mut short = mixed();
        short.latency_cycles = 2;
        assert_eq!(required_snop_gap(&short), 1);
    }
}
