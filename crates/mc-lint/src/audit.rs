//! Device-model consistency audit (paper Eq. 2).
//!
//! The paper's §V-A validation identity says the theoretical peak of an
//! instruction is `units/CU × FLOPs/instr ÷ initiation interval × CUs ×
//! f`. The spec tables and `MatrixInstruction::flops_per_cu_per_cycle`
//! both encode pieces of that identity; this audit recomputes Eq. 2 from
//! first principles for every catalog instruction of a die's
//! architecture and flags any disagreement with the pipeline model — so
//! a spec-table typo (wrong matrix-unit count, zero latency, wrong
//! wavefront width) surfaces at lint time instead of as a mysteriously
//! shifted roofline.

use mc_isa::specs::{DieSpec, PackageSpec};
use mc_isa::MatrixArch;

use crate::{catalog_for, Diagnostic, LintReport, RuleId};

/// Relative tolerance for the Eq. 2 comparison. The two sides are the
/// same arithmetic in a different association order, so anything beyond
/// accumulated rounding is a genuine model inconsistency.
const EQ2_RTOL: f64 = 1e-9;

/// Audits one die spec against the paper's pipeline model.
pub fn audit_die(die: &DieSpec) -> LintReport {
    let mut diags = Vec::new();

    let expected_lanes = match die.arch {
        MatrixArch::Cdna1 | MatrixArch::Cdna2 => 64,
        MatrixArch::Ampere => 32,
    };
    if die.wavefront_size != expected_lanes {
        diags.push(
            Diagnostic::error(
                RuleId::SpecWavefrontSize,
                None,
                format!(
                    "{} die declares {}-lane wavefronts; the architecture is {}-wide",
                    die.arch, die.wavefront_size, expected_lanes
                ),
            )
            .with_help("the regmap element→register packing assumes the native width"),
        );
    }

    for instr in catalog_for(die.arch).instructions() {
        if instr.latency_cycles == 0 {
            diags.push(
                Diagnostic::error(
                    RuleId::ModelPipelineMismatch,
                    None,
                    format!(
                        "`{}` has a zero initiation interval; Eq. 2 divides by it",
                        instr.mnemonic()
                    ),
                )
                .with_help("catalog latencies come from the paper's Table II"),
            );
            continue;
        }
        // Eq. 2 from first principles: units × FLOPs/instr ÷ interval,
        // scaled to the die.
        let eq2 = f64::from(die.matrix_units_per_cu) * instr.flops() as f64
            / f64::from(instr.latency_cycles)
            * f64::from(die.compute_units)
            * die.clock_hz();
        // The pipeline model as the rest of the stack computes it.
        let model = die.peak_flops(instr.flops_per_cu_per_cycle());
        let rel = (eq2 - model).abs() / model.max(1.0);
        if rel > EQ2_RTOL {
            diags.push(
                Diagnostic::error(
                    RuleId::ModelPipelineMismatch,
                    None,
                    format!(
                        "Eq. 2 peak for `{}` is {:.4e} FLOPS but the pipeline model \
                         yields {:.4e} (relative error {:.2e})",
                        instr.mnemonic(),
                        eq2,
                        model,
                        rel
                    ),
                )
                .with_help(format!(
                    "the spec table says {} matrix units per CU; \
                     `flops_per_cu_per_cycle` assumes 4 — reconcile them",
                    die.matrix_units_per_cu
                )),
            );
        }
    }

    LintReport::new(format!("{} die", die.arch), diags)
}

/// Audits a whole package: the die audit plus package-level sanity.
pub fn audit_package(pkg: &PackageSpec) -> LintReport {
    let mut report = audit_die(&pkg.die);
    report.subject = pkg.name.clone();
    if pkg.dies == 0 {
        report.diagnostics.push(
            Diagnostic::error(
                RuleId::ModelPipelineMismatch,
                None,
                "package declares zero dies; every package peak would be zero".to_owned(),
            )
            .with_help("MI250X has 2 GCDs; MI100 and A100 have 1 die"),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::specs;

    #[test]
    fn shipped_specs_audit_clean() {
        for pkg in [specs::mi100(), specs::mi250x(), specs::a100()] {
            let report = audit_package(&pkg);
            assert!(report.is_clean(), "{}:\n{}", pkg.name, report.render());
        }
    }

    #[test]
    fn wrong_matrix_unit_count_violates_eq2() {
        let mut die = specs::mi250x().die;
        die.matrix_units_per_cu = 2;
        let report = audit_die(&die);
        assert!(report.has_errors());
        assert!(
            report.fired(RuleId::ModelPipelineMismatch),
            "{}",
            report.render()
        );
    }

    #[test]
    fn wrong_wavefront_size_is_flagged() {
        let mut die = specs::a100().die;
        die.wavefront_size = 64;
        let report = audit_die(&die);
        assert!(report.fired(RuleId::SpecWavefrontSize));
    }

    #[test]
    fn zero_dies_flagged_at_package_level() {
        let mut pkg = specs::mi100();
        pkg.dies = 0;
        assert!(audit_package(&pkg).has_errors());
    }
}
