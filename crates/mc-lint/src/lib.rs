//! `mc-lint`: static verification of simulator kernels before launch.
//!
//! The paper (§III) stresses that Matrix-Core programming is error-prone
//! exactly where a `KernelDesc` is unchecked: operand shapes and dtypes
//! must match one of the fixed `V_MFMA_*` variants, dependent MFMA
//! results need hardware-mandated `S_NOP` hazard gaps before AccVGPR
//! reads, and the per-lane register layout silently determines VGPR
//! budgets and occupancy. A malformed kernel fed straight into the
//! simulator produces a plausible-but-wrong throughput number instead of
//! an error — the worst failure mode for a reproduction repo.
//!
//! This crate implements a linear static analysis over
//! [`mc_isa::KernelDesc`] with four rule families:
//!
//! * **MFMA legality** — every [`mc_isa::SlotOp::Mfma`] must resolve in
//!   the target architecture's instruction catalog (shape, dtype pair,
//!   latency) and, on CDNA2, survive an encode/decode round-trip through
//!   [`mc_isa::encoding`].
//! * **Hazard analysis** — a linear scan over prologue/body/epilogue
//!   (modeling the loop back-edge) tracks the issue distance between an
//!   MFMA and the next AccVGPR consumer, flagging missing or excess
//!   `S_NOP` padding and write-after-write accumulator overlaps.
//! * **Resource checks** — per-wavefront VGPR budgets, LDS capacity, and
//!   occupancy-impact warnings mirroring `mc-sim`'s occupancy model.
//! * **Model-consistency audit** — each device spec must satisfy the
//!   paper's Eq. 2 pipeline identity (peak FLOPs = units × FLOPs/instr ÷
//!   initiation interval), so spec-table typos are caught at lint time
//!   rather than as mysterious curve deviations.
//!
//! Every finding is a structured [`Diagnostic`] with a stable
//! [`RuleId`], a [`Span`] into the program, and a rustc-style rendering.
//! See `docs/LINTS.md` for the rule reference.

#![deny(missing_docs)]

use core::fmt;

use mc_isa::specs::{self, DieSpec};
use mc_isa::{ampere_catalog, cdna1_catalog, cdna2_catalog, IsaCatalog, MatrixArch};
use serde::{Deserialize, Serialize};

mod audit;
mod rules;

pub use audit::{audit_die, audit_package};
pub use rules::lint_kernel;

/// How severe a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// The kernel would corrupt results or fail to launch on hardware;
    /// compile paths must refuse it.
    Error,
    /// The kernel is legal but wasteful or suspicious; compile paths log
    /// it (or deny it in strict mode).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Which part of the wave program a diagnostic points into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Section {
    /// Straight-line code before the loop.
    Prologue,
    /// The loop body (executed `body_iterations` times).
    Body,
    /// Straight-line code after the loop.
    Epilogue,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Section::Prologue => "prologue",
            Section::Body => "body",
            Section::Epilogue => "epilogue",
        })
    }
}

/// A location in a wave program: section plus slot index within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// The program section.
    pub section: Section,
    /// Zero-based slot index within the section.
    pub slot: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.section, self.slot)
    }
}

/// Stable identifiers for every lint rule. Documented in `docs/LINTS.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleId {
    /// `SlotOp::Mfma` does not resolve in the device catalog.
    MfmaUnknownInstruction,
    /// The MFMA targets a different architecture than the device.
    MfmaWrongArch,
    /// The MFMA's descriptor disagrees with the catalog entry of the
    /// same mnemonic (typically a tampered latency or block count).
    MfmaLatencyMismatch,
    /// The CDNA2 MFMA failed the VOP3P encode/decode round-trip.
    MfmaEncodingRoundtrip,
    /// An AccVGPR consumer issues inside an MFMA hazard window.
    HazardMissingSnop,
    /// An `S_NOP` pads an already-satisfied (or absent) hazard window.
    HazardExcessSnop,
    /// Two different MFMA instructions overwrite overlapping AccVGPRs
    /// without enough separation.
    HazardWawOverlap,
    /// Declared VGPR footprint exceeds the register file.
    VgprOverflow,
    /// Declared VGPR footprint is below the instruction-derived minimum.
    VgprUnderdeclared,
    /// Declared LDS exceeds the CU's capacity.
    LdsOverflow,
    /// The program touches LDS but declares no LDS allocation.
    LdsUndeclared,
    /// Occupancy is zero (error) or severely limited (warning).
    LowOccupancy,
    /// The kernel launches no waves or has an empty program.
    EmptyKernel,
    /// A device spec violates the paper's Eq. 2 pipeline identity.
    ModelPipelineMismatch,
    /// A device spec's wavefront size does not match its architecture.
    SpecWavefrontSize,
}

impl RuleId {
    /// All rules, in documentation order.
    pub const ALL: &'static [RuleId] = &[
        RuleId::MfmaUnknownInstruction,
        RuleId::MfmaWrongArch,
        RuleId::MfmaLatencyMismatch,
        RuleId::MfmaEncodingRoundtrip,
        RuleId::HazardMissingSnop,
        RuleId::HazardExcessSnop,
        RuleId::HazardWawOverlap,
        RuleId::VgprOverflow,
        RuleId::VgprUnderdeclared,
        RuleId::LdsOverflow,
        RuleId::LdsUndeclared,
        RuleId::LowOccupancy,
        RuleId::EmptyKernel,
        RuleId::ModelPipelineMismatch,
        RuleId::SpecWavefrontSize,
    ];

    /// The stable kebab-case name used in reports and `docs/LINTS.md`.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::MfmaUnknownInstruction => "mfma-unknown-instruction",
            RuleId::MfmaWrongArch => "mfma-wrong-arch",
            RuleId::MfmaLatencyMismatch => "mfma-latency-mismatch",
            RuleId::MfmaEncodingRoundtrip => "mfma-encoding-roundtrip",
            RuleId::HazardMissingSnop => "hazard-missing-snop",
            RuleId::HazardExcessSnop => "hazard-excess-snop",
            RuleId::HazardWawOverlap => "hazard-waw-overlap",
            RuleId::VgprOverflow => "vgpr-overflow",
            RuleId::VgprUnderdeclared => "vgpr-underdeclared",
            RuleId::LdsOverflow => "lds-overflow",
            RuleId::LdsUndeclared => "lds-undeclared",
            RuleId::LowOccupancy => "low-occupancy",
            RuleId::EmptyKernel => "empty-kernel",
            RuleId::ModelPipelineMismatch => "model-pipeline-mismatch",
            RuleId::SpecWavefrontSize => "spec-wavefront-size",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// The rule that fired.
    pub rule_id: RuleId,
    /// Program location, when the finding points at one slot; `None`
    /// for kernel-level and device-level findings.
    pub span: Option<Span>,
    /// Human-readable description of the defect.
    pub message: String,
    /// Suggested fix, when one exists.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(rule_id: RuleId, span: Option<Span>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            rule_id,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(rule_id: RuleId, span: Option<Span>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            rule_id,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders this diagnostic rustc-style, labelled with the subject
    /// (kernel or device) it was produced for.
    pub fn render(&self, subject: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.rule_id, self.message);
        match self.span {
            Some(span) => out.push_str(&format!("  --> `{subject}`, {span}\n")),
            None => out.push_str(&format!("  --> `{subject}`\n")),
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }
}

/// The result of linting one kernel (or auditing one device).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// The kernel name (or device name for audits).
    pub subject: String,
    /// Findings in program order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Builds a report for a subject from raw diagnostics.
    pub fn new(subject: impl Into<String>, diagnostics: Vec<Diagnostic>) -> Self {
        LintReport {
            subject: subject.into(),
            diagnostics,
        }
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// `true` when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// Warning-severity findings only.
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// `true` when the given rule fired at least once.
    pub fn fired(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule_id == rule)
    }

    /// Renders every finding rustc-style, followed by a summary line.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!("`{}`: lint clean\n", self.subject);
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(&self.subject));
        }
        out.push_str(&format!(
            "`{}`: {} error(s), {} warning(s)\n",
            self.subject,
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

/// The instruction catalog a device architecture validates against.
pub fn catalog_for(arch: MatrixArch) -> &'static IsaCatalog {
    match arch {
        MatrixArch::Cdna1 => cdna1_catalog(),
        MatrixArch::Cdna2 => cdna2_catalog(),
        MatrixArch::Ampere => ampere_catalog(),
    }
}

/// The reference die specification for an architecture, used by compile
/// paths (such as `mc-wmma`'s builder) that know the target architecture
/// but not the concrete device.
pub fn default_die_for(arch: MatrixArch) -> DieSpec {
    match arch {
        MatrixArch::Cdna1 => specs::mi100().die,
        MatrixArch::Cdna2 => specs::mi250x().die,
        MatrixArch::Ampere => specs::a100().die,
    }
}

/// Independent issue slots hardware requires between an MFMA and the
/// first non-MFMA read of its accumulator (paper §III: "several no-op
/// instructions might be required"). Modeled as one slot per pipeline
/// quarter-pass: `latency / 8`, at least 1 — e.g. 4 for the 32-cycle
/// 16×16 instructions, 8 for the 64-cycle 32×32 instructions.
pub fn required_snop_gap(instr: &mc_isa::MatrixInstruction) -> u32 {
    (instr.latency_cycles / 8).max(1)
}
