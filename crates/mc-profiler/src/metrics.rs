//! Derived metrics over captured counters.

use mc_model::flops::{derived_flops_for, derived_total_flops};
use mc_sim::HwCounters;
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// FLOPs split by execution unit and datatype — the measurement behind
/// Fig. 8 and Fig. 9.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlopBreakdown {
    /// Matrix Core FLOPs by input type: (f64, f32, f16-class).
    pub matrix_core: (u64, u64, u64),
    /// SIMD FLOPs by type: (f64, f32, f16).
    pub simd: (u64, u64, u64),
}

impl FlopBreakdown {
    /// Derives the breakdown from a counter bank via Eq. 1.
    pub fn from_counters(c: &HwCounters) -> Self {
        let f64d = derived_flops_for(c, DType::F64);
        let f32d = derived_flops_for(c, DType::F32);
        let f16d = derived_flops_for(c, DType::F16);
        let bf = derived_flops_for(c, DType::Bf16);
        FlopBreakdown {
            matrix_core: (
                f64d.matrix_core,
                f32d.matrix_core,
                f16d.matrix_core + bf.matrix_core,
            ),
            simd: (f64d.simd, f32d.simd, f16d.simd),
        }
    }

    /// Total Matrix Core FLOPs.
    pub fn total_matrix_core(&self) -> u64 {
        self.matrix_core.0 + self.matrix_core.1 + self.matrix_core.2
    }

    /// Total SIMD FLOPs.
    pub fn total_simd(&self) -> u64 {
        self.simd.0 + self.simd.1 + self.simd.2
    }
}

/// The Fig. 8 metric: fraction of floating-point operations delivered by
/// Matrix Cores.
pub fn matrix_core_ratio(c: &HwCounters) -> f64 {
    derived_total_flops(c).matrix_core_ratio()
}

/// The paper's Matrix-Core-use test: "non-zero values returned from
/// counters related to Matrix Cores would indicate that Matrix Cores are
/// used in a rocBLAS-based application" (§IV-B).
pub fn uses_matrix_cores(c: &HwCounters) -> bool {
    c.mfma_mops_f64 + c.mfma_mops_f32 + c.mfma_mops_f16 + c.mfma_mops_bf16 + c.mfma_mops_i8 > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_breakdown_consistent() {
        let c = HwCounters {
            mfma_mops_f32: 1000, // 512000 MC FLOPs
            valu_mul_f32: 100,   // 6400
            valu_fma_f32: 100,   // 12800
            ..HwCounters::default()
        };
        let b = FlopBreakdown::from_counters(&c);
        assert_eq!(b.total_matrix_core(), 512_000);
        assert_eq!(b.total_simd(), 19_200);
        let r = matrix_core_ratio(&c);
        assert!((r - 512_000.0 / 531_200.0).abs() < 1e-12);
        assert!(uses_matrix_cores(&c));
    }

    #[test]
    fn simd_only_kernel_has_zero_ratio() {
        let c = HwCounters {
            valu_fma_f16: 5000,
            ..HwCounters::default()
        };
        assert_eq!(matrix_core_ratio(&c), 0.0);
        assert!(!uses_matrix_cores(&c));
    }

    #[test]
    fn bf16_counts_as_f16_class() {
        let c = HwCounters {
            mfma_mops_bf16: 10,
            ..HwCounters::default()
        };
        let b = FlopBreakdown::from_counters(&c);
        assert_eq!(b.matrix_core.2, 5120);
        assert!(uses_matrix_cores(&c));
    }
}
