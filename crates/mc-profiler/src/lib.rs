//! rocprof-style profiling of the simulated device (paper §IV-B).
//!
//! The paper cannot observe rocBLAS's internal strategy directly, so it
//! derives Matrix Core utilization from hardware counters: non-zero
//! `SQ_INSTS_VALU_MFMA_MOPS_F*` indicates Matrix Core use, and Eq. 1
//! turns the counter bank into exact FLOP counts split by execution
//! unit. This crate reproduces that workflow:
//!
//! * [`session`] — counter capture around launches (`rocprof`'s
//!   per-kernel counter deltas);
//! * [`metrics`] — the derived metrics: per-datatype FLOPs, the
//!   Matrix-Core ratio of Fig. 8, and the Fig. 9 split.

#![deny(missing_docs)]

pub mod metrics;
pub mod session;

pub use metrics::{matrix_core_ratio, uses_matrix_cores, FlopBreakdown};
pub use session::{CounterReport, ProfilerSession};
