//! Counter-capture sessions.

use mc_sim::{Gpu, HwCounters, LaunchError};
use serde::{Deserialize, Serialize};

/// A profiling session: captures counter deltas on one die between
/// `begin` and `end`, like `rocprof` wrapping a kernel launch.
#[derive(Debug)]
pub struct ProfilerSession {
    die: usize,
    baseline: HwCounters,
}

impl ProfilerSession {
    /// Starts a session on one die, snapshotting current counters.
    pub fn begin(gpu: &Gpu, die: usize) -> Result<Self, LaunchError> {
        Ok(ProfilerSession {
            die,
            baseline: gpu.counters(die)?,
        })
    }

    /// Ends the session, returning the counter delta since `begin`.
    pub fn end(self, gpu: &Gpu) -> Result<HwCounters, LaunchError> {
        Ok(gpu.counters(self.die)?.delta_from(&self.baseline))
    }

    /// Ends the session and registers the counter delta in a metrics
    /// registry under the `counters.` prefix. Returns the delta.
    pub fn end_metrics(
        self,
        gpu: &Gpu,
        registry: &mut mc_trace::MetricsRegistry,
    ) -> Result<HwCounters, LaunchError> {
        let delta = self.end(gpu)?;
        delta.register_metrics(registry);
        Ok(delta)
    }

    /// Ends the session and registers both the raw counter delta
    /// (`counters.*`) and the Eq. 1 FLOP derivation over it
    /// (`profiler.eq1.*`: matrix-core FLOPs, SIMD FLOPs, total, and
    /// the matrix-core fraction). This is the profiler's contribution
    /// to an `mc-obs` attribution record: the same derived quantities,
    /// sourced from counters instead of the engine's internal tallies.
    pub fn end_derived_metrics(
        self,
        gpu: &Gpu,
        registry: &mut mc_trace::MetricsRegistry,
    ) -> Result<HwCounters, LaunchError> {
        use mc_trace::Unit;
        let delta = self.end_metrics(gpu, registry)?;
        let derived = mc_model::derived_total_flops(&delta);
        registry.set(
            "profiler.eq1.matrix_flops",
            Unit::Flops,
            derived.matrix_core as f64,
        );
        registry.set("profiler.eq1.simd_flops", Unit::Flops, derived.simd as f64);
        registry.set(
            "profiler.eq1.total_flops",
            Unit::Flops,
            derived.total() as f64,
        );
        registry.set(
            "profiler.eq1.matrix_ratio",
            Unit::Ratio,
            derived.matrix_core_ratio(),
        );
        Ok(delta)
    }
}

/// A named-counter report, the `rocprof` CSV-row equivalent.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterReport {
    /// `(counter name, value)` pairs in canonical order.
    pub rows: Vec<(String, u64)>,
}

impl CounterReport {
    /// Builds a report with every published counter.
    pub fn from_counters(counters: &HwCounters) -> Self {
        let rows = counters
            .iter()
            .map(|(name, value)| (name.to_owned(), value))
            .collect();
        CounterReport { rows }
    }

    /// Value of one counter in the report.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the report as aligned text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let width = self.rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.rows {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::{cdna2_catalog, KernelDesc, SlotOp, WaveProgram};
    use mc_sim::COUNTER_NAMES;
    use mc_types::DType;

    fn mixed_kernel(iters: u64) -> KernelDesc {
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        KernelDesc {
            workgroups: 8,
            waves_per_workgroup: 1,
            ..KernelDesc::new("k", WaveProgram::looped(vec![SlotOp::Mfma(i)], iters))
        }
    }

    #[test]
    fn session_captures_only_the_wrapped_launch() {
        let mut gpu = Gpu::mi250x();
        gpu.launch(0, &mixed_kernel(50)).unwrap(); // pre-existing activity

        let session = ProfilerSession::begin(&gpu, 0).unwrap();
        gpu.launch(0, &mixed_kernel(100)).unwrap();
        let delta = session.end(&gpu).unwrap();
        assert_eq!(delta.mfma_mops_f16, 8 * 100 * 8192 / 512);
        assert_eq!(delta.waves_launched, 8);
    }

    #[test]
    fn sessions_are_per_die() {
        let mut gpu = Gpu::mi250x();
        let session = ProfilerSession::begin(&gpu, 1).unwrap();
        gpu.launch(0, &mixed_kernel(100)).unwrap(); // other die
        let delta = session.end(&gpu).unwrap();
        assert_eq!(delta, HwCounters::default());
    }

    #[test]
    fn report_contains_all_published_counters() {
        let mut gpu = Gpu::mi250x();
        gpu.launch(0, &mixed_kernel(4)).unwrap();
        let report = CounterReport::from_counters(&gpu.counters(0).unwrap());
        assert_eq!(report.rows.len(), COUNTER_NAMES.len());
        assert!(report.get("SQ_INSTS_VALU_MFMA_MOPS_F16").unwrap() > 0);
        assert_eq!(report.get("SQ_INSTS_VALU_MFMA_MOPS_F64"), Some(0));
        assert!(report.get("NOPE").is_none());
        let text = report.render();
        assert!(text.contains("SQ_WAVES"));
    }

    #[test]
    fn end_metrics_registers_the_delta() {
        let mut gpu = Gpu::mi250x();
        let session = ProfilerSession::begin(&gpu, 0).unwrap();
        gpu.launch(0, &mixed_kernel(100)).unwrap();
        let mut reg = mc_trace::MetricsRegistry::new();
        let delta = session.end_metrics(&gpu, &mut reg).unwrap();
        assert_eq!(
            reg.value("counters.SQ_INSTS_VALU_MFMA_MOPS_F16"),
            Some(delta.mfma_mops_f16 as f64)
        );
        assert_eq!(reg.value("counters.SQ_WAVES"), Some(8.0));
    }

    #[test]
    fn end_derived_metrics_matches_eq1_over_the_delta() {
        let mut gpu = Gpu::mi250x();
        let session = ProfilerSession::begin(&gpu, 0).unwrap();
        gpu.launch(0, &mixed_kernel(100)).unwrap();
        let mut reg = mc_trace::MetricsRegistry::new();
        let delta = session.end_derived_metrics(&gpu, &mut reg).unwrap();
        let derived = mc_model::derived_total_flops(&delta);
        assert_eq!(
            reg.value("profiler.eq1.total_flops"),
            Some(derived.total() as f64)
        );
        // A pure-MFMA loop: every FLOP came from the Matrix Cores.
        assert_eq!(reg.value("profiler.eq1.matrix_ratio"), Some(1.0));
        assert_eq!(
            reg.value("profiler.eq1.matrix_flops"),
            Some((8 * 100 * 8192) as f64)
        );
    }

    #[test]
    fn invalid_die_errors() {
        let gpu = Gpu::mi250x();
        assert!(ProfilerSession::begin(&gpu, 9).is_err());
    }
}
