//! GEMV: matrix-vector multiply, `y ← α·A·x + β·y` — the BLAS-2
//! counter-example to the paper's story.
//!
//! Matrix *Cores* need matrix×matrix structure; a matrix-vector product
//! has arithmetic intensity of ~2 FLOPs per matrix element read (far
//! left of every ridge point in the roofline), so rocBLAS runs GEMV on
//! the SIMD units and no datatype choice changes the outcome: the
//! kernel is DRAM-bandwidth bound. Having this routine in the library
//! makes the boundary of the paper's claims concrete — "more than 92 %
//! of peak" is a GEMM statement, not a BLAS statement.

use mc_isa::{KernelDesc, MemHints, SlotOp, ValuOp, ValuOpKind, WaveProgram};
use mc_types::Real;

use crate::handle::BlasHandle;
use crate::types::{BlasError, GemmOp};
use mc_sim::PackageResult;

/// A GEMV problem: `y (m) ← α · A (m×n) · x (n) + β · y`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GemvDesc {
    /// Element datatypes (reusing the GEMM op descriptors).
    pub op: GemmOp,
    /// Rows of A.
    pub m: usize,
    /// Columns of A.
    pub n: usize,
    /// Scalar on `A·x`.
    pub alpha: f64,
    /// Scalar on `y`.
    pub beta: f64,
}

impl GemvDesc {
    /// Useful FLOPs: `2mn` MACs plus `3m` scaling.
    pub fn useful_flops(&self) -> u64 {
        2 * (self.m as u64) * (self.n as u64) + 3 * self.m as u64
    }
}

/// Performance of a GEMV launch.
#[derive(Clone, Debug)]
pub struct GemvPerf {
    /// Achieved TFLOPS.
    pub tflops: f64,
    /// Kernel time in seconds.
    pub time_s: f64,
    /// Effective bandwidth consumed, GB/s.
    pub bandwidth_gbs: f64,
    /// Full launch result.
    pub package: PackageResult,
}

/// Functional GEMV in the routine's compute type.
pub fn gemv_functional<T: Real, CT: Real>(
    desc: &GemvDesc,
    a: &[T],
    x: &[T],
    y: &mut [T],
) -> Result<(), BlasError> {
    let (m, n) = (desc.m, desc.n);
    let checks = [("A", m * n, a.len()), ("x", n, x.len()), ("y", m, y.len())];
    for (operand, required, provided) in checks {
        if provided < required {
            return Err(BlasError::BufferTooSmall {
                operand,
                required,
                provided,
            });
        }
    }
    // A GEMV is an m×1×n GEMM with x as the single column of B and y as
    // both C and D; the per-row ascending-j chain and the
    // compute-rounded epilogue match the shared backends' semantics
    // exactly, so this routes through the crossover dispatch (naive for
    // small problems, row-panel-parallel blocked for large m).
    let params = mc_compute::GemmParams::new(m, 1, n)
        .with_scaling(desc.alpha, desc.beta)
        .with_epilogue(mc_compute::Epilogue::ComputeRounded);
    let y_in = y[..m].to_vec();
    let backend = crate::select::host_gemm_backend();
    mc_compute::MatMul::gemm::<T, T, CT>(&backend, &params, a, x, &y_in, y).map_err(|e| match e {
        mc_compute::ComputeError::BufferTooSmall {
            operand,
            required,
            provided,
        } => BlasError::BufferTooSmall {
            operand,
            required,
            provided,
        },
    })
}

/// Builds the streaming GEMV kernel: each wavefront owns 64 rows and
/// streams A once from DRAM; the whole of `x` is L2-resident.
pub fn plan_gemv(desc: &GemvDesc) -> KernelDesc {
    let elem = desc.op.type_ab().size_bytes();
    let compute = desc.op.compute_type();
    let waves = desc.m.div_ceil(64) as u64;
    // Per k-iteration each lane processes 16 elements of its row.
    let chunk = 16usize;
    let iters = desc.n.div_ceil(chunk) as u64;
    let body = vec![
        SlotOp::global_load((chunk * elem) as u32),
        // The FMA consumes the chunk just loaded; retire it first.
        SlotOp::Waitcnt(mc_isa::WaitSpec::vm(0)),
        SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, compute)),
        SlotOp::Scalar,
    ];
    let program = WaveProgram {
        prologue: vec![SlotOp::Scalar],
        body,
        body_iterations: iters,
        epilogue: vec![
            SlotOp::Valu(ValuOp::new(ValuOpKind::Mul, compute)),
            SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, compute)),
            SlotOp::global_store(desc.op.type_cd().size_bytes() as u32),
        ],
    };
    KernelDesc {
        workgroups: waves.div_ceil(4),
        waves_per_workgroup: 4,
        mem_hints: MemHints {
            // A is read exactly once; x/y are noise next to it.
            hbm_bytes: (desc.m * desc.n * elem) as u64,
            working_set_bytes: (desc.m * desc.n * elem) as u64,
            ..MemHints::default()
        },
        ..KernelDesc::new(format!("gemv_{}", desc.op), program)
    }
}

impl BlasHandle {
    /// Simulates a GEMV launch and reports throughput and bandwidth.
    pub fn gemv_timed(&mut self, desc: &GemvDesc) -> Result<GemvPerf, BlasError> {
        let kernel = plan_gemv(desc);
        let die = self.die();
        let package = self
            .gpu_mut()
            .launch(die, &kernel)
            .map_err(|e| BlasError::Launch(e.to_string()))?;
        let time_s = package.time_s;
        Ok(GemvPerf {
            tflops: desc.useful_flops() as f64 / time_s / 1e12,
            time_s,
            bandwidth_gbs: kernel.mem_hints.hbm_bytes as f64 / time_s / 1e9,
            package,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_gemv_matches_reference() {
        let desc = GemvDesc {
            op: GemmOp::Sgemm,
            m: 37,
            n: 53,
            alpha: 0.5,
            beta: 2.0,
        };
        let a: Vec<f32> = (0..37 * 53).map(|i| ((i % 9) as f32) - 4.0).collect();
        let x: Vec<f32> = (0..53).map(|i| ((i % 5) as f32) - 2.0).collect();
        let mut y: Vec<f32> = (0..37).map(|i| i as f32).collect();
        let y0 = y.clone();
        gemv_functional::<f32, f32>(&desc, &a, &x, &mut y).unwrap();
        for i in 0..37 {
            let mut acc = 0.0f64;
            for j in 0..53 {
                acc += f64::from(a[i * 53 + j]) * f64::from(x[j]);
            }
            let expect = 0.5 * acc + 2.0 * f64::from(y0[i]);
            assert_eq!(f64::from(y[i]), expect, "row {i}");
        }
    }

    #[test]
    fn gemv_is_bandwidth_bound_and_never_touches_matrix_cores() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let desc = GemvDesc {
            op: GemmOp::Sgemm,
            m: 16384,
            n: 16384,
            alpha: 1.0,
            beta: 0.0,
        };
        let perf = h.gemv_timed(&desc).unwrap();
        // 0.5 FLOP/B against a 1.4 TB/s stream: well under a TFLOP.
        assert!(perf.tflops < 1.0, "{}", perf.tflops);
        // Consuming most of the effective DRAM bandwidth...
        assert!(perf.bandwidth_gbs > 1000.0, "{}", perf.bandwidth_gbs);
        // ...with zero Matrix Core activity.
        assert_eq!(perf.package.kernels[0].counters.mfma_mops_f32, 0);
        assert!(perf.package.kernels[0].exec.compute_bound_fraction < 0.3);
    }

    #[test]
    fn datatype_choice_barely_matters_for_blas2() {
        // The paper's 4x/8x precision levers are GEMM-only: for GEMV the
        // f16 variant is at most ~2x (bytes), never the compute ratio.
        let mut h = BlasHandle::new_mi250x_gcd();
        let s = h
            .gemv_timed(&GemvDesc {
                op: GemmOp::Sgemm,
                m: 16384,
                n: 16384,
                alpha: 1.0,
                beta: 0.0,
            })
            .unwrap();
        let hslf = h
            .gemv_timed(&GemvDesc {
                op: GemmOp::Hss,
                m: 16384,
                n: 16384,
                alpha: 1.0,
                beta: 0.0,
            })
            .unwrap();
        let ratio = hslf.tflops / s.tflops;
        assert!(ratio < 2.5, "{ratio}");
        assert!(ratio > 1.2, "{ratio}");
    }

    #[test]
    fn buffer_checks() {
        let desc = GemvDesc {
            op: GemmOp::Sgemm,
            m: 8,
            n: 8,
            alpha: 1.0,
            beta: 0.0,
        };
        let a = vec![0.0f32; 64];
        let x = vec![0.0f32; 4];
        let mut y = vec![0.0f32; 8];
        assert!(matches!(
            gemv_functional::<f32, f32>(&desc, &a, &x, &mut y),
            Err(BlasError::BufferTooSmall { operand: "x", .. })
        ));
    }
}
