//! The persisted plan DB: searched winners, cached across processes.
//!
//! A plan search costs dozens of kernel builds and a handful of engine
//! dry runs; the winning strategy is a pure function of
//! `(device, op, m, n, k, α, β)`. The DB persists that mapping as JSON
//! so sweeps and solver replays skip the search entirely on the second
//! process — rocBLAS ships the same idea as Tensile's solution
//! libraries. Point [`PLAN_DB_ENV`] (`MC_PLAN_DB`) at a file path and
//! every searching handle loads it on construction and appends winners
//! as it finds them ([`crate::handle::BlasHandle::set_plan_search`]).
//!
//! Entries store the *strategy*, not the compiled kernel: on lookup the
//! instruction is re-resolved against the live catalog and the plan is
//! rebuilt and re-linted, so a DB written by an older build can never
//! smuggle an unverified kernel into a launch. Unresolvable entries
//! (unknown mnemonic, shape drift) are ignored; a file whose
//! `schema_version` does not match [`PLAN_DB_SCHEMA_VERSION`] is
//! rejected outright as [`BlasError::PlanDb`].

use serde::{Deserialize, Serialize};

use mc_isa::{cdna2_catalog, Buffering};

use crate::planner::{SimdReason, Strategy};
use crate::types::{BlasError, GemmDesc};

/// Schema version of the persisted file; bump on layout changes.
/// Version 2 added [`PlanDbEntry::predicted_time_s`] (the Eq. 2
/// analytic prediction recorded next to the engine time, so the
/// `insight` gate can measure model drift from persisted winners).
pub const PLAN_DB_SCHEMA_VERSION: u32 = 2;

/// Environment variable naming the plan-DB file path.
pub const PLAN_DB_ENV: &str = "MC_PLAN_DB";

/// A strategy in persistable form: the MFMA instruction is stored by
/// mnemonic and re-resolved against the catalog on load.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StrategyRecord {
    /// `"matrix-core"` or `"simd"`.
    pub kind: String,
    /// MFMA mnemonic (empty for SIMD strategies).
    pub instr: String,
    /// Macro-tile rows.
    pub mt_m: usize,
    /// Macro-tile columns.
    pub mt_n: usize,
    /// Wave-tile rows.
    pub wt_m: usize,
    /// Wave-tile columns.
    pub wt_n: usize,
    /// K advanced per inner-loop iteration.
    pub k_step: usize,
    /// Whether global loads are double-buffered.
    pub double_buffered: bool,
}

impl StrategyRecord {
    /// Serializes a live strategy.
    pub fn from_strategy(strategy: &Strategy) -> Self {
        match strategy {
            Strategy::MatrixCore {
                instr,
                macro_tile,
                wave_tile,
                k_step,
                buffering,
            } => StrategyRecord {
                kind: "matrix-core".into(),
                instr: instr.mnemonic().to_string(),
                mt_m: macro_tile.0,
                mt_n: macro_tile.1,
                wt_m: wave_tile.0,
                wt_n: wave_tile.1,
                k_step: *k_step,
                double_buffered: *buffering == Buffering::Double,
            },
            Strategy::SimdOnly { .. } => StrategyRecord {
                kind: "simd".into(),
                instr: String::new(),
                mt_m: 0,
                mt_n: 0,
                wt_m: 0,
                wt_n: 0,
                k_step: 0,
                double_buffered: true,
            },
        }
    }

    /// Re-resolves the record against the live catalog. `None` when the
    /// record is stale (unknown mnemonic or kind) — callers fall back
    /// to a fresh search.
    pub fn resolve(&self) -> Option<Strategy> {
        match self.kind.as_str() {
            "simd" => Some(Strategy::SimdOnly {
                reason: SimdReason::Scored,
            }),
            "matrix-core" => {
                let catalog = cdna2_catalog();
                let instr = *catalog
                    .instructions()
                    .iter()
                    .find(|i| i.mnemonic() == self.instr)?;
                Some(Strategy::MatrixCore {
                    instr,
                    macro_tile: (self.mt_m, self.mt_n),
                    wave_tile: (self.wt_m, self.wt_n),
                    k_step: self.k_step,
                    buffering: if self.double_buffered {
                        Buffering::Double
                    } else {
                        Buffering::Single
                    },
                })
            }
            _ => None,
        }
    }
}

/// One persisted winner, keyed by device and full problem descriptor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanDbEntry {
    /// Device name the search ran against (plans are calibrated to one
    /// die's catalog, clocks, and memory system).
    pub device: String,
    /// Routine (`GemmOp` display form, e.g. `"sgemm"`).
    pub op: String,
    /// Problem rows.
    pub m: usize,
    /// Problem columns.
    pub n: usize,
    /// Problem inner dimension.
    pub k: usize,
    /// Bit pattern of α (exact keying; α participates in strategy
    /// selection through the scaling epilogue).
    pub alpha_bits: u64,
    /// Bit pattern of β.
    pub beta_bits: u64,
    /// The winning strategy.
    pub strategy: StrategyRecord,
    /// The winner's engine-modeled time at search, in seconds.
    pub searched_time_s: f64,
    /// The winner's Eq. 2 analytic prediction at search, in seconds.
    /// `predicted / searched − 1` is the persisted model drift.
    pub predicted_time_s: f64,
}

impl PlanDbEntry {
    /// Relative model drift of the analytic prediction against the
    /// engine time: `(predicted − searched) / searched`. Positive means
    /// the analytic model was pessimistic, negative optimistic.
    pub fn drift(&self) -> f64 {
        if self.searched_time_s > 0.0 {
            (self.predicted_time_s - self.searched_time_s) / self.searched_time_s
        } else {
            0.0
        }
    }
}

/// The in-memory plan DB (see module docs).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanDb {
    /// Persisted schema version.
    pub schema_version: u32,
    /// The winners, in insertion order.
    pub entries: Vec<PlanDbEntry>,
}

impl PlanDb {
    /// An empty DB at the current schema version.
    pub fn new() -> Self {
        PlanDb {
            schema_version: PLAN_DB_SCHEMA_VERSION,
            entries: Vec::new(),
        }
    }

    /// Number of cached winners.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the DB holds no winners.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses a DB from JSON, rejecting incompatible schema versions.
    /// The version gate runs on the raw JSON tree *before* the typed
    /// decode, so an old-layout file reports its schema mismatch rather
    /// than a confusing missing-field error.
    pub fn from_json(json: &str) -> Result<Self, BlasError> {
        let value: serde::Value = serde_json::from_str(json)
            .map_err(|e| BlasError::PlanDb(format!("unparseable plan DB: {e}")))?;
        let version = value.get("schema_version").and_then(|v| v.as_u64());
        if version != Some(u64::from(PLAN_DB_SCHEMA_VERSION)) {
            return Err(BlasError::PlanDb(format!(
                "schema version {} (this build reads {PLAN_DB_SCHEMA_VERSION})",
                version.map_or_else(|| "missing".to_string(), |v| v.to_string())
            )));
        }
        serde_json::from_value(value)
            .map_err(|e| BlasError::PlanDb(format!("unparseable plan DB: {e}")))
    }

    /// Serializes the DB to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan DB serializes")
    }

    /// Loads a DB from disk. A missing file yields an empty DB (first
    /// run); an unreadable or incompatible file is an error.
    pub fn load(path: &std::path::Path) -> Result<Self, BlasError> {
        match std::fs::read_to_string(path) {
            Ok(json) => PlanDb::from_json(&json),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(PlanDb::new()),
            Err(e) => Err(BlasError::PlanDb(format!("{}: {e}", path.display()))),
        }
    }

    /// Persists the DB to disk.
    pub fn save(&self, path: &std::path::Path) -> Result<(), BlasError> {
        std::fs::write(path, self.to_json())
            .map_err(|e| BlasError::PlanDb(format!("{}: {e}", path.display())))
    }

    /// The path named by [`PLAN_DB_ENV`], if set and non-empty.
    pub fn env_path() -> Option<std::path::PathBuf> {
        std::env::var(PLAN_DB_ENV)
            .ok()
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from)
    }

    /// Looks up the cached winner for a problem on a device, resolving
    /// it against the live catalog. Stale entries resolve to `None`.
    pub fn lookup(&self, device: &str, desc: &GemmDesc) -> Option<Strategy> {
        let op = format!("{}", desc.op);
        self.entries
            .iter()
            .find(|e| {
                e.device == device
                    && e.op == op
                    && e.m == desc.m
                    && e.n == desc.n
                    && e.k == desc.k
                    && e.alpha_bits == desc.alpha.to_bits()
                    && e.beta_bits == desc.beta.to_bits()
            })
            .and_then(|e| e.strategy.resolve())
    }

    /// Inserts (or replaces) the winner for a problem on a device,
    /// recording both the engine time and the analytic prediction.
    pub fn insert(
        &mut self,
        device: &str,
        desc: &GemmDesc,
        strategy: &Strategy,
        time_s: f64,
        predicted_s: f64,
    ) {
        let op = format!("{}", desc.op);
        self.entries.retain(|e| {
            !(e.device == device
                && e.op == op
                && e.m == desc.m
                && e.n == desc.n
                && e.k == desc.k
                && e.alpha_bits == desc.alpha.to_bits()
                && e.beta_bits == desc.beta.to_bits())
        });
        self.entries.push(PlanDbEntry {
            device: device.to_string(),
            op,
            m: desc.m,
            n: desc.n,
            k: desc.k,
            alpha_bits: desc.alpha.to_bits(),
            beta_bits: desc.beta.to_bits(),
            strategy: StrategyRecord::from_strategy(strategy),
            searched_time_s: time_s,
            predicted_time_s: predicted_s,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::select_strategy;
    use crate::types::GemmOp;

    #[test]
    fn strategy_record_round_trips_through_the_catalog() {
        for desc in [
            GemmDesc::square(GemmOp::Sgemm, 1024),
            GemmDesc::square(GemmOp::Dgemm, 4096),
            GemmDesc::square(GemmOp::Hhs, 2048),
            GemmDesc::square(GemmOp::Hgemm, 256),
        ] {
            let s = select_strategy(&desc);
            let resolved = StrategyRecord::from_strategy(&s).resolve().unwrap();
            match (s, resolved) {
                (
                    Strategy::MatrixCore {
                        instr: a,
                        macro_tile: amt,
                        wave_tile: awt,
                        k_step: ak,
                        buffering: ab,
                    },
                    Strategy::MatrixCore {
                        instr: b,
                        macro_tile: bmt,
                        wave_tile: bwt,
                        k_step: bk,
                        buffering: bb,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!((amt, awt, ak, ab), (bmt, bwt, bk, bb));
                }
                (Strategy::SimdOnly { .. }, Strategy::SimdOnly { .. }) => {}
                (a, b) => panic!("strategy kind changed: {a:?} -> {b:?}"),
            }
        }
    }

    #[test]
    fn db_round_trips_through_json() {
        let mut db = PlanDb::new();
        let desc = GemmDesc::square(GemmOp::Sgemm, 512);
        db.insert("gcd0", &desc, &select_strategy(&desc), 1.25e-4, 1.3e-4);
        let back = PlanDb::from_json(&db.to_json()).unwrap();
        assert_eq!(db, back);
        assert_eq!(
            back.lookup("gcd0", &desc),
            Some(select_strategy(&desc)),
            "resolved strategy matches the inserted one"
        );
        // Different device or shape: miss.
        assert!(back.lookup("gcd1", &desc).is_none());
        assert!(back
            .lookup("gcd0", &GemmDesc::square(GemmOp::Sgemm, 513))
            .is_none());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut db = PlanDb::new();
        db.schema_version = PLAN_DB_SCHEMA_VERSION + 1;
        let err = PlanDb::from_json(&db.to_json()).unwrap_err();
        assert!(matches!(err, BlasError::PlanDb(_)), "{err}");
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn stale_entries_resolve_to_none() {
        let rec = StrategyRecord {
            kind: "matrix-core".into(),
            instr: "v_mfma_not_a_real_instruction".into(),
            mt_m: 128,
            mt_n: 128,
            wt_m: 64,
            wt_n: 64,
            k_step: 4,
            double_buffered: true,
        };
        assert!(rec.resolve().is_none());
        let rec = StrategyRecord {
            kind: "warp-specialized".into(),
            ..rec
        };
        assert!(rec.resolve().is_none());
    }

    #[test]
    fn insert_replaces_existing_keys() {
        let mut db = PlanDb::new();
        let desc = GemmDesc::square(GemmOp::Hhs, 64);
        let s = select_strategy(&desc);
        db.insert("gcd0", &desc, &s, 2.0e-5, 2.5e-5);
        db.insert("gcd0", &desc, &s, 1.0e-5, 1.2e-5);
        assert_eq!(db.len(), 1);
        assert_eq!(db.entries[0].searched_time_s, 1.0e-5);
        assert_eq!(db.entries[0].predicted_time_s, 1.2e-5);
        assert!((db.entries[0].drift() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn version_one_files_are_rejected_not_misread() {
        // A v1 file lacks predicted_time_s; the schema gate must reject
        // it before deserialization can trip over the missing field.
        let json = r#"{"schema_version": 1, "entries": []}"#;
        let err = PlanDb::from_json(json).unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn missing_file_loads_empty() {
        let db = PlanDb::load(std::path::Path::new("/nonexistent/plan-db.json")).unwrap();
        assert!(db.is_empty());
    }
}
