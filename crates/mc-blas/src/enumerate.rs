//! Candidate enumeration for the scored plan search.
//!
//! The static planner commits to one tiling per datatype
//! ([`crate::planner::select_strategy`]); the search instead spans the
//! whole space rocBLAS's kernel library covers — every catalogued
//! 16×16 MFMA for the routine's type pair, macro-tile edges from 64 to
//! 256, wave tiles from 16×16 to 64×64, and both global-load buffering
//! modes — and lets the scorer ([`crate::score`]) decide. The SIMD-only
//! strategy is always a candidate too: that is what lets the paper's
//! §VII policy rules (HGEMM → SIMD, tiny mixed problems → SIMD) fall
//! out of the ranking instead of being hard-coded.
//!
//! Enumeration is pure and deterministic: the same descriptor always
//! yields the same candidate list in the same order, which (with the
//! scorer's stable ranking) makes the whole search reproducible.

use mc_isa::{cdna2_catalog, Buffering};

use crate::planner::{round_up, select_strategy, SimdReason, Strategy};
use crate::types::GemmDesc;

/// Macro-tile edges the search considers.
pub const MACRO_TILES: [usize; 3] = [64, 128, 256];

/// Wave-tile edges the search considers (wavefronts own up to 64×64).
pub const WAVE_TILES: [usize; 3] = [16, 32, 64];

/// Workgroups beyond this many wavefronts cannot schedule on a CDNA2
/// CU's four SIMDs without starving occupancy; candidates past it are
/// pruned before they are built.
pub const MAX_WAVES_PER_WORKGROUP: usize = 16;

/// Enumerates every strategy the search will score for a problem.
///
/// The list always contains (1) the static planner's pick — so the
/// search can never do worse than the fallback it replaces — and
/// (2) the SIMD-only strategy. Matrix Core candidates are emitted for
/// each catalogued non-legacy single-block 16×16 instruction matching
/// the routine's MFMA type pair, crossed with [`MACRO_TILES`],
/// [`WAVE_TILES`] (clamped to the problem exactly as the static
/// planner clamps), and both [`Buffering`] modes. Duplicates from
/// clamping are removed; order is deterministic.
pub fn enumerate_candidates(desc: &GemmDesc) -> Vec<Strategy> {
    let mut out = vec![
        select_strategy(desc),
        Strategy::SimdOnly {
            reason: SimdReason::Scored,
        },
    ];

    let catalog = cdna2_catalog();
    let (mfma_cd, mfma_ab) = desc.op.mfma_pair();
    let instrs: Vec<_> = catalog
        .instructions()
        .iter()
        .filter(|i| {
            !i.legacy
                && i.cd == mfma_cd
                && i.ab == mfma_ab
                && i.shape.m == 16
                && i.shape.n == 16
                && i.shape.blocks == 1
        })
        .collect();

    for &instr in &instrs {
        for buffering in [Buffering::Double, Buffering::Single] {
            for mt in MACRO_TILES {
                for wt_m in WAVE_TILES {
                    for wt_n in WAVE_TILES {
                        if wt_m > mt || wt_n > mt {
                            continue;
                        }
                        // Clamp to the problem like the static planner:
                        // no tile larger than the (16-padded) problem.
                        let wt_m = wt_m.min(round_up(desc.m, 16));
                        let wt_n = wt_n.min(round_up(desc.n, 16));
                        let mt_m = mt.min(round_up(desc.m, wt_m));
                        let mt_n = mt.min(round_up(desc.n, wt_n));
                        if mt_m % wt_m != 0 || mt_n % wt_n != 0 {
                            continue;
                        }
                        if (mt_m / wt_m) * (mt_n / wt_n) > MAX_WAVES_PER_WORKGROUP {
                            continue;
                        }
                        let candidate = Strategy::MatrixCore {
                            instr: *instr,
                            macro_tile: (mt_m, mt_n),
                            wave_tile: (wt_m, wt_n),
                            k_step: instr.shape.k as usize,
                            buffering,
                        };
                        if !out.contains(&candidate) {
                            out.push(candidate);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GemmOp;

    #[test]
    fn static_pick_and_simd_always_enumerate_first() {
        let desc = GemmDesc::square(GemmOp::Sgemm, 1024);
        let c = enumerate_candidates(&desc);
        assert_eq!(c[0], select_strategy(&desc));
        assert_eq!(
            c[1],
            Strategy::SimdOnly {
                reason: SimdReason::Scored
            }
        );
    }

    #[test]
    fn hgemm_has_no_matrix_core_candidates() {
        // No FP16←FP16 MFMA exists, so the search space is SIMD-only —
        // the §VII rule is structural, not a scored coincidence.
        let c = enumerate_candidates(&GemmDesc::square(GemmOp::Hgemm, 4096));
        assert!(c.iter().all(|s| !s.uses_matrix_cores()), "{c:?}");
    }

    #[test]
    fn large_problems_span_tiles_and_buffering() {
        let c = enumerate_candidates(&GemmDesc::square(GemmOp::Sgemm, 4096));
        let mc: Vec<_> = c.iter().filter(|s| s.uses_matrix_cores()).collect();
        assert!(mc.len() > 10, "{}", mc.len());
        let has = |want: Buffering| {
            mc.iter()
                .any(|s| matches!(s, Strategy::MatrixCore { buffering, .. } if *buffering == want))
        };
        assert!(has(Buffering::Double) && has(Buffering::Single));
        for mt in MACRO_TILES {
            assert!(
                mc.iter().any(
                    |s| matches!(s, Strategy::MatrixCore { macro_tile, .. } if macro_tile.0 == mt)
                ),
                "macro tile {mt} missing"
            );
        }
    }

    #[test]
    fn enumeration_is_deterministic_and_deduplicated() {
        let desc = GemmDesc::square(GemmOp::Hhs, 2048);
        let a = enumerate_candidates(&desc);
        let b = enumerate_candidates(&desc);
        assert_eq!(a, b);
        for (i, s) in a.iter().enumerate() {
            assert!(!a[i + 1..].contains(s), "duplicate candidate {s:?}");
        }
    }

    #[test]
    fn tiny_problems_clamp_every_tile() {
        let c = enumerate_candidates(&GemmDesc::square(GemmOp::Sgemm, 16));
        for s in &c {
            if let Strategy::MatrixCore {
                macro_tile,
                wave_tile,
                ..
            } = s
            {
                assert_eq!(*macro_tile, (16, 16));
                assert_eq!(*wave_tile, (16, 16));
            }
        }
    }
}
