//! The scored plan search: enumerate → build → lint → rank → dry-run.
//!
//! [`select_plan`] is the search's entry point. It runs the pipeline
//!
//! 1. [`crate::enumerate::enumerate_candidates`] — the candidate
//!    strategies, always including the static planner's pick and the
//!    SIMD-only executor;
//! 2. [`crate::planner::build_plan`] — each candidate compiles to a
//!    kernel and passes the static verifier; candidates with
//!    error-severity lint findings are discarded (counted in
//!    [`SearchOutcome::lint_rejected`]);
//! 3. [`crate::score::analytic_time_s`] — the Eq. 2 analytic model
//!    ranks the survivors;
//! 4. [`crate::score::dry_run_time_s`] — the top [`DRY_RUN_TOP_K`]
//!    finalists (plus the static pick, always) run through the pure
//!    simulator engine, and the fastest engine time wins.
//!
//! Because the static plan is always a dry-run finalist and the winner
//! is the engine-time argmin, the searched plan is **never slower than
//! the static plan under the engine's own model** — the invariant the
//! `autotune` experiment asserts across the paper's Fig. 6/7 sweep.
//! If every candidate fails lint (impossible today, but the search must
//! not brick the library if the candidate space grows), the static
//! planner's lint-gated plan is returned as the fallback.
//!
//! Ties break deterministically: candidates keep their enumeration
//! order through a stable sort, so identical descriptors always select
//! identical plans (the plan-DB round-trip relies on this).

use mc_isa::specs::DieSpec;
use mc_sim::SimConfig;

use crate::enumerate::enumerate_candidates;
use crate::planner::{build_plan, plan_gemm, GemmPlan};
use crate::score::{analytic_time_s, dry_run_time_s};
use crate::types::{BlasError, GemmDesc};

/// How many analytically-ranked finalists get a simulator dry run.
pub const DRY_RUN_TOP_K: usize = 4;

/// One dry-run finalist's two scores, kept for model-drift analysis:
/// the Eq. 2 analytic prediction that ranked it and the engine time
/// that judged it. `mc-insight` compares the two orderings to flag
/// ranking inversions — pairs the analytic model would have gotten
/// wrong had the dry run not corrected it.
#[derive(Clone, Debug)]
pub struct FinalistScore {
    /// Human-readable strategy label (MFMA mnemonic + macro tile, or
    /// `"simd"`).
    pub label: String,
    /// Eq. 2 analytic prediction, in seconds.
    pub analytic_time_s: f64,
    /// Engine dry-run time (plus handoff penalty), in seconds.
    pub engine_time_s: f64,
    /// Whether this finalist is the static planner's pick.
    pub is_static: bool,
}

/// A short display form of a strategy for finalist records and spans.
pub fn strategy_label(strategy: &crate::planner::Strategy) -> String {
    use crate::planner::Strategy;
    match strategy {
        Strategy::MatrixCore {
            instr, macro_tile, ..
        } => format!("{}/{}x{}", instr.mnemonic(), macro_tile.0, macro_tile.1),
        Strategy::SimdOnly { .. } => "simd".to_string(),
    }
}

/// The result of a plan search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The winning plan.
    pub plan: GemmPlan,
    /// The winner's engine-modeled time (dry run + handoff penalty).
    pub searched_time_s: f64,
    /// The winner's Eq. 2 analytic prediction — what the closed-form
    /// model *said* the winner would cost. The gap between this and
    /// [`SearchOutcome::searched_time_s`] is the model drift the
    /// `insight` gate bounds.
    pub analytic_time_s: f64,
    /// The static planner's plan under the same engine model — the
    /// baseline the search is measured against.
    pub static_time_s: f64,
    /// Every dry-run finalist's (analytic, engine) score pair, in
    /// analytic-rank order (static pick last unless it ranked top-K).
    pub finalists: Vec<FinalistScore>,
    /// Candidates enumerated before building.
    pub enumerated: usize,
    /// Candidates rejected by the static verifier.
    pub lint_rejected: usize,
    /// Candidates rejected by the dataflow verifier (LDS races,
    /// insufficient waitcnts, register working-set overflows).
    pub flow_rejected: usize,
}

impl SearchOutcome {
    /// Engine-modeled speedup of the searched plan over the static one
    /// (≥ 1.0 by construction: the static plan is always a finalist).
    pub fn speedup(&self) -> f64 {
        self.static_time_s / self.searched_time_s
    }

    /// Finalist pairs whose analytic ordering disagrees with the
    /// engine's: the analytic model strictly preferred one plan while
    /// the dry run strictly preferred the other. Each inversion is a
    /// ranking mistake the autotuner would have made without tier 2.
    pub fn ranking_inversions(&self) -> Vec<(usize, usize)> {
        let mut inversions = Vec::new();
        for i in 0..self.finalists.len() {
            for j in (i + 1)..self.finalists.len() {
                let (a, b) = (&self.finalists[i], &self.finalists[j]);
                let analytic = a.analytic_time_s.total_cmp(&b.analytic_time_s);
                let engine = a.engine_time_s.total_cmp(&b.engine_time_s);
                if analytic != std::cmp::Ordering::Equal
                    && engine != std::cmp::Ordering::Equal
                    && analytic != engine
                {
                    inversions.push((i, j));
                }
            }
        }
        inversions
    }
}

/// Searches the candidate space for the fastest plan (see module docs).
pub fn select_plan(
    die: &DieSpec,
    cfg: &SimConfig,
    desc: &GemmDesc,
) -> Result<SearchOutcome, BlasError> {
    desc.validate()?;
    let candidates = enumerate_candidates(desc);
    let enumerated = candidates.len();

    // Build + lint-gate every candidate; score survivors analytically.
    // Index 0 is the static planner's pick (enumeration guarantees it).
    let mut built: Vec<(usize, GemmPlan, f64)> = Vec::new();
    let mut lint_rejected = 0usize;
    let mut flow_rejected = 0usize;
    for (idx, strategy) in candidates.into_iter().enumerate() {
        match build_plan(die, desc, strategy) {
            Ok(plan) => {
                let score = analytic_time_s(die, cfg, &plan);
                built.push((idx, plan, score));
            }
            Err(BlasError::Lint(_)) => lint_rejected += 1,
            Err(BlasError::Flow(_)) => flow_rejected += 1,
            Err(other) => return Err(other),
        }
    }
    let Some(static_pos) = built.iter().position(|(idx, _, _)| *idx == 0) else {
        // Nothing survived lint (including the static pick, which today
        // always does): fall back to the static planner wholesale.
        let plan = plan_gemm(die, desc)?;
        let analytic = analytic_time_s(die, cfg, &plan);
        let t = dry_run_time_s(die, cfg, &plan)?;
        let finalists = vec![FinalistScore {
            label: strategy_label(&plan.strategy),
            analytic_time_s: analytic,
            engine_time_s: t,
            is_static: true,
        }];
        return Ok(SearchOutcome {
            plan,
            searched_time_s: t,
            analytic_time_s: analytic,
            static_time_s: t,
            finalists,
            enumerated,
            lint_rejected,
            flow_rejected,
        });
    };

    // Rank by analytic score (stable: enumeration order breaks ties)
    // and dry-run the top K plus the static plan.
    let static_entry = built.remove(static_pos);
    built.sort_by(|a, b| a.2.total_cmp(&b.2));
    built.truncate(DRY_RUN_TOP_K);
    built.push(static_entry);

    let mut static_time_s = f64::INFINITY;
    let mut finalists = Vec::with_capacity(built.len());
    let mut best: Option<(f64, f64, GemmPlan)> = None;
    for (idx, plan, analytic) in built {
        let t = dry_run_time_s(die, cfg, &plan)?;
        if idx == 0 {
            static_time_s = t;
        }
        finalists.push(FinalistScore {
            label: strategy_label(&plan.strategy),
            analytic_time_s: analytic,
            engine_time_s: t,
            is_static: idx == 0,
        });
        // Strict less-than: on exact ties the earlier (better analytic
        // rank) finalist keeps the win, deterministically.
        if best.as_ref().is_none_or(|(bt, _, _)| t < *bt) {
            best = Some((t, analytic, plan));
        }
    }
    let (searched_time_s, winner_analytic, plan) =
        best.expect("at least the static finalist was dry-run");
    Ok(SearchOutcome {
        plan,
        searched_time_s,
        analytic_time_s: winner_analytic,
        static_time_s,
        finalists,
        enumerated,
        lint_rejected,
        flow_rejected,
    })
}

/// The selector's host-side analogue: the [`mc_compute::Auto`] dispatch
/// over the naive → blocked → blocked+SIMD kernel ladder, with the
/// crossover edge calibrated for the live thread pool and the tier in
/// force (overridable via [`mc_compute::CROSSOVER_ENV`]; the SIMD tier
/// honours the [`mc_compute::SIMD_ENV`] escape hatch and falls back to
/// the scalar blocked kernel when the vector unit or dtype pairing
/// rules it out). The functional GEMM path and the bench harness both
/// construct their backend here, so the host crossover policy has one
/// owner. Packing scratch inside the packed tiers comes from the
/// `mc-compute` buffer pool, so repeated calls through one handle — a
/// batched GEMM most of all — reuse their panels instead of paying an
/// allocator round-trip per entry.
pub fn host_gemm_backend() -> mc_compute::Auto {
    mc_compute::Auto::from_env()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{SimdReason, Strategy};
    use crate::types::GemmOp;

    fn die() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    fn cfg() -> SimConfig {
        SimConfig::mi250x()
    }

    #[test]
    fn searched_never_loses_to_static_across_the_sweep() {
        let d = die();
        let c = cfg();
        for op in [GemmOp::Sgemm, GemmOp::Dgemm, GemmOp::Hhs, GemmOp::Hgemm] {
            for n in [16usize, 256, 2048, 8192] {
                let out = select_plan(&d, &c, &GemmDesc::square(op, n)).unwrap();
                assert!(
                    out.searched_time_s <= out.static_time_s,
                    "{op} N={n}: searched {} vs static {}",
                    out.searched_time_s,
                    out.static_time_s
                );
                assert!(out.speedup() >= 1.0);
            }
        }
    }

    #[test]
    fn scorer_reproduces_hgemm_simd_rule() {
        // §VII rule 1 as a structural outcome: no MC candidate exists.
        let out = select_plan(&die(), &cfg(), &GemmDesc::square(GemmOp::Hgemm, 4096)).unwrap();
        assert!(!out.plan.strategy.uses_matrix_cores());
    }

    #[test]
    fn scorer_reproduces_tiny_mixed_simd_rule() {
        // §VII rule 2 as a scored outcome: with α/β scaling at N = 16
        // the handoff penalty makes SIMD win; at N = 32 Matrix Cores
        // already amortize it (paper Fig. 8).
        let d = die();
        let c = cfg();
        for op in [GemmOp::Hhs, GemmOp::Hss] {
            let out = select_plan(&d, &c, &GemmDesc::square(op, 16)).unwrap();
            assert!(
                !out.plan.strategy.uses_matrix_cores(),
                "{op} N=16 must stay on SIMD, got {:?}",
                out.plan.strategy
            );
            let out = select_plan(&d, &c, &GemmDesc::square(op, 32)).unwrap();
            assert!(out.plan.strategy.uses_matrix_cores(), "{op} N=32");
        }
    }

    #[test]
    fn search_is_deterministic() {
        let d = die();
        let c = cfg();
        for desc in [
            GemmDesc::square(GemmOp::Sgemm, 512),
            GemmDesc::square(GemmOp::Hhs, 16),
            GemmDesc::square(GemmOp::Dgemm, 4096),
        ] {
            let a = select_plan(&d, &c, &desc).unwrap();
            let b = select_plan(&d, &c, &desc).unwrap();
            assert_eq!(a.plan.strategy, b.plan.strategy, "{desc:?}");
            assert_eq!(a.searched_time_s, b.searched_time_s);
        }
    }

    #[test]
    fn finalists_carry_both_score_tiers() {
        let out = select_plan(&die(), &cfg(), &GemmDesc::square(GemmOp::Sgemm, 2048)).unwrap();
        assert!(out.finalists.len() >= 2, "{}", out.finalists.len());
        assert_eq!(out.finalists.iter().filter(|f| f.is_static).count(), 1);
        for f in &out.finalists {
            assert!(f.analytic_time_s > 0.0 && f.engine_time_s > 0.0, "{f:?}");
            assert!(!f.label.is_empty());
        }
        // The winner's recorded pair matches one of the finalists.
        assert!(out
            .finalists
            .iter()
            .any(|f| f.engine_time_s == out.searched_time_s
                && f.analytic_time_s == out.analytic_time_s));
        // Inversions, if any, reference valid finalist indices in order.
        for (i, j) in out.ranking_inversions() {
            assert!(i < j && j < out.finalists.len());
        }
    }

    #[test]
    fn ranking_inversions_flags_disagreeing_pairs() {
        let mk = |analytic: f64, engine: f64| FinalistScore {
            label: "x".into(),
            analytic_time_s: analytic,
            engine_time_s: engine,
            is_static: false,
        };
        let out = SearchOutcome {
            plan: plan_gemm(&die(), &GemmDesc::square(GemmOp::Sgemm, 64)).unwrap(),
            searched_time_s: 1.0,
            analytic_time_s: 1.0,
            static_time_s: 1.0,
            // Analytic says a < b, the engine says b < a: one inversion.
            finalists: vec![mk(1.0, 3.0), mk(2.0, 2.0), mk(4.0, 5.0)],
            enumerated: 3,
            lint_rejected: 0,
            flow_rejected: 0,
        };
        assert_eq!(out.ranking_inversions(), vec![(0, 1)]);
    }

    #[test]
    fn search_reports_candidate_accounting() {
        let out = select_plan(&die(), &cfg(), &GemmDesc::square(GemmOp::Sgemm, 2048)).unwrap();
        assert!(out.enumerated > 10, "{}", out.enumerated);
        // Every surviving plan linted clean at error severity; warnings
        // still ride on the winner like any planner output.
        assert!(out.plan.lint.is_empty());
        // Same for the dataflow verifier: a winner with a race or an
        // unretired-load consumer cannot exist, and today's emitters
        // produce no flow warnings either.
        assert!(out.plan.flow.is_empty());
    }

    #[test]
    fn simd_candidate_carries_scored_reason() {
        // When the search picks SIMD for a problem the static rules
        // would also put on SIMD, the static (reasoned) candidate wins
        // ties; a pure-search SIMD win is tagged Scored. Either way the
        // strategy is SIMD-only. Exercise the tagging through the
        // enumerator directly.
        let c = crate::enumerate::enumerate_candidates(&GemmDesc::square(GemmOp::Sgemm, 64));
        assert!(c.contains(&Strategy::SimdOnly {
            reason: SimdReason::Scored
        }));
    }

    #[test]
    fn host_backend_honors_env_override() {
        // No env mutation (tests run in parallel): just check the
        // default wiring returns a usable dispatcher.
        let auto = host_gemm_backend();
        assert!(auto.crossover_n() > 0);
    }
}
