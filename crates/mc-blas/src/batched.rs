//! Strided-batched GEMM (`rocblas_gemm_strided_batched_ex`).
//!
//! Machine-learning workloads — the original motivation for Matrix
//! Cores (paper §I) — rarely run one huge GEMM; they run thousands of
//! small ones (attention heads, batched layers). rocBLAS exposes this
//! as a strided-batched GEMM: one launch covering `batch_count`
//! problems at fixed strides. The batched form amortizes the launch
//! overhead that makes the paper's small-N Fig. 6 points so slow, and
//! keeps the device saturated where a single small GEMM cannot
//! (workgroups from all batches fill the dispatch rounds together).

use mc_isa::KernelDesc;
use mc_types::Real;

use crate::handle::{BlasHandle, GemmPerf};
use crate::planner::plan_gemm;
use crate::types::{BlasError, GemmDesc};

/// A strided-batched GEMM: `batch_count` independent problems with the
/// same dimensions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchedGemmDesc {
    /// The per-problem descriptor.
    pub gemm: GemmDesc,
    /// Number of problems in the batch.
    pub batch_count: usize,
    /// Element stride between consecutive A matrices.
    pub stride_a: usize,
    /// Element stride between consecutive B matrices.
    pub stride_b: usize,
    /// Element stride between consecutive C/D matrices.
    pub stride_c: usize,
}

impl BatchedGemmDesc {
    /// Dense packing: strides equal to each matrix's size.
    pub fn packed(gemm: GemmDesc, batch_count: usize) -> Self {
        BatchedGemmDesc {
            gemm,
            batch_count,
            stride_a: gemm.m * gemm.k,
            stride_b: gemm.k * gemm.n,
            stride_c: gemm.m * gemm.n,
        }
    }

    /// Validates strides and batch count.
    pub fn validate(&self) -> Result<(), BlasError> {
        self.gemm.validate()?;
        if self.batch_count == 0 {
            return Err(BlasError::InvalidDimension { m: 0, n: 0, k: 0 });
        }
        if self.stride_a < self.gemm.m * self.gemm.k
            || self.stride_b < self.gemm.k * self.gemm.n
            || self.stride_c < self.gemm.m * self.gemm.n
        {
            return Err(BlasError::BufferTooSmall {
                operand: "stride",
                required: self.gemm.m * self.gemm.k,
                provided: self.stride_a.min(self.stride_b).min(self.stride_c),
            });
        }
        Ok(())
    }

    /// Useful FLOPs across the batch.
    pub fn useful_flops(&self) -> u64 {
        self.gemm.useful_flops() * self.batch_count as u64
    }
}

impl BlasHandle {
    /// Plans and simulates a strided-batched GEMM launch: one kernel
    /// whose grid covers every batch entry.
    pub fn gemm_strided_batched_timed(
        &mut self,
        desc: &BatchedGemmDesc,
    ) -> Result<GemmPerf, BlasError> {
        desc.validate()?;
        let capacity = u64::from(self.gpu().spec().die.hbm_gib) << 30;
        let footprint = desc.gemm.footprint_bytes() * desc.batch_count as u64;
        if footprint > capacity {
            return Err(BlasError::OutOfDeviceMemory {
                required: footprint,
                capacity,
            });
        }

        let plan = plan_gemm(&self.gpu().spec().die, &desc.gemm)?;
        // One launch: the batch multiplies the workgroup grid and the
        // memory traffic; per-workgroup programs are unchanged.
        let b = desc.batch_count as u64;
        let kernel = KernelDesc {
            workgroups: plan.kernel.workgroups * b,
            mem_hints: mc_isa::MemHints {
                hbm_bytes: plan.kernel.mem_hints.hbm_bytes * b,
                working_set_bytes: plan.kernel.mem_hints.working_set_bytes * b,
                ..plan.kernel.mem_hints
            },
            name: format!("{}_batched_{b}", plan.kernel.name),
            ..plan.kernel.clone()
        };
        let die = self.die();
        let package = self
            .gpu_mut()
            .launch(die, &kernel)
            .map_err(|e| BlasError::Launch(e.to_string()))?;
        let time_s = package.time_s;
        let counters = package.kernels[0].counters;
        Ok(GemmPerf {
            tflops: desc.useful_flops() as f64 / time_s / 1e12,
            plan,
            time_s,
            counters,
            package,
        })
    }

    /// Functional strided-batched execution on host data plus the
    /// simulated launch (`rocblas_gemm_strided_batched_ex` shape).
    ///
    /// The planner strategy and the host backend are resolved once for
    /// the whole batch, and the packed tiers draw their panel scratch
    /// from the `mc-compute` buffer pool — so after the first entry
    /// warms the freelists, the remaining `batch_count - 1` problems
    /// run with zero allocator round-trips (the `pool_reuse`
    /// integration test pins this steady-state invariant).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_strided_batched_ex<AB, CD, CT>(
        &mut self,
        desc: &BatchedGemmDesc,
        a: &[AB],
        b: &[AB],
        c: &[CD],
        d: &mut [CD],
    ) -> Result<GemmPerf, BlasError>
    where
        AB: Real,
        CD: Real,
        CT: Real,
    {
        desc.validate()?;
        let need = |stride: usize, last: usize| (desc.batch_count - 1) * stride + last;
        let g = &desc.gemm;
        let checks = [
            ("A", need(desc.stride_a, g.m * g.k), a.len()),
            ("B", need(desc.stride_b, g.k * g.n), b.len()),
            ("C", need(desc.stride_c, g.m * g.n), c.len()),
            ("D", need(desc.stride_c, g.m * g.n), d.len()),
        ];
        for (operand, required, provided) in checks {
            if provided < required {
                return Err(BlasError::BufferTooSmall {
                    operand,
                    required,
                    provided,
                });
            }
        }
        let strategy = crate::planner::select_strategy(g);
        let backend = crate::select::host_gemm_backend();
        for i in 0..desc.batch_count {
            let (ao, bo, co) = (i * desc.stride_a, i * desc.stride_b, i * desc.stride_c);
            crate::functional::run_functional_with::<AB, CD, CT>(
                &backend,
                g,
                &strategy,
                &a[ao..ao + g.m * g.k],
                &b[bo..bo + g.k * g.n],
                &c[co..co + g.m * g.n],
                &mut d[co..co + g.m * g.n],
            )?;
        }
        self.gemm_strided_batched_timed(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::run_functional;
    use crate::types::GemmOp;

    #[test]
    fn batching_amortizes_launch_overhead() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let single = h.gemm_timed(&GemmDesc::square(GemmOp::Hhs, 128)).unwrap();
        let batched = h
            .gemm_strided_batched_timed(&BatchedGemmDesc::packed(
                GemmDesc::square(GemmOp::Hhs, 128),
                4096,
            ))
            .unwrap();
        // Per-problem throughput improves by orders of magnitude.
        assert!(
            batched.tflops > 30.0 * single.tflops,
            "{} vs {}",
            batched.tflops,
            single.tflops
        );
        // 128³ tiles are I/O-bound (C/D traffic dominates at this size),
        // so the batch lands near the DRAM roof, not the compute roof.
        assert!(
            batched.tflops > 50.0 && batched.tflops < 120.0,
            "{}",
            batched.tflops
        );
    }

    #[test]
    fn functional_batched_matches_per_problem_results() {
        let n = 32;
        let g = GemmDesc {
            alpha: 1.0,
            beta: 0.0,
            ..GemmDesc::square(GemmOp::Sgemm, n)
        };
        let batch = 3;
        let desc = BatchedGemmDesc::packed(g, batch);
        let a: Vec<f32> = (0..batch * n * n).map(|i| ((i % 7) as f32) - 3.0).collect();
        let b: Vec<f32> = (0..batch * n * n).map(|i| ((i % 5) as f32) - 2.0).collect();
        let c = vec![0.0f32; batch * n * n];
        let mut d = vec![0.0f32; batch * n * n];
        let mut h = BlasHandle::new_mi250x_gcd();
        h.gemm_strided_batched_ex::<f32, f32, f32>(&desc, &a, &b, &c, &mut d)
            .unwrap();

        // Each batch entry equals its standalone GEMM.
        for i in 0..batch {
            let off = i * n * n;
            let mut d_one = vec![0.0f32; n * n];
            let strategy = crate::planner::select_strategy(&g);
            run_functional::<f32, f32, f32>(
                &g,
                &strategy,
                &a[off..off + n * n],
                &b[off..off + n * n],
                &c[off..off + n * n],
                &mut d_one,
            )
            .unwrap();
            assert_eq!(&d[off..off + n * n], &d_one[..], "batch {i}");
        }
    }

    #[test]
    fn counters_scale_with_batch_count() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let one = h.gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 256)).unwrap();
        let eight = h
            .gemm_strided_batched_timed(&BatchedGemmDesc::packed(
                GemmDesc::square(GemmOp::Sgemm, 256),
                8,
            ))
            .unwrap();
        assert_eq!(eight.counters.mfma_mops_f32, 8 * one.counters.mfma_mops_f32);
    }

    #[test]
    fn validation_errors() {
        let g = GemmDesc::square(GemmOp::Sgemm, 64);
        let zero = BatchedGemmDesc::packed(g, 0);
        assert!(zero.validate().is_err());
        let undersized = BatchedGemmDesc {
            stride_a: 10,
            ..BatchedGemmDesc::packed(g, 2)
        };
        assert!(matches!(
            undersized.validate(),
            Err(BlasError::BufferTooSmall {
                operand: "stride",
                ..
            })
        ));
        // Batch that exceeds memory.
        let mut h = BlasHandle::new_mi250x_gcd();
        let big = BatchedGemmDesc::packed(GemmDesc::square(GemmOp::Dgemm, 8192), 100);
        assert!(matches!(
            h.gemm_strided_batched_timed(&big),
            Err(BlasError::OutOfDeviceMemory { .. })
        ));
    }

    #[test]
    fn padded_strides_are_respected() {
        let n = 16;
        let g = GemmDesc {
            alpha: 1.0,
            beta: 0.0,
            ..GemmDesc::square(GemmOp::Sgemm, n)
        };
        // Strides with a 64-element gap between problems.
        let stride = n * n + 64;
        let desc = BatchedGemmDesc {
            gemm: g,
            batch_count: 2,
            stride_a: stride,
            stride_b: stride,
            stride_c: stride,
        };
        let mut a = vec![0.0f32; stride * 2];
        let mut b = vec![0.0f32; stride * 2];
        // Batch 1: A = 2I, B = I.
        for i in 0..n {
            a[stride + i * n + i] = 2.0;
            b[stride + i * n + i] = 1.0;
        }
        let c = vec![0.0f32; stride * 2];
        let mut d = vec![0.0f32; stride * 2];
        let mut h = BlasHandle::new_mi250x_gcd();
        h.gemm_strided_batched_ex::<f32, f32, f32>(&desc, &a, &b, &c, &mut d)
            .unwrap();
        assert_eq!(d[stride], 2.0, "batch 1 diagonal");
        assert_eq!(d[0], 0.0, "batch 0 is all zeros");
    }
}
