//! Candidate scoring: the Eq. 2 analytic model and `mc-sim` dry runs.
//!
//! The search scores a built [`GemmPlan`] in two tiers:
//!
//! 1. [`analytic_time_s`] — a closed-form estimate from the paper's
//!    Eq. 2 throughput model (`mc_model::ThroughputModel`) plus a
//!    bandwidth bound on the plan's DRAM traffic, combined per the
//!    plan's buffering mode. Cheap enough to rank the whole candidate
//!    list.
//! 2. [`dry_run_time_s`] — the pure simulator engine
//!    ([`mc_sim::execute`]) on the finalists: the same residency,
//!    dispatch-round, and memory model a real launch pays, without
//!    touching any device state (no trace clock, no power governor).
//!
//! Both tiers add the same **pipeline-handoff penalty** to Matrix Core
//! plans whose epilogue must run α/β scaling on the VALUs
//! ([`handoff_penalty_s`]): draining AccVGPRs into the vector pipeline
//! costs a fixed latency the engine's slot model does not see. At large
//! N the penalty vanishes into the makespan; at N = 16 it is exactly
//! why splitting one MFMA's worth of work across both pipelines loses
//! to staying on SIMD — the paper's §VII observation, reproduced here
//! as a scored outcome rather than a hard-coded rule.

use mc_isa::specs::DieSpec;
use mc_isa::Buffering;
use mc_sim::SimConfig;

use crate::planner::{GemmPlan, Strategy};
use crate::types::{BlasError, GemmDesc};

/// Cycles to drain Matrix Core accumulators into the VALU pipeline for
/// epilogue scaling: the fixed cost of splitting one problem across
/// both pipelines. Calibrated so mixed-precision N = 16 problems with
/// α/β scaling score SIMD-first while N = 32 already favors Matrix
/// Cores (paper Fig. 8 / §VII): under the engine model the SIMD−MC gap
/// is ≈510 cycles at N = 16 and ≈4100 cycles at N = 32, so 1024 sits
/// well inside the window that flips the former without the latter.
pub const HANDOFF_CYCLES: f64 = 1024.0;

/// The handoff penalty in seconds for a strategy on a problem: nonzero
/// only for Matrix Core plans that must scale (`α ≠ 1` or `β ≠ 0`).
pub fn handoff_penalty_s(die: &DieSpec, desc: &GemmDesc, strategy: &Strategy) -> f64 {
    let needs_scaling = desc.alpha != 1.0 || desc.beta != 0.0;
    if needs_scaling && strategy.uses_matrix_cores() {
        HANDOFF_CYCLES / die.clock_hz()
    } else {
        0.0
    }
}

/// Closed-form time estimate for a built plan (tier 1).
///
/// The MFMA term comes from the paper's Eq. 2 throughput model — kept
/// deliberately distinct from the engine's matrix-slot accounting so
/// the `insight` drift gate measures a genuine Eq. 2-vs-engine
/// residual. Every other bound mirrors the engine's dispatch-round
/// structure in closed form ([`mc_sim::wave_demand`]): SIMD issue-port
/// cycles, LDS bandwidth, and the serial dependent chain, scheduled
/// over the same full-plus-ragged round geometry and divided by the
/// residency-degraded clock. DRAM time overlaps (`max`) for
/// double-buffered plans and serializes (`+`) for single-buffered ones
/// — the engine's composition rule — plus launch overhead and the
/// handoff penalty.
pub fn analytic_time_s(die: &DieSpec, cfg: &SimConfig, plan: &GemmPlan) -> f64 {
    let k = &plan.kernel;
    let demand = mc_sim::wave_demand(k);
    let simds = f64::from(die.simd_units_per_cu);

    // Round geometry, mirrored from the engine's dispatch loop: full
    // rounds at residency capacity plus one ragged tail round.
    let wpw = u64::from(k.waves_per_workgroup.max(1));
    let wg_per_cu = u64::from(mc_sim::workgroups_per_cu(die, k).unwrap_or(1).max(1));
    let capacity = (wg_per_cu * u64::from(die.compute_units)).max(1);
    let full_rounds = k.workgroups / capacity;
    let tail = k.workgroups % capacity;
    let wave_slots = |wgs: u64| -> f64 {
        if wgs == 0 {
            return 0.0;
        }
        let wg_cu = wgs.div_ceil(u64::from(die.compute_units));
        ((wg_cu * wpw) as f64 / simds).ceil().max(1.0)
    };
    let w_total = full_rounds as f64 * wave_slots(capacity) + wave_slots(tail);
    let rounds = full_rounds as f64 + f64::from(u8::from(tail > 0));

    // Residency clock at saturated occupancy of the plan's dominant
    // pipeline: matrix-load kappas weighted by per-dtype MFMA cycles
    // for Matrix Core plans, the VALU kappa otherwise.
    let (mc_f64, mc_f32, mc_f16) = demand.mc_cycles_by_type;
    let mc_all = mc_f64 + mc_f32 + mc_f16;
    let clock_loss = if mc_all > 0.0 {
        (cfg.residency.kappa_f64 * mc_f64
            + cfg.residency.kappa_f32 * mc_f32
            + cfg.residency.kappa_f16 * mc_f16)
            / mc_all
    } else {
        cfg.residency.kappa_valu
    };
    let clock_hz = die.clock_hz() * (1.0 - clock_loss).clamp(0.05, 1.0);

    // Pipeline bounds in the cycle domain: SIMD issue ports, LDS
    // bandwidth, and the per-round dependent chain.
    let lds_share = cfg.lds_bytes_per_cycle_per_cu / simds;
    let bound_cycles = (w_total * demand.simd_cycles)
        .max(w_total * demand.lds_bytes / lds_share.max(f64::MIN_POSITIVE))
        .max(rounds * demand.dependent_chain_cycles);
    let mut compute_s = bound_cycles / clock_hz;

    // The Eq. 2 MFMA bound for Matrix Core plans. Eq. 2 assumes waves
    // spread evenly over every SIMD pair on the die; a real launch
    // packs `waves_per_workgroup` onto each resident CU, so small
    // grids serialize on the busiest pair's matrix slots. The
    // placement factor — actual wave slices over the ideal spread —
    // is pure launch geometry, leaving Eq. 2 as the throughput
    // authority inside each slice.
    if let Strategy::MatrixCore { instr, .. } = plan.strategy {
        let model = mc_model::ThroughputModel::new(&instr, die);
        let waves = k.workgroups * wpw;
        let pairs = f64::from(die.compute_units) * simds;
        let ideal_slices = (waves as f64 / pairs).ceil().max(1.0);
        let placement = (w_total / ideal_slices).max(1.0);
        compute_s = compute_s.max(placement * plan.mfma_flops as f64 / model.flops(waves.max(1)));
    }

    let bandwidth = die.hbm_bandwidth_gbs * 1e9 * cfg.dram_streaming_efficiency;
    let dram_s = k.mem_hints.hbm_bytes as f64 / bandwidth;
    let pipelined = match k.mem_hints.buffering {
        Buffering::Double => compute_s.max(dram_s),
        Buffering::Single => compute_s + dram_s,
    };
    pipelined + cfg.launch_overhead_s + handoff_penalty_s(die, &plan.desc, &plan.strategy)
}

/// Engine-modeled time for a built plan (tier 2): [`mc_sim::execute`]
/// plus the handoff penalty, consistently with [`analytic_time_s`].
pub fn dry_run_time_s(die: &DieSpec, cfg: &SimConfig, plan: &GemmPlan) -> Result<f64, BlasError> {
    let exec =
        mc_sim::execute(die, cfg, &plan.kernel).map_err(|e| BlasError::Launch(e.to_string()))?;
    Ok(exec.time_s + handoff_penalty_s(die, &plan.desc, &plan.strategy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{build_plan, plan_gemm, select_strategy};
    use crate::types::{GemmDesc, GemmOp};

    fn die() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    fn cfg() -> SimConfig {
        SimConfig::mi250x()
    }

    #[test]
    fn penalty_applies_only_to_scaled_matrix_core_plans() {
        let d = die();
        let scaled = GemmDesc::square(GemmOp::Sgemm, 256); // α=β=0.1
        let s = select_strategy(&scaled);
        assert!(handoff_penalty_s(&d, &scaled, &s) > 0.0);
        let unscaled = GemmDesc {
            alpha: 1.0,
            beta: 0.0,
            ..scaled
        };
        assert_eq!(handoff_penalty_s(&d, &unscaled, &s), 0.0);
        let simd = select_strategy(&GemmDesc::square(GemmOp::Hgemm, 256));
        assert_eq!(handoff_penalty_s(&d, &scaled, &simd), 0.0);
    }

    #[test]
    fn analytic_and_dry_run_agree_on_ordering_at_scale() {
        // Both tiers must call the mid-size SGEMM sweet spot faster per
        // FLOP than the tiny launch-bound problem.
        let d = die();
        let c = cfg();
        let small = plan_gemm(&d, &GemmDesc::square(GemmOp::Sgemm, 64)).unwrap();
        let big = plan_gemm(&d, &GemmDesc::square(GemmOp::Sgemm, 4096)).unwrap();
        let tput = |p: &GemmPlan, t: f64| p.useful_flops() as f64 / t;
        assert!(
            tput(&big, analytic_time_s(&d, &c, &big))
                > 100.0 * tput(&small, analytic_time_s(&d, &c, &small))
        );
        assert!(
            tput(&big, dry_run_time_s(&d, &c, &big).unwrap())
                > 100.0 * tput(&small, dry_run_time_s(&d, &c, &small).unwrap())
        );
    }

    #[test]
    fn single_buffering_scores_slower_when_dram_is_hidden() {
        // At 8192 the double-buffered plan hides multi-ms DRAM traffic;
        // serializing it must cost in both scoring tiers.
        let d = die();
        let c = cfg();
        let desc = GemmDesc::square(GemmOp::Sgemm, 8192);
        let double = plan_gemm(&d, &desc).unwrap();
        let Strategy::MatrixCore {
            instr,
            macro_tile,
            wave_tile,
            k_step,
            ..
        } = double.strategy
        else {
            panic!("expected matrix-core strategy");
        };
        let single = build_plan(
            &d,
            &desc,
            Strategy::MatrixCore {
                instr,
                macro_tile,
                wave_tile,
                k_step,
                buffering: Buffering::Single,
            },
        )
        .unwrap();
        assert!(analytic_time_s(&d, &c, &single) > analytic_time_s(&d, &c, &double));
        assert!(
            dry_run_time_s(&d, &c, &single).unwrap() > dry_run_time_s(&d, &c, &double).unwrap()
        );
    }
}
