//! SYRK: symmetric rank-k update, `C ← α·A·Aᵀ + β·C` (lower triangle).
//!
//! The BLAS-3 routine behind Cholesky trailing updates (rocSOLVER uses
//! `rocblas_dsyrk`, not a full GEMM): symmetry means only the lower
//! triangle is computed — `n·(n+1)·k` FLOPs instead of GEMM's `2·n²·k`,
//! and on the device only the diagonal-and-below macro-tiles are
//! launched, nearly halving both work and DRAM traffic for the same
//! update.

use mc_isa::specs::DieSpec;
use mc_isa::KernelDesc;
use mc_types::Real;

use crate::planner::{plan_gemm, GemmPlan, Strategy};
use crate::types::{BlasError, GemmDesc, GemmOp, Transpose};

/// A symmetric rank-k update descriptor (lower triangle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyrkDesc {
    /// Operation datatypes (SGEMM/DGEMM variants make sense here).
    pub op: GemmOp,
    /// Order of C (`n×n`).
    pub n: usize,
    /// Rank of the update (columns of A).
    pub k: usize,
    /// Multiplier on `A·Aᵀ`.
    pub alpha: f64,
    /// Multiplier on `C`.
    pub beta: f64,
}

impl SyrkDesc {
    /// Useful FLOPs: `n(n+1)k` MACs on the lower triangle, plus the
    /// `3·n(n+1)/2` scaling term.
    pub fn useful_flops(&self) -> u64 {
        let (n, k) = (self.n as u64, self.k as u64);
        n * (n + 1) * k + 3 * n * (n + 1) / 2
    }

    /// The equivalent full-GEMM descriptor (`A · Aᵀ`).
    pub fn as_gemm(&self) -> GemmDesc {
        GemmDesc {
            trans_b: Transpose::Trans,
            ..GemmDesc::new(self.op, self.n, self.n, self.k, self.alpha, self.beta)
        }
    }
}

/// A planned SYRK: the full-GEMM plan with the launch grid and traffic
/// cut to the lower-triangle macro-tiles.
#[derive(Clone, Debug, PartialEq)]
pub struct SyrkPlan {
    /// The descriptor.
    pub desc: SyrkDesc,
    /// Kernel covering only diagonal-and-below tiles.
    pub kernel: KernelDesc,
    /// Matrix-unit FLOPs issued (includes tile padding and the full
    /// diagonal tiles, whose upper halves are computed then discarded).
    pub mfma_flops: u64,
    /// The underlying (full) GEMM plan for reference.
    pub gemm_plan: GemmPlan,
}

/// Plans a lower-triangle SYRK on one die.
pub fn plan_syrk(die: &DieSpec, desc: &SyrkDesc) -> Result<SyrkPlan, BlasError> {
    let gemm_desc = desc.as_gemm();
    let gemm_plan = plan_gemm(die, &gemm_desc)?;

    let (tiles, total_tiles) = match gemm_plan.strategy {
        Strategy::MatrixCore { macro_tile, .. } => {
            let tm = desc.n.div_ceil(macro_tile.0) as u64;
            let tn = desc.n.div_ceil(macro_tile.1) as u64;
            // Lower-triangle tile count on the (square) grid.
            let t = tm.min(tn);
            (t * (t + 1) / 2 + t * (tm.max(tn) - t), tm * tn)
        }
        Strategy::SimdOnly { .. } => {
            let t = gemm_plan.kernel.workgroups;
            (t, t)
        }
    };

    let scale = tiles as f64 / total_tiles as f64;
    let kernel = KernelDesc {
        workgroups: tiles,
        name: format!("syrk_{}", desc.op),
        mem_hints: mc_isa::MemHints {
            hbm_bytes: (gemm_plan.kernel.mem_hints.hbm_bytes as f64 * scale) as u64,
            ..gemm_plan.kernel.mem_hints
        },
        ..gemm_plan.kernel.clone()
    };
    let mfma_flops = (gemm_plan.mfma_flops as f64 * scale) as u64;

    Ok(SyrkPlan {
        desc: *desc,
        kernel,
        mfma_flops,
        gemm_plan,
    })
}

/// Functional lower-triangle SYRK on host data: writes only `i ≥ j`
/// entries of `c` (row-major `n×n`); `a` is row-major `n×k`.
pub fn syrk_functional<T: Real, CT: Real>(
    desc: &SyrkDesc,
    a: &[T],
    c: &mut [T],
) -> Result<(), BlasError> {
    let (n, k) = (desc.n, desc.k);
    if a.len() < n * k {
        return Err(BlasError::BufferTooSmall {
            operand: "A",
            required: n * k,
            provided: a.len(),
        });
    }
    if c.len() < n * n {
        return Err(BlasError::BufferTooSmall {
            operand: "C",
            required: n * n,
            provided: c.len(),
        });
    }
    for i in 0..n {
        for j in 0..=i {
            let mut acc = CT::zero();
            for p in 0..k {
                let prod = CT::from_f64(a[i * k + p].to_f64() * a[j * k + p].to_f64());
                acc = CT::from_f64(acc.to_f64() + prod.to_f64());
            }
            let ab = CT::from_f64(desc.alpha * acc.to_f64());
            let bc = CT::from_f64(desc.beta * c[i * n + j].to_f64());
            c[i * n + j] = T::from_f64(CT::from_f64(ab.to_f64() + bc.to_f64()).to_f64());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    #[test]
    fn functional_matches_gemm_on_lower_triangle() {
        let desc = SyrkDesc {
            op: GemmOp::Dgemm,
            n: 48,
            k: 24,
            alpha: -1.0,
            beta: 1.0,
        };
        let a: Vec<f64> = (0..48 * 24)
            .map(|i| ((i * 13 % 17) as f64) / 17.0 - 0.5)
            .collect();
        let c0: Vec<f64> = (0..48 * 48).map(|i| (i % 5) as f64).collect();

        let mut c_syrk = c0.clone();
        syrk_functional::<f64, f64>(&desc, &a, &mut c_syrk).unwrap();

        let mut c_gemm = vec![0.0f64; 48 * 48];
        crate::functional::gemm_reference_f64(&desc.as_gemm(), &a, &a, &c0, &mut c_gemm).unwrap();
        for i in 0..48 {
            for j in 0..48 {
                if j <= i {
                    assert!(
                        (c_syrk[i * 48 + j] - c_gemm[i * 48 + j]).abs() < 1e-12,
                        "({i},{j})"
                    );
                } else {
                    assert_eq!(
                        c_syrk[i * 48 + j],
                        c0[i * 48 + j],
                        "upper untouched ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_launches_roughly_half_the_tiles() {
        let desc = SyrkDesc {
            op: GemmOp::Dgemm,
            n: 4096,
            k: 256,
            alpha: -1.0,
            beta: 1.0,
        };
        let plan = plan_syrk(&die(), &desc).unwrap();
        let full = plan.gemm_plan.kernel.workgroups;
        // Lower triangle of a t×t grid: t(t+1)/2 of t² tiles.
        let t = 4096u64 / 256;
        assert_eq!(plan.kernel.workgroups, t * (t + 1) / 2);
        assert!(
            plan.kernel.workgroups * 2 > full,
            "more than half with diagonal"
        );
        assert!(plan.kernel.workgroups < full * 3 / 5);
        assert!(plan.mfma_flops < plan.gemm_plan.mfma_flops * 3 / 5);
    }

    #[test]
    fn useful_flops_model() {
        let desc = SyrkDesc {
            op: GemmOp::Sgemm,
            n: 100,
            k: 10,
            alpha: 1.0,
            beta: 0.0,
        };
        assert_eq!(desc.useful_flops(), 100 * 101 * 10 + 3 * 100 * 101 / 2);
    }

    #[test]
    fn syrk_runs_on_the_device_faster_than_the_gemm() {
        let mut handle = crate::handle::BlasHandle::new_mi250x_gcd();
        let desc = SyrkDesc {
            op: GemmOp::Dgemm,
            n: 4096,
            k: 256,
            alpha: -1.0,
            beta: 1.0,
        };
        let plan = plan_syrk(&handle.gpu().spec().die, &desc).unwrap();
        let die = handle.die();
        let syrk_r = handle.gpu_mut().launch(die, &plan.kernel).unwrap();
        let gemm_r = handle
            .gpu_mut()
            .launch(die, &plan.gemm_plan.kernel)
            .unwrap();
        assert!(
            syrk_r.time_s < 0.7 * gemm_r.time_s,
            "{} vs {}",
            syrk_r.time_s,
            gemm_r.time_s
        );
    }

    #[test]
    fn buffer_validation() {
        let desc = SyrkDesc {
            op: GemmOp::Sgemm,
            n: 16,
            k: 8,
            alpha: 1.0,
            beta: 0.0,
        };
        let a = vec![0.0f32; 10];
        let mut c = vec![0.0f32; 256];
        assert!(matches!(
            syrk_functional::<f32, f32>(&desc, &a, &mut c),
            Err(BlasError::BufferTooSmall { operand: "A", .. })
        ));
    }
}
