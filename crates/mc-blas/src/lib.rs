//! A rocBLAS-style GEMM library over the simulated Matrix Cores.
//!
//! rocBLAS "tries to leverage Matrix Cores whenever they are available,
//! with no option to opt-out at the user level" (paper §III), choosing at
//! runtime a strategy that maps arbitrary-shaped GEMMs onto the
//! fixed-shape MFMA instructions via two-level tiling (macro-tile per
//! workgroup, micro-tile per wavefront). This crate implements that
//! library design:
//!
//! * [`types`] — the GEMM operation descriptors, including the paper's
//!   Table III mixed-precision variants (HGEMM / HSS / HHS);
//! * [`planner`] — runtime strategy selection and kernel-plan emission
//!   (the policy that leaves HGEMM on the SIMD units and skips Matrix
//!   Cores for tiny mixed problems, Fig. 8);
//! * [`functional`] — a host-side executor that really computes
//!   `D ← α·A·B + β·C` with hardware-faithful precision on the shared
//!   [`mc_compute`] blocked kernel, validating Matrix Core instruction
//!   shapes through the [`mc_wmma`] fragment API;
//! * [`handle`] — the `rocblas_handle` equivalent: owns a simulated
//!   device, launches planned kernels through a memoizing plan cache,
//!   and reports timing/counters.

#![deny(missing_docs)]

pub mod batched;
pub mod functional;
pub mod gemv;
pub mod handle;
pub mod igemm;
pub mod planner;
pub mod syrk;
pub mod types;

pub use batched::BatchedGemmDesc;
pub use functional::{gemm_reference_f64, run_functional};
pub use gemv::{gemv_functional, plan_gemv, GemvDesc, GemvPerf};
pub use handle::{BlasHandle, GemmPerf, PlanCacheStats};
pub use igemm::{dequantize, quantize, quantized_gemm, Quantized};
pub use planner::{plan_gemm, select_strategy, GemmPlan, SimdReason, Strategy};
pub use syrk::{plan_syrk, syrk_functional, SyrkDesc, SyrkPlan};
pub use types::{BlasError, GemmDesc, GemmOp, Transpose};
