//! A rocBLAS-style GEMM library over the simulated Matrix Cores.
//!
//! rocBLAS "tries to leverage Matrix Cores whenever they are available,
//! with no option to opt-out at the user level" (paper §III), choosing at
//! runtime a strategy that maps arbitrary-shaped GEMMs onto the
//! fixed-shape MFMA instructions via two-level tiling (macro-tile per
//! workgroup, micro-tile per wavefront). This crate implements that
//! library design:
//!
//! * [`types`] — the GEMM operation descriptors, including the paper's
//!   Table III mixed-precision variants (HGEMM / HSS / HHS);
//! * [`planner`] — kernel-plan emission plus the static fallback
//!   strategy (the policy that leaves HGEMM on the SIMD units and skips
//!   Matrix Cores for tiny mixed problems, Fig. 8);
//! * [`enumerate`] / [`score`] / [`select`] — the scored plan search:
//!   candidate tilings and buffering modes, ranked by the Eq. 2
//!   analytic model and `mc-sim` dry runs (see `docs/AUTOTUNE.md`);
//! * [`plandb`] — the persisted plan DB caching searched winners across
//!   processes (`MC_PLAN_DB`);
//! * [`functional`] — a host-side executor that really computes
//!   `D ← α·A·B + β·C` with hardware-faithful precision on the shared
//!   [`mc_compute`] kernels (naive/blocked via the [`mc_compute::Auto`]
//!   crossover dispatch), validating Matrix Core instruction shapes
//!   through the [`mc_wmma`] fragment API;
//! * [`handle`] — the `rocblas_handle` equivalent: owns a simulated
//!   device, launches planned kernels through a memoizing plan cache,
//!   and reports timing/counters. Plan search is opt-in per handle
//!   ([`BlasHandle::set_plan_search`] or `MC_PLAN_SEARCH=1`).

#![deny(missing_docs)]

pub mod batched;
pub mod enumerate;
pub mod functional;
pub mod gemv;
pub mod handle;
pub mod igemm;
pub mod plandb;
pub mod planner;
pub mod score;
pub mod select;
pub mod syrk;
pub mod types;

pub use batched::BatchedGemmDesc;
pub use enumerate::enumerate_candidates;
pub use functional::{gemm_reference_f64, run_functional, run_functional_with};
pub use gemv::{gemv_functional, plan_gemv, GemvDesc, GemvPerf};
pub use handle::{BlasHandle, GemmPerf, PlanCacheStats, PLAN_SEARCH_ENV};
pub use igemm::{dequantize, quantize, quantized_gemm, Quantized};
pub use plandb::{PlanDb, PlanDbEntry, StrategyRecord, PLAN_DB_ENV, PLAN_DB_SCHEMA_VERSION};
pub use planner::{build_plan, plan_gemm, select_strategy, GemmPlan, SimdReason, Strategy};
pub use score::{analytic_time_s, dry_run_time_s, handoff_penalty_s, HANDOFF_CYCLES};
pub use select::{
    host_gemm_backend, select_plan, strategy_label, FinalistScore, SearchOutcome, DRY_RUN_TOP_K,
};
pub use syrk::{plan_syrk, syrk_functional, SyrkDesc, SyrkPlan};
pub use types::{BlasError, GemmDesc, GemmOp, Transpose};
