//! The library handle: the `rocblas_handle` equivalent.
//!
//! A [`BlasHandle`] owns one simulated GCD (rocBLAS targets one HIP
//! device, and each MI250X GCD is a device, paper §II). It offers:
//!
//! * typed functional entry points (`sgemm`, `dgemm`, `hgemm`, and the
//!   generic `gemm_ex` variants) that compute real results on host data
//!   *and* simulate the launch, like a device round-trip would;
//! * [`BlasHandle::gemm_timed`] — plan and simulate a launch by
//!   descriptor only (no host data), used by the large-N sweeps of
//!   Fig. 6/7/8 where materializing 65000² matrices is pointless.

use std::collections::HashMap;

use mc_sim::{DeviceId, DeviceRegistry, Gpu, HwCounters, LaunchError, PackageResult, SimConfig};
use mc_types::{Real, F16};

use crate::functional::run_functional;
use crate::plandb::PlanDb;
use crate::planner::{build_plan, plan_gemm, GemmPlan};
use crate::types::{BlasError, GemmDesc, GemmOp, Transpose};

/// Environment variable enabling the scored plan search for every new
/// handle (`1`/`true`); equivalent to [`BlasHandle::set_plan_search`].
pub const PLAN_SEARCH_ENV: &str = "MC_PLAN_SEARCH";

/// The full planning input: every descriptor field that influences
/// [`plan_gemm`]'s output, plus the die the handle launches on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct PlanKey {
    op: GemmOp,
    m: usize,
    n: usize,
    k: usize,
    trans_a: Transpose,
    trans_b: Transpose,
    alpha_bits: u64,
    beta_bits: u64,
    die: usize,
}

impl PlanKey {
    fn new(desc: &GemmDesc, die: usize) -> Self {
        PlanKey {
            op: desc.op,
            m: desc.m,
            n: desc.n,
            k: desc.k,
            trans_a: desc.trans_a,
            trans_b: desc.trans_b,
            alpha_bits: desc.alpha.to_bits(),
            beta_bits: desc.beta.to_bits(),
            die,
        }
    }
}

/// Memoized planner results for one handle.
///
/// Sweeps and the solver's schedule replay re-plan the same descriptor
/// many times; the plan is a pure function of [`PlanKey`], so the
/// handle caches it. Lint *enforcement* still happens on every launch
/// (the policy flag can change between calls) — only the plan
/// construction and its lint *analysis* are memoized.
#[derive(Debug, Default)]
struct PlanCache {
    plans: HashMap<PlanKey, GemmPlan>,
    hits: u64,
    misses: u64,
}

/// Hit/miss counters for a handle's plan cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans constructed by the planner.
    pub misses: u64,
}

/// Performance report for one GEMM launch.
#[derive(Clone, Debug)]
pub struct GemmPerf {
    /// The plan that ran.
    pub plan: GemmPlan,
    /// Kernel wall time in seconds.
    pub time_s: f64,
    /// Achieved throughput in TFLOPS, computed like the paper does:
    /// useful problem FLOPs (`2mnk + 3mn`) over wall time.
    pub tflops: f64,
    /// Counter increments from the launch (rocprof's view).
    pub counters: HwCounters,
    /// Full package-level result (power, governor, clocks).
    pub package: PackageResult,
}

/// A rocBLAS-style handle bound to one simulated GCD.
#[derive(Debug)]
pub struct BlasHandle {
    gpu: Gpu,
    die: usize,
    strict_lint: bool,
    plan_cache: PlanCache,
    plan_search: bool,
    plan_db: Option<(std::path::PathBuf, PlanDb)>,
}

impl BlasHandle {
    /// Creates a handle on one GCD of a simulated MI250X.
    ///
    /// Prefer [`BlasHandle::from_registry`] with
    /// [`DeviceId::Mi250xGcd`]; this shorthand remains for doctests and
    /// backward compatibility and is equivalent to it.
    pub fn new_mi250x_gcd() -> Self {
        BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd)
    }

    /// Creates a handle for a registered device, pinned to that device
    /// view's default die (die 0 — the "one HIP device per GCD" model).
    /// Inherits the registry's trace sink, if one is attached.
    pub fn from_registry(devices: &DeviceRegistry, id: DeviceId) -> Self {
        let mut handle = BlasHandle::with_config(devices.config(id).clone(), id.default_die());
        if let Some(sink) = devices.trace_sink() {
            handle.set_trace_sink(sink.clone());
        }
        handle
    }

    /// Creates a handle over an explicit simulator configuration.
    ///
    /// Lint enforcement defaults to strict in debug builds (tests) and
    /// permissive in release builds (benchmark sweeps), mirroring
    /// `debug_assertions`; override with [`BlasHandle::set_strict_lint`].
    pub fn with_config(cfg: SimConfig, die: usize) -> Self {
        let plan_search = std::env::var(PLAN_SEARCH_ENV)
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        // A broken MC_PLAN_DB file must not brick every handle: fall
        // back to searching without persistence.
        let plan_db =
            PlanDb::env_path().and_then(|path| PlanDb::load(&path).ok().map(|db| (path, db)));
        BlasHandle {
            gpu: Gpu::new(cfg),
            die,
            strict_lint: cfg!(debug_assertions),
            plan_cache: PlanCache::default(),
            plan_search,
            plan_db,
        }
    }

    /// Plans a GEMM through the handle's memoizing cache. With plan
    /// search enabled, a miss consults the persisted plan DB and then
    /// the scored search ([`crate::select::select_plan`]); otherwise
    /// the static planner runs.
    pub fn planned(&mut self, desc: &GemmDesc) -> Result<GemmPlan, BlasError> {
        let key = PlanKey::new(desc, self.die);
        if let Some(plan) = self.plan_cache.plans.get(&key) {
            self.plan_cache.hits += 1;
            return Ok(plan.clone());
        }
        let plan = if self.plan_search {
            self.search_plan(desc)?
        } else {
            plan_gemm(&self.gpu.spec().die, desc)?
        };
        self.plan_cache.misses += 1;
        self.plan_cache.plans.insert(key, plan.clone());
        Ok(plan)
    }

    /// Whether this handle uses the scored plan search.
    pub fn plan_search(&self) -> bool {
        self.plan_search
    }

    /// Enables or disables the scored plan search for this handle.
    /// Already-cached plans are dropped so the policy change takes
    /// effect on the next launch.
    pub fn set_plan_search(&mut self, on: bool) -> &mut Self {
        if self.plan_search != on {
            self.plan_cache.plans.clear();
        }
        self.plan_search = on;
        self
    }

    /// Attaches (and loads, if present) a persisted plan DB at `path`;
    /// searched winners are appended and saved back after each search.
    pub fn set_plan_db_path(&mut self, path: std::path::PathBuf) -> Result<&mut Self, BlasError> {
        let db = PlanDb::load(&path)?;
        self.plan_db = Some((path, db));
        Ok(self)
    }

    /// DB-backed scored planning: consult the plan DB, else search,
    /// then persist the winner (best-effort).
    fn search_plan(&mut self, desc: &GemmDesc) -> Result<GemmPlan, BlasError> {
        let die = self.gpu.spec().die.clone();
        let device = self.gpu.spec().name.clone();
        if let Some((_, db)) = &self.plan_db {
            if let Some(strategy) = db.lookup(&device, desc) {
                // Rebuild and re-lint: a persisted entry is a strategy,
                // never a pre-approved kernel. Stale or now-unlintable
                // entries fall through to a fresh search.
                if let Ok(plan) = build_plan(&die, desc, strategy) {
                    return Ok(plan);
                }
            }
        }
        let outcome = crate::select::select_plan(&die, self.gpu.config(), desc)?;
        if let Some((path, db)) = &mut self.plan_db {
            db.insert(
                &device,
                desc,
                &outcome.plan.strategy,
                outcome.searched_time_s,
                outcome.analytic_time_s,
            );
            let _ = db.save(path);
        }
        Ok(outcome.plan)
    }

    /// Hit/miss counters for the plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.plan_cache.hits,
            misses: self.plan_cache.misses,
        }
    }

    /// Whether warning-severity lint findings reject a launch.
    ///
    /// Error-severity findings always reject the plan regardless of this
    /// flag ([`plan_gemm`] refuses to produce one).
    pub fn strict_lint(&self) -> bool {
        self.strict_lint
    }

    /// Sets strict-lint mode: when `true`, kernels with lint *warnings*
    /// are rejected as [`BlasError::Lint`] instead of merely logged.
    pub fn set_strict_lint(&mut self, strict: bool) -> &mut Self {
        self.strict_lint = strict;
        self
    }

    /// Applies this handle's lint policy to a freshly-produced plan.
    fn enforce_lint(&self, plan: &GemmPlan) -> Result<(), BlasError> {
        if plan.lint.is_empty() {
            return Ok(());
        }
        let report = mc_lint::LintReport::new(plan.kernel.name.clone(), plan.lint.clone());
        if self.strict_lint {
            return Err(BlasError::Lint(report));
        }
        eprintln!("{}", report.render());
        Ok(())
    }

    /// Applies the same policy to the plan's dataflow findings: error
    /// findings never reach a plan ([`build_plan`] rejects them), so
    /// this gates the warnings (dead stores, underdeclared working
    /// sets) under the strict flag.
    fn enforce_flow(&self, plan: &GemmPlan) -> Result<(), BlasError> {
        if plan.flow.is_empty() {
            return Ok(());
        }
        let report = mc_flow::FlowReport::new(plan.kernel.name.clone(), plan.flow.clone());
        if self.strict_lint {
            return Err(BlasError::Flow(report));
        }
        eprintln!("{}", report.render());
        Ok(())
    }

    /// Attaches a trace sink: launches through this handle emit plan
    /// spans (library level) and kernel timelines (engine level).
    pub fn set_trace_sink(&mut self, sink: std::sync::Arc<dyn mc_trace::TraceSink>) -> &mut Self {
        self.gpu.set_trace_sink(sink);
        self
    }

    /// The underlying simulated GPU (for profiler attachment).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Mutable access to the underlying GPU.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// The die this handle launches on.
    pub fn die(&self) -> usize {
        self.die
    }

    /// Plans and simulates a GEMM launch without host data.
    ///
    /// Returns [`BlasError::OutOfDeviceMemory`] when the problem exceeds
    /// the GCD's HBM — the paper's sweep stops at the same boundary
    /// ("until exhausting the GPU memory", §VII).
    ///
    /// ```
    /// use mc_blas::{BlasHandle, GemmDesc, GemmOp};
    ///
    /// let mut handle = BlasHandle::new_mi250x_gcd();
    /// let perf = handle.gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 8192)).unwrap();
    /// assert!((perf.tflops - 43.0).abs() < 3.0); // paper Fig. 6 peak
    /// assert!(perf.counters.mfma_mops_f32 > 0);  // Matrix Cores used
    /// ```
    pub fn gemm_timed(&mut self, desc: &GemmDesc) -> Result<GemmPerf, BlasError> {
        let capacity = u64::from(self.gpu.spec().die.hbm_gib) << 30;
        if desc.footprint_bytes() > capacity {
            return Err(BlasError::OutOfDeviceMemory {
                required: desc.footprint_bytes(),
                capacity,
            });
        }
        let plan = self.planned(desc)?;
        self.enforce_lint(&plan)?;
        self.enforce_flow(&plan)?;
        let package = self
            .gpu
            .launch(self.die, &plan.kernel)
            .map_err(|e: LaunchError| BlasError::Launch(e.to_string()))?;
        let time_s = package.time_s;
        let counters = package.kernels[0].counters;
        self.emit_plan_span(desc, &plan, time_s);
        Ok(GemmPerf {
            tflops: plan.useful_flops() as f64 / time_s / 1e12,
            plan,
            time_s,
            counters,
            package,
        })
    }

    /// `rocblas_gemm_ex` equivalent: functional execution on host data
    /// plus a simulated launch, generic over the datatype triple.
    pub fn gemm_ex<AB, CD, CT>(
        &mut self,
        desc: &GemmDesc,
        a: &[AB],
        b: &[AB],
        c: &[CD],
        d: &mut [CD],
    ) -> Result<GemmPerf, BlasError>
    where
        AB: Real,
        CD: Real,
        CT: Real,
    {
        let plan = self.planned(desc)?;
        self.enforce_lint(&plan)?;
        self.enforce_flow(&plan)?;
        run_functional::<AB, CD, CT>(desc, &plan.strategy, a, b, c, d)?;
        self.gemm_timed(desc)
    }

    /// `rocblas_sgemm`: single precision.
    pub fn sgemm(
        &mut self,
        desc: &GemmDesc,
        a: &[f32],
        b: &[f32],
        c: &[f32],
        d: &mut [f32],
    ) -> Result<GemmPerf, BlasError> {
        debug_assert_eq!(desc.op, GemmOp::Sgemm);
        self.gemm_ex::<f32, f32, f32>(desc, a, b, c, d)
    }

    /// `rocblas_dgemm`: double precision.
    pub fn dgemm(
        &mut self,
        desc: &GemmDesc,
        a: &[f64],
        b: &[f64],
        c: &[f64],
        d: &mut [f64],
    ) -> Result<GemmPerf, BlasError> {
        debug_assert_eq!(desc.op, GemmOp::Dgemm);
        self.gemm_ex::<f64, f64, f64>(desc, a, b, c, d)
    }

    /// `rocblas_hgemm`: half precision in, half out, **half compute** —
    /// the routine that never touches Matrix Cores (§VII).
    pub fn hgemm(
        &mut self,
        desc: &GemmDesc,
        a: &[F16],
        b: &[F16],
        c: &[F16],
        d: &mut [F16],
    ) -> Result<GemmPerf, BlasError> {
        debug_assert_eq!(desc.op, GemmOp::Hgemm);
        self.gemm_ex::<F16, F16, F16>(desc, a, b, c, d)
    }

    /// HHS via `gemm_ex`: FP16 in/out, FP32 compute.
    pub fn gemm_hhs(
        &mut self,
        desc: &GemmDesc,
        a: &[F16],
        b: &[F16],
        c: &[F16],
        d: &mut [F16],
    ) -> Result<GemmPerf, BlasError> {
        debug_assert_eq!(desc.op, GemmOp::Hhs);
        self.gemm_ex::<F16, F16, f32>(desc, a, b, c, d)
    }

    /// BHS via `gemm_ex`: bfloat16 in/out, FP32 compute (ML workloads).
    pub fn gemm_bhs(
        &mut self,
        desc: &GemmDesc,
        a: &[mc_types::Bf16],
        b: &[mc_types::Bf16],
        c: &[mc_types::Bf16],
        d: &mut [mc_types::Bf16],
    ) -> Result<GemmPerf, BlasError> {
        debug_assert_eq!(desc.op, GemmOp::Bhs);
        self.gemm_ex::<mc_types::Bf16, mc_types::Bf16, f32>(desc, a, b, c, d)
    }

    /// BSS via `gemm_ex`: bfloat16 in, FP32 out, FP32 compute.
    pub fn gemm_bss(
        &mut self,
        desc: &GemmDesc,
        a: &[mc_types::Bf16],
        b: &[mc_types::Bf16],
        c: &[f32],
        d: &mut [f32],
    ) -> Result<GemmPerf, BlasError> {
        debug_assert_eq!(desc.op, GemmOp::Bss);
        self.gemm_ex::<mc_types::Bf16, f32, f32>(desc, a, b, c, d)
    }

    /// HSS via `gemm_ex`: FP16 in, FP32 out, FP32 compute.
    pub fn gemm_hss(
        &mut self,
        desc: &GemmDesc,
        a: &[F16],
        b: &[F16],
        c: &[f32],
        d: &mut [f32],
    ) -> Result<GemmPerf, BlasError> {
        debug_assert_eq!(desc.op, GemmOp::Hss);
        self.gemm_ex::<F16, f32, f32>(desc, a, b, c, d)
    }

    /// Library-level plan span around the launch that just completed:
    /// covers exactly the kernel's wall window on the dedicated plan
    /// lane, tagged with the problem shape and tiling decision.
    fn emit_plan_span(&self, desc: &GemmDesc, plan: &GemmPlan, time_s: f64) {
        use crate::planner::Strategy;
        use mc_trace::{ArgValue, Category, SpanEvent, TraceEvent, Track};

        let sink = self.gpu.trace_sink();
        if !sink.enabled() {
            return;
        }
        // The launch advanced the device's trace clock by its makespan.
        let t0_us = (self.gpu.trace_time_s() - time_s) * 1e6;
        // The Eq. 2 prediction for the plan that ran, alongside the
        // measured wall time: the pair the insight layer joins into a
        // per-launch model-drift observation.
        let predicted_s =
            crate::score::analytic_time_s(&self.gpu.spec().die, self.gpu.config(), plan);
        let handoff_s = crate::score::handoff_penalty_s(&self.gpu.spec().die, desc, &plan.strategy);
        let mut args: Vec<(String, ArgValue)> = vec![
            ("op".into(), format!("{}", desc.op).into()),
            ("m".into(), (desc.m as u64).into()),
            ("n".into(), (desc.n as u64).into()),
            ("k".into(), (desc.k as u64).into()),
            ("useful_flops".into(), plan.useful_flops().into()),
            ("mfma_flops".into(), plan.mfma_flops.into()),
            ("simd_flops".into(), plan.simd_flops.into()),
            ("predicted_time_s".into(), predicted_s.into()),
            ("measured_time_s".into(), time_s.into()),
            ("handoff_penalty_s".into(), handoff_s.into()),
        ];
        match plan.strategy {
            Strategy::MatrixCore {
                instr,
                macro_tile,
                wave_tile,
                k_step,
                buffering,
            } => {
                args.push(("strategy".into(), "matrix-core".into()));
                args.push(("instr".into(), instr.mnemonic().into()));
                args.push((
                    "macro_tile".into(),
                    format!("{}x{}", macro_tile.0, macro_tile.1).into(),
                ));
                args.push((
                    "wave_tile".into(),
                    format!("{}x{}", wave_tile.0, wave_tile.1).into(),
                ));
                args.push(("k_step".into(), (k_step as u64).into()));
                args.push(("buffering".into(), format!("{buffering:?}").into()));
            }
            Strategy::SimdOnly { reason } => {
                args.push(("strategy".into(), "simd-only".into()));
                args.push(("reason".into(), format!("{reason:?}").into()));
            }
        }
        sink.record(TraceEvent::Span(SpanEvent {
            name: format!("plan {}", plan.kernel.name),
            category: Category::Plan,
            device: self.die as u32,
            track: Track::Plan,
            t0_us,
            dur_us: time_s * 1e6,
            args,
        }));
    }

    /// Largest square N for an operation that still fits in HBM (the
    /// paper's sweep upper bound).
    pub fn max_square_n(&self, op: GemmOp) -> usize {
        let capacity = (u64::from(self.gpu.spec().die.hbm_gib) << 30) as f64;
        let per_n2 = (2 * op.type_ab().size_bytes() + 2 * op.type_cd().size_bytes()) as f64;
        (capacity / per_n2).sqrt() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgemm_timed_peaks_near_43_tflops() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let perf = h
            .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 8192))
            .unwrap();
        // Paper Fig. 6: 43 TFLOPS at N=8192 (≈100% of the 43 plateau).
        assert!((perf.tflops - 43.0).abs() < 3.0, "got {}", perf.tflops);
    }

    #[test]
    fn dgemm_peaks_at_4096() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let t2048 = h
            .gemm_timed(&GemmDesc::square(GemmOp::Dgemm, 2048))
            .unwrap()
            .tflops;
        let t4096 = h
            .gemm_timed(&GemmDesc::square(GemmOp::Dgemm, 4096))
            .unwrap()
            .tflops;
        let t8192 = h
            .gemm_timed(&GemmDesc::square(GemmOp::Dgemm, 8192))
            .unwrap()
            .tflops;
        assert!(t4096 > t2048, "{t2048} -> {t4096}");
        assert!(t4096 > t8192, "peak at 4096: {t4096} -> {t8192}");
        assert!(t4096 > 28.0 && t4096 < 42.0, "got {t4096}");
    }

    #[test]
    fn sgemm_dips_at_pow2_and_recovers_at_65000() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let t8k = h
            .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 8192))
            .unwrap()
            .tflops;
        let t16k = h
            .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 16384))
            .unwrap()
            .tflops;
        let t65k = h
            .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 65000))
            .unwrap()
            .tflops;
        assert!(t16k < 0.75 * t8k, "pow2 dip: {t8k} -> {t16k}");
        assert!(t65k > 0.9 * t8k, "recovery: {t65k} vs {t8k}");
    }

    #[test]
    fn hgemm_stays_on_simd_and_is_slow() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let hgemm = h
            .gemm_timed(&GemmDesc::square(GemmOp::Hgemm, 8192))
            .unwrap();
        let hhs = h.gemm_timed(&GemmDesc::square(GemmOp::Hhs, 8192)).unwrap();
        assert_eq!(
            hgemm.counters.mfma_mops_f16, 0,
            "HGEMM must not touch Matrix Cores"
        );
        assert!(hhs.counters.mfma_mops_f16 > 0);
        let speedup = hhs.tflops / hgemm.tflops;
        // Paper §VII: 2.3–7.5× Matrix Core speedup over the SIMD path.
        assert!(speedup > 4.0 && speedup < 10.0, "speedup {speedup}");
        assert!(
            (hgemm.tflops - 20.0).abs() < 5.0,
            "HGEMM plateau ~20 TF, got {}",
            hgemm.tflops
        );
    }

    #[test]
    fn hhs_outperforms_hss_above_1024() {
        let mut h = BlasHandle::new_mi250x_gcd();
        for n in [2048usize, 8192] {
            let hhs = h
                .gemm_timed(&GemmDesc::square(GemmOp::Hhs, n))
                .unwrap()
                .tflops;
            let hss = h
                .gemm_timed(&GemmDesc::square(GemmOp::Hss, n))
                .unwrap()
                .tflops;
            assert!(hhs >= hss * 0.99, "N={n}: hhs {hhs} vs hss {hss}");
        }
    }

    #[test]
    fn out_of_memory_at_the_papers_boundary() {
        let mut h = BlasHandle::new_mi250x_gcd();
        // 65000² singles fit in 64 GB (paper sweeps to 65000)...
        assert!(h
            .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 65000))
            .is_ok());
        // ...but 65000² doubles do not.
        assert!(matches!(
            h.gemm_timed(&GemmDesc::square(GemmOp::Dgemm, 65000)),
            Err(BlasError::OutOfDeviceMemory { .. })
        ));
        let max_d = h.max_square_n(GemmOp::Dgemm);
        assert!(max_d > 40000 && max_d < 65000, "{max_d}");
    }

    #[test]
    fn functional_and_timed_agree_on_counters() {
        let n = 64;
        let mut h = BlasHandle::new_mi250x_gcd();
        let desc = GemmDesc::square(GemmOp::Sgemm, n);
        let a = vec![1.0f32; n * n];
        let mut b = vec![0.0f32; n * n];
        for i in 0..n {
            b[i * n + i] = 1.0;
        }
        let c = vec![1.0f32; n * n];
        let mut d = vec![0.0f32; n * n];
        let perf = h.sgemm(&desc, &a, &b, &c, &mut d).unwrap();
        // α·A·I + β·C = 0.1 + 0.1 = 0.2 everywhere.
        assert!(d.iter().all(|&x| (x - 0.2).abs() < 1e-6));
        // Counters match the plan's closed-form MFMA count.
        assert_eq!(perf.counters.mfma_mops_f32 * 512, perf.plan.mfma_flops);
    }

    #[test]
    fn small_n_throughput_is_launch_bound() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let t16 = h.gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 16)).unwrap();
        // 2·16³ FLOPs over ≥8 µs: well under a GFLOP/s·1000.
        assert!(t16.tflops < 0.01, "got {}", t16.tflops);
        assert!(t16.time_s >= 8e-6);
    }

    #[test]
    fn bf16_routines_use_matrix_cores_at_full_mixed_rate() {
        use mc_types::Bf16;
        let n = 64;
        let mut h = BlasHandle::new_mi250x_gcd();
        let desc = GemmDesc {
            alpha: 1.0,
            beta: 1.0,
            ..GemmDesc::square(GemmOp::Bhs, n)
        };
        let a = vec![Bf16::ONE; n * n];
        let mut b = vec![Bf16::ZERO; n * n];
        for i in 0..n {
            b[i * n + i] = Bf16::ONE;
        }
        let c = vec![Bf16::ONE; n * n];
        let mut d = vec![Bf16::ZERO; n * n];
        let perf = h.gemm_bhs(&desc, &a, &b, &c, &mut d).unwrap();
        assert!(d.iter().all(|x| x.to_f32() == 2.0));
        // bf16_1k runs at the FP16 mixed rate: MOPS land in the BF16 bank.
        assert!(perf.counters.mfma_mops_bf16 > 0);
        assert_eq!(perf.counters.mfma_mops_f16, 0);

        // Large-N throughput matches the HHS class.
        let bhs = h
            .gemm_timed(&GemmDesc::square(GemmOp::Bhs, 4096))
            .unwrap()
            .tflops;
        let hhs = h
            .gemm_timed(&GemmDesc::square(GemmOp::Hhs, 4096))
            .unwrap()
            .tflops;
        assert!((bhs - hhs).abs() / hhs < 0.02, "{bhs} vs {hhs}");
    }

    #[test]
    fn strict_lint_defaults_track_build_profile() {
        let mut h = BlasHandle::new_mi250x_gcd();
        assert_eq!(h.strict_lint(), cfg!(debug_assertions));
        // Shipped planner kernels are warning-free, so even strict mode
        // launches every routine.
        h.set_strict_lint(true);
        assert!(h.gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 256)).is_ok());
        h.set_strict_lint(false);
        assert!(!h.strict_lint());
    }

    #[test]
    fn traced_gemm_emits_plan_spans_enclosing_kernels() {
        use std::sync::Arc;

        let sink = Arc::new(mc_trace::RingSink::new());
        let mut devices = DeviceRegistry::builtin();
        devices.set_trace_sink(sink.clone());
        let mut h = BlasHandle::from_registry(&devices, DeviceId::Mi250xGcd);
        h.gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 2048))
            .unwrap();
        h.gemm_timed(&GemmDesc::square(GemmOp::Hhs, 2048)).unwrap();

        let events = sink.events();
        let violations = mc_trace::check_invariants(&events);
        assert!(violations.is_empty(), "{violations:?}");

        let spans: Vec<_> = events.iter().filter_map(|e| e.as_span()).collect();
        let plans: Vec<_> = spans
            .iter()
            .filter(|s| s.category == mc_trace::Category::Plan)
            .collect();
        let kernels: Vec<_> = spans
            .iter()
            .filter(|s| s.category == mc_trace::Category::Kernel)
            .collect();
        assert_eq!(plans.len(), 2);
        assert_eq!(kernels.len(), 2);
        // Each plan span exactly covers its kernel's wall window, and
        // the two launches occupy disjoint windows on the timeline.
        for (plan, kernel) in plans.iter().zip(&kernels) {
            assert!((plan.t0_us - kernel.t0_us).abs() < 1e-6);
            assert!((plan.dur_us - kernel.dur_us).abs() < 1e-6);
        }
        assert!(kernels[1].t0_us >= kernels[0].end_us() - 1e-6);
        // The tiling decision is recorded on the plan span.
        assert!(plans[0]
            .args
            .iter()
            .any(|(k, v)| k == "strategy" && *v == mc_trace::ArgValue::Str("matrix-core".into())));
        // The Eq. 2 prediction rides on the span next to the measured
        // time, within the calibrated drift band of each other.
        for plan in &plans {
            let arg = |name: &str| {
                plan.args.iter().find_map(|(k, v)| match v {
                    mc_trace::ArgValue::F64(x) if k == name => Some(*x),
                    _ => None,
                })
            };
            let predicted = arg("predicted_time_s").expect("predicted_time_s arg");
            let measured = arg("measured_time_s").expect("measured_time_s arg");
            assert!(arg("handoff_penalty_s").is_some());
            assert!(predicted > 0.0 && measured > 0.0);
            assert!((plan.dur_us - measured * 1e6).abs() < 1e-6);
            assert!(
                (predicted / measured - 1.0).abs() < 0.5,
                "prediction {predicted} vs measured {measured}"
            );
        }
    }

    #[test]
    fn plan_cache_hits_on_repeated_descriptors() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let desc = GemmDesc::square(GemmOp::Sgemm, 2048);
        h.gemm_timed(&desc).unwrap();
        assert_eq!(h.plan_cache_stats(), PlanCacheStats { hits: 0, misses: 1 });
        h.gemm_timed(&desc).unwrap();
        h.gemm_timed(&desc).unwrap();
        assert_eq!(h.plan_cache_stats(), PlanCacheStats { hits: 2, misses: 1 });
        // A different shape misses; any scalar change does too (α/β are
        // part of the planning input through useful-FLOPs accounting).
        h.gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 4096))
            .unwrap();
        assert_eq!(h.plan_cache_stats().misses, 2);
    }

    #[test]
    fn gemm_ex_plans_once_per_descriptor_launch_pair() {
        let n = 32;
        let mut h = BlasHandle::new_mi250x_gcd();
        let desc = GemmDesc::square(GemmOp::Sgemm, n);
        let a = vec![1.0f32; n * n];
        let b = vec![1.0f32; n * n];
        let c = vec![0.0f32; n * n];
        let mut d = vec![0.0f32; n * n];
        h.sgemm(&desc, &a, &b, &c, &mut d).unwrap();
        // gemm_ex plans for the functional run, then its inner
        // gemm_timed reuses the cached plan instead of re-planning.
        let stats = h.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn plan_search_is_opt_in_and_never_slower_than_static() {
        let desc = GemmDesc::square(GemmOp::Sgemm, 2048);
        let mut fixed = BlasHandle::new_mi250x_gcd();
        assert!(!fixed.plan_search(), "static planning is the default");
        let t_static = fixed.gemm_timed(&desc).unwrap().time_s;

        let mut searching = BlasHandle::new_mi250x_gcd();
        searching.set_plan_search(true);
        let t_searched = searching.gemm_timed(&desc).unwrap().time_s;
        // The static candidate is always a dry-run finalist, so the
        // searched launch can only match or beat it.
        assert!(
            t_searched <= t_static * (1.0 + 1e-9),
            "searched {t_searched} vs static {t_static}"
        );
    }

    #[test]
    fn plan_db_persists_searched_winners_across_handles() {
        let dir = std::env::temp_dir().join(format!("mc-plan-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        let _ = std::fs::remove_file(&path);
        let desc = GemmDesc::square(GemmOp::Sgemm, 1024);

        let mut first = BlasHandle::new_mi250x_gcd();
        first.set_plan_search(true);
        first.set_plan_db_path(path.clone()).unwrap();
        let searched = first.gemm_timed(&desc).unwrap();

        // The winner landed on disk...
        let db = crate::plandb::PlanDb::load(&path).unwrap();
        assert_eq!(db.len(), 1);

        // ...and a fresh handle replays it to an identical strategy
        // (determinism: identical keys yield identical plans).
        let mut second = BlasHandle::new_mi250x_gcd();
        second.set_plan_search(true);
        second.set_plan_db_path(path.clone()).unwrap();
        let replayed = second.gemm_timed(&desc).unwrap();
        assert_eq!(replayed.plan.strategy, searched.plan.strategy);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn throughput_rises_monotonically_to_mid_sizes() {
        let mut h = BlasHandle::new_mi250x_gcd();
        let mut last = 0.0;
        for n in [64usize, 256, 1024, 4096, 8192] {
            let t = h
                .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, n))
                .unwrap()
                .tflops;
            assert!(t > last, "N={n}: {t} vs {last}");
            last = t;
        }
    }
}
