//! GEMM kernel-plan emission and the static fallback strategy.
//!
//! rocBLAS maps an arbitrary GEMM onto Matrix Cores with a two-level
//! tiling strategy chosen at runtime (paper §III): workgroups own
//! *macro-tiles* of C/D, wavefronts own 64×64 *micro-tiles*, and the
//! inner loop feeds fixed-shape MFMA instructions (16×16×16 for mixed
//! precision, 16×16×4 for FP32/FP64) from LDS-staged panels.
//!
//! Two paths produce a [`Strategy`]:
//!
//! - [`select_strategy`] — the **static fallback**: fixed per-datatype
//!   tile heuristics plus the paper's §VII policy rules, used when the
//!   scored search is off and whenever no searched candidate survives
//!   lint. It never consults the simulator.
//! - [`crate::select::select_plan`] — the **scored search**: enumerates
//!   candidate (instruction, macro-tile, wave-tile, k-step, buffering)
//!   tuples ([`crate::enumerate`]), ranks them with the Eq. 2 analytic
//!   model plus simulator dry-runs ([`crate::score`]), and caches
//!   winners in a persisted plan DB ([`crate::plandb`]).
//!
//! Either way, [`build_plan`] turns the chosen [`Strategy`] into the
//! kernel the device runs, and every plan passes the static verifier
//! (`mc-lint`) before it can reach a launch path.
//!
//! The static policy reproduces the paper's §VII findings exactly — and
//! the scored search reproduces them *as outcomes* (see
//! `docs/AUTOTUNE.md`):
//!
//! 1. **HGEMM never uses Matrix Cores** — CDNA2 has no `FP16 ← FP16`
//!    MFMA (Table I) and rocBLAS does not cast through FP32 for the pure
//!    FP16-compute routine, so it runs on the SIMD units
//!    (`V_PK_FMA_F16`), Fig. 8's flat-zero line.
//! 2. **Tiny mixed problems skip Matrix Cores** — at N = 16 the α/β
//!    scaling (which cannot map to MFMA) dominates, and running
//!    everything on SIMD beats splitting work across both pipelines
//!    (the paper's Fig. 8 observation for HHS/HSS at N = 16).
//! 3. Everything else takes the Matrix Core path.
//!
//! FLOP bookkeeping follows the paper's Fig. 9 model: `2N³` operations on
//! Matrix Cores and `3N²` (α/β scaling: one multiply plus one FMA per
//! output element) on SIMD units.

use mc_isa::specs::DieSpec;
use mc_isa::{
    cdna2_catalog, Buffering, KernelDesc, LdsAccess, MatrixInstruction, MemHints, SlotOp, ValuOp,
    ValuOpKind, WaitSpec, WaveProgram,
};
use mc_types::DType;

use crate::types::{BlasError, GemmDesc, GemmOp};

/// Why the planner put a GEMM on the SIMD units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdReason {
    /// No matrix instruction exists for the operation's datatypes
    /// (HGEMM's `FP16 ← FP16`).
    NoMatrixInstruction,
    /// The problem is too small for splitting work across pipelines to
    /// pay off (mixed precision at N ≤ 16 with α/β scaling).
    TinyProblem,
    /// The scored plan search ranked the SIMD candidate ahead of every
    /// surviving Matrix Core candidate (see [`crate::select`]).
    Scored,
}

/// The execution strategy selected for a GEMM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Two-level tiling onto Matrix Cores.
    MatrixCore {
        /// The MFMA instruction feeding the inner loop.
        instr: MatrixInstruction,
        /// Macro-tile (workgroup) dimensions `(mt_m, mt_n)`.
        macro_tile: (usize, usize),
        /// Micro-tile (wavefront) dimensions `(wt_m, wt_n)`.
        wave_tile: (usize, usize),
        /// K advanced per inner-loop iteration.
        k_step: usize,
        /// Global-load pipelining for the LDS panel stage: double
        /// buffering overlaps DRAM with compute at twice the LDS and
        /// fragment-register cost.
        buffering: Buffering,
    },
    /// Vector-ALU (SIMD) execution via packed/scalar FMAs.
    SimdOnly {
        /// The policy rule that fired.
        reason: SimdReason,
    },
}

impl Strategy {
    /// `true` when this strategy uses Matrix Cores.
    pub fn uses_matrix_cores(&self) -> bool {
        matches!(self, Strategy::MatrixCore { .. })
    }
}

/// A planned GEMM: the strategy plus the kernel the device will run and
/// the closed-form work accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct GemmPlan {
    /// The problem this plan solves.
    pub desc: GemmDesc,
    /// Selected strategy.
    pub strategy: Strategy,
    /// The kernel to launch.
    pub kernel: KernelDesc,
    /// Operations issued to Matrix Cores (includes tile padding).
    pub mfma_flops: u64,
    /// Operations issued to SIMD units.
    pub simd_flops: u64,
    /// Warning-severity lint findings for the planned kernel. Error
    /// findings never reach a plan: [`plan_gemm`] rejects them as
    /// [`BlasError::Lint`].
    pub lint: Vec<mc_lint::Diagnostic>,
    /// Warning-severity dataflow findings (`mc-flow`). Error findings
    /// (LDS races, insufficient waitcnts, register overflows) never
    /// reach a plan: [`build_plan`] rejects them as [`BlasError::Flow`].
    pub flow: Vec<mc_flow::FlowDiagnostic>,
}

impl GemmPlan {
    /// Useful problem FLOPs (`2mnk + 3mn`), the throughput numerator.
    pub fn useful_flops(&self) -> u64 {
        self.desc.useful_flops()
    }
}

/// The macro-tile edge the **static fallback** uses per datatype: larger
/// tiles for FP64 trade occupancy for DRAM-traffic reduction.
///
/// The scored search does not consult this heuristic — it enumerates the
/// whole tile space and ranks it — so this value only shapes plans when
/// the search is off or no searched candidate survives lint.
pub(crate) fn preferred_macro_tile(op: GemmOp) -> usize {
    match op {
        GemmOp::Dgemm => 256,
        _ => 128,
    }
}

pub(crate) fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Selects the execution strategy for a GEMM with the static fallback
/// policy (rules 1–3 above). Never consults the simulator; the scored
/// alternative is [`crate::select::select_plan`].
pub fn select_strategy(desc: &GemmDesc) -> Strategy {
    let op = desc.op;
    let catalog = cdna2_catalog();
    // HGEMM computes in FP16 and there is no FP16-accumulating MFMA
    // (Table I); casting through the FP32-accumulating instruction would
    // change the routine's semantics, so rocBLAS leaves HGEMM on SIMD
    // (§VII: "HGEMM does not utilize Matrix Cores at all").
    let (mfma_cd, mfma_ab) = op.mfma_pair();
    if !catalog.supports_types(mfma_cd, mfma_ab) {
        return Strategy::SimdOnly {
            reason: SimdReason::NoMatrixInstruction,
        };
    }
    // Tiny mixed problems: one MFMA's worth of work does not amortize
    // splitting the α/β scaling onto the SIMD pipeline (§VII, N = 16).
    let needs_scaling = desc.alpha != 1.0 || desc.beta != 0.0;
    let half_inputs = op.type_ab().size_bytes() == 2 && op.type_ab().is_float();
    if half_inputs && desc.m.max(desc.n).max(desc.k) <= 16 && needs_scaling {
        return Strategy::SimdOnly {
            reason: SimdReason::TinyProblem,
        };
    }

    // Pick the instruction: 16x16x16 for mixed (the shape the paper
    // names in §III), 16x16x4 for FP32/FP64. A catalog that supports the
    // type pair but lacks a 16x16 variant cannot feed the rocBLAS tiling,
    // so the plan degrades to SIMD instead of panicking.
    let Some(&instr) = catalog.best_16x16(mfma_cd, mfma_ab) else {
        return Strategy::SimdOnly {
            reason: SimdReason::NoMatrixInstruction,
        };
    };

    // Wave tiles are up to 64×64; the macro-tile must be a whole number
    // of wave tiles so every output element has an owning wavefront.
    let mt = preferred_macro_tile(op);
    let wt_m = 64.min(round_up(desc.m, 16));
    let wt_n = 64.min(round_up(desc.n, 16));
    let mt_m = mt.min(round_up(desc.m, wt_m));
    let mt_n = mt.min(round_up(desc.n, wt_n));

    Strategy::MatrixCore {
        instr,
        macro_tile: (mt_m, mt_n),
        wave_tile: (wt_m, wt_n),
        k_step: instr.shape.k as usize,
        buffering: Buffering::Double,
    }
}

/// Plans a GEMM for one die with the static fallback strategy.
pub fn plan_gemm(die: &DieSpec, desc: &GemmDesc) -> Result<GemmPlan, BlasError> {
    // Validate before strategy selection: tile clamping divides by
    // problem-derived sizes.
    desc.validate()?;
    build_plan(die, desc, select_strategy(desc))
}

/// Compiles an explicit [`Strategy`] into a lint-gated [`GemmPlan`]:
/// kernel program, memory hints, and closed-form work accounting.
///
/// This is the single trunk both planners share — [`plan_gemm`] feeds it
/// the static strategy, the scored search feeds it each enumerated
/// candidate. Every compiled kernel passes through the static verifier
/// before it can reach a launch path: errors reject the plan outright,
/// warnings ride along for the handle to log (or deny, in strict mode).
pub fn build_plan(
    die: &DieSpec,
    desc: &GemmDesc,
    strategy: Strategy,
) -> Result<GemmPlan, BlasError> {
    desc.validate()?;
    let mut plan = match strategy {
        Strategy::MatrixCore {
            instr,
            macro_tile,
            wave_tile,
            k_step,
            buffering,
        } => plan_matrix_core(
            die, desc, strategy, &instr, macro_tile, wave_tile, k_step, buffering,
        ),
        Strategy::SimdOnly { .. } => plan_simd(die, desc, strategy),
    };
    let report = mc_lint::lint_kernel(die, &plan.kernel);
    if report.has_errors() {
        return Err(BlasError::Lint(report));
    }
    plan.lint = report.warnings().into_iter().cloned().collect();
    // Same contract for the dataflow verifier: a plan with an LDS race,
    // an unretired-load consumer, or an over-budget working set never
    // leaves the planner — autotune winners are race-free by
    // construction because losing candidates error out here.
    let flow = mc_flow::analyze_kernel(die, &plan.kernel);
    if flow.has_errors() {
        return Err(BlasError::Flow(flow));
    }
    plan.flow = flow.warnings().into_iter().cloned().collect();
    Ok(plan)
}

fn mem_hints(
    die: &DieSpec,
    desc: &GemmDesc,
    macro_tile: (usize, usize),
    buffering: Buffering,
) -> MemHints {
    let ab = desc.op.type_ab().size_bytes() as u64;
    let cd = desc.op.type_cd().size_bytes() as u64;
    let (m, n, k) = (desc.m as u64, desc.n as u64, desc.k as u64);
    let (mt_m, mt_n) = (macro_tile.0 as u64, macro_tile.1 as u64);

    // One workgroup's A row-panel + B column-panel; L2 residency of these
    // panels across concurrent workgroups governs DRAM refetch.
    let panel_bytes = (mt_m + mt_n) * k * ab;
    let l2 = u64::from(die.l2_kib) * 1024;
    let miss = (panel_bytes as f64 / l2 as f64).clamp(0.3, 1.0);

    let refetch_a = n.div_ceil(mt_n) as f64;
    let refetch_b = m.div_ceil(mt_m) as f64;
    let ab_traffic = ((m * k) as f64 * refetch_a + (k * n) as f64 * refetch_b) * ab as f64 * miss;
    let cd_reads = if desc.beta != 0.0 { m * n * cd } else { 0 };
    let cd_traffic = (cd_reads + m * n * cd) as f64;

    // Power-of-two channel camping: rows whose byte stride is a large
    // multiple of the channel interleave (64 KiB-aligned power-of-two)
    // collide on the same channels (Fig. 6/7 dips at N = 2^k).
    let row_bytes = n * ab;
    let pow2_stride = row_bytes >= 65536 && row_bytes.is_power_of_two();

    MemHints {
        hbm_bytes: (ab_traffic + cd_traffic) as u64,
        working_set_bytes: desc.footprint_bytes(),
        pow2_stride,
        buffering,
    }
}

#[allow(clippy::too_many_arguments)]
fn plan_matrix_core(
    die: &DieSpec,
    desc: &GemmDesc,
    strategy: Strategy,
    instr: &MatrixInstruction,
    macro_tile: (usize, usize),
    wave_tile: (usize, usize),
    k_step: usize,
    buffering: Buffering,
) -> GemmPlan {
    let (mt_m, mt_n) = macro_tile;
    let (wt_m, wt_n) = wave_tile;
    let ab_bytes = desc.op.type_ab().size_bytes();
    let cd_bytes = desc.op.type_cd().size_bytes();

    let waves_per_wg = ((mt_m / wt_m) * (mt_n / wt_n)) as u32;
    let workgroups = (desc.m.div_ceil(mt_m) * desc.n.div_ceil(mt_n)) as u64;
    let k_iters = desc.k.div_ceil(k_step) as u64;
    let mfma_per_iter = ((wt_m / 16) * (wt_n / 16)) as u64;

    // Per-iteration memory movement (per lane): the workgroup stages
    // (mt_m + mt_n)·k_step panel elements through LDS; each wave then
    // reads its (wt_m + wt_n)·k_step slice.
    let stage_bytes = (mt_m + mt_n) * k_step * ab_bytes;
    let stage_bpl = (stage_bytes / waves_per_wg as usize / 64).max(1) as u32;
    let read_bytes = (wt_m + wt_n) * k_step * ab_bytes;
    let read_bpl = (read_bytes / 64).max(1) as u32;

    // The staged panel lives in LDS buffer 0. Double buffering rotates
    // the read/write stages in anti-phase (read stage `i % 2`, write the
    // next panel into stage `(i+1) % 2`) with one barrier per iteration;
    // single buffering reuses stage 0 and needs a second barrier to
    // protect the next overwrite from this iteration's readers. Both
    // shapes carry the waitcnts that publish data before it is consumed
    // — `mc-flow` proves the race-freedom instead of assuming it.
    let (prologue, mut body, body_tail) = match buffering {
        Buffering::Double => {
            let prologue = vec![
                SlotOp::Scalar,
                SlotOp::global_load(stage_bpl),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(stage_bpl, LdsAccess::fixed(0)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::Barrier,
            ];
            let body = vec![
                SlotOp::global_load(stage_bpl),
                SlotOp::lds_read(read_bpl, LdsAccess::rotating(0, 0, 2)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            ];
            // After the MFMA block: wait for the prefetch, stage it into
            // the off-stage, drain, barrier — 5 issue slots that count
            // against the MFMA hazard window.
            (prologue, body, 5u32)
        }
        Buffering::Single => {
            let body = vec![
                SlotOp::global_load(stage_bpl),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(stage_bpl, LdsAccess::fixed(0)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::Barrier,
                SlotOp::lds_read(read_bpl, LdsAccess::fixed(0)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            ];
            // After the MFMA block: `Scalar`, `Barrier` — 2 issue slots.
            (vec![SlotOp::Scalar], body, 2u32)
        }
    };
    body.extend(std::iter::repeat_n(
        SlotOp::Mfma(*instr),
        mfma_per_iter as usize,
    ));
    match buffering {
        Buffering::Double => body.extend([
            SlotOp::Waitcnt(WaitSpec::vm(0)),
            SlotOp::lds_write(stage_bpl, LdsAccess::rotating(0, 1, 2)),
            SlotOp::Scalar,
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            SlotOp::Barrier,
        ]),
        Buffering::Single => body.extend([SlotOp::Scalar, SlotOp::Barrier]),
    }

    // Epilogue: β·C read, α/β scaling on SIMD (one V_MUL + one V_FMA per
    // output element — the paper's 3N² term), optional casts, store D.
    let scale_insts = ((wt_m * wt_n) / 64).max(1) as u64;
    let compute = desc.op.compute_type();
    let cd_bpl = ((wt_m * wt_n * cd_bytes) / 64).max(1) as u32;
    // Hazard gap between the loop's last MFMA and the AccVGPR-consuming
    // scaling VALU ops, sized to the instruction's pipeline depth. The
    // loop tail plus the epilogue's own C load and waitcnt already
    // absorb independent issue slots; pad only the remainder.
    let snop_gap = mc_lint::required_snop_gap(instr)
        .saturating_sub(body_tail + 2)
        .min(u32::from(u8::MAX)) as u8;
    let mut epilogue = vec![SlotOp::global_load(cd_bpl)];
    if snop_gap > 0 {
        epilogue.push(SlotOp::SNop(snop_gap));
    }
    epilogue.push(SlotOp::Waitcnt(WaitSpec::vm(0)));
    // HHS stores FP16 C/D around an FP32 compute pipeline; Quant8
    // dequantizes INT32 accumulators to FP32: cast traffic either way.
    let needs_cast = desc.op.type_cd() != compute || desc.op.mfma_pair().0 != compute;
    if needs_cast {
        epilogue.extend(std::iter::repeat_n(
            SlotOp::Valu(ValuOp::new(ValuOpKind::Move, compute)),
            scale_insts as usize,
        ));
    }
    epilogue.extend(std::iter::repeat_n(
        SlotOp::Valu(ValuOp::new(ValuOpKind::Mul, compute)),
        scale_insts as usize,
    ));
    epilogue.extend(std::iter::repeat_n(
        SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, compute)),
        scale_insts as usize,
    ));
    if needs_cast {
        epilogue.extend(std::iter::repeat_n(
            SlotOp::Valu(ValuOp::new(ValuOpKind::Move, compute)),
            scale_insts as usize,
        ));
    }
    epilogue.push(SlotOp::global_store(cd_bpl));

    let program = WaveProgram {
        prologue,
        body,
        body_iterations: k_iters,
        epilogue,
    };

    // Register/LDS footprint: accumulators dominate. Double buffering
    // keeps two panel stages in LDS and two fragment sets in flight;
    // single buffering halves both, trading occupancy headroom for a
    // serialized DRAM pipeline (the search weighs that trade).
    let stages = match buffering {
        Buffering::Double => 2u32,
        Buffering::Single => 1u32,
    };
    let acc_vgprs = ((wt_m * wt_n / 64) * desc.op.compute_type().vgprs_per_element()) as u32;
    let arch_vgprs = 32 + (instr.a_vgprs_per_lane() + instr.b_vgprs_per_lane()) * stages;
    let lds = (stage_bytes * stages as usize) as u32;

    let mfma_flops = workgroups * u64::from(waves_per_wg) * k_iters * mfma_per_iter * instr.flops();
    let simd_flops = workgroups * u64::from(waves_per_wg) * scale_insts * (64 + 128);

    let kernel = KernelDesc {
        waves_per_workgroup: waves_per_wg,
        workgroups,
        lds_bytes_per_workgroup: lds,
        arch_vgprs,
        acc_vgprs,
        mem_hints: mem_hints(die, desc, macro_tile, buffering),
        ..KernelDesc::new(format!("gemm_{}_{}", desc.op, instr.mnemonic()), program)
    };

    GemmPlan {
        desc: *desc,
        strategy,
        kernel,
        mfma_flops,
        simd_flops,
        lint: Vec::new(),
        flow: Vec::new(),
    }
}

/// SIMD-path plan: packed-FP16 FMA inner loop (HGEMM), or scalar FMA for
/// the tiny-problem mixed fallback.
fn plan_simd(die: &DieSpec, desc: &GemmDesc, strategy: Strategy) -> GemmPlan {
    let compute = desc.op.compute_type();
    let ab_bytes = desc.op.type_ab().size_bytes();
    let cd_bytes = desc.op.type_cd().size_bytes();

    let mt = 128.min(round_up(desc.m.max(desc.n), 16));
    let mt_m = mt.min(round_up(desc.m, 16));
    let mt_n = mt.min(round_up(desc.n, 16));
    let wt_m = 64.min(mt_m);
    let wt_n = 64.min(mt_n);
    let waves_per_wg = ((mt_m / wt_m) * (mt_n / wt_n)) as u32;
    let workgroups = (desc.m.div_ceil(mt_m) * desc.n.div_ceil(mt_n)) as u64;

    // Inner loop: advance k by 8 per iteration; each lane owns
    // wt_m·wt_n/64 output elements and performs one MAC per element per
    // k — packed two-wide for FP16.
    let k_step = 8usize;
    let k_iters = desc.k.div_ceil(k_step) as u64;
    let elems_per_lane = ((wt_m * wt_n) / 64).max(1);
    let macs = elems_per_lane * k_step;
    let (fma_op, fma_insts) = if compute == DType::F16 {
        (ValuOp::new(ValuOpKind::PackedFma, DType::F16), macs / 2)
    } else {
        (ValuOp::new(ValuOpKind::Fma, compute), macs)
    };
    // The SIMD path is not hand-scheduled assembly: unpack/pack, LDS
    // addressing, and operand shuffles cost ~1.25 auxiliary VALU ops per
    // FMA (calibrated to the paper's HGEMM plateau, §VII).
    let aux_moves = fma_insts + fma_insts / 4;

    let stage_bytes = (mt_m + mt_n) * k_step * ab_bytes;
    let stage_bpl = (stage_bytes / waves_per_wg as usize / 64).max(1) as u32;

    // Same double-buffered LDS ping-pong as the matrix-core path: the
    // prologue primes stage 0, each iteration reads stage `i % 2` while
    // prefetching the next panel into stage `(i+1) % 2`.
    let mut body = vec![
        SlotOp::global_load(stage_bpl),
        SlotOp::lds_read(stage_bpl, LdsAccess::rotating(0, 0, 2)),
        SlotOp::Waitcnt(WaitSpec::lgkm(0)),
    ];
    body.extend(std::iter::repeat_n(SlotOp::Valu(fma_op), fma_insts));
    body.extend(std::iter::repeat_n(
        SlotOp::Valu(ValuOp::new(ValuOpKind::Move, compute)),
        aux_moves,
    ));
    body.extend([
        SlotOp::Waitcnt(WaitSpec::vm(0)),
        SlotOp::lds_write(stage_bpl, LdsAccess::rotating(0, 1, 2)),
        SlotOp::Scalar,
        SlotOp::Waitcnt(WaitSpec::lgkm(0)),
        SlotOp::Barrier,
    ]);

    let scale_insts = elems_per_lane as u64;
    let cd_bpl = ((wt_m * wt_n * cd_bytes) / 64).max(1) as u32;
    let mut epilogue = vec![
        SlotOp::global_load(cd_bpl),
        SlotOp::Waitcnt(WaitSpec::vm(0)),
    ];
    epilogue.extend(std::iter::repeat_n(
        SlotOp::Valu(ValuOp::new(ValuOpKind::Mul, compute)),
        scale_insts as usize,
    ));
    epilogue.extend(std::iter::repeat_n(
        SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, compute)),
        scale_insts as usize,
    ));
    epilogue.push(SlotOp::global_store(cd_bpl));

    let program = WaveProgram {
        prologue: vec![
            SlotOp::Scalar,
            SlotOp::global_load(stage_bpl),
            SlotOp::Waitcnt(WaitSpec::vm(0)),
            SlotOp::lds_write(stage_bpl, LdsAccess::fixed(0)),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            SlotOp::Barrier,
        ],
        body,
        body_iterations: k_iters,
        epilogue,
    };

    let macs_flops = if compute == DType::F16 {
        fma_insts as u64 * 256 // packed: 4 FLOPs × 64 lanes
    } else {
        fma_insts as u64 * 128
    };
    let simd_flops =
        workgroups * u64::from(waves_per_wg) * (k_iters * macs_flops + scale_insts * (64 + 128));

    let kernel = KernelDesc {
        waves_per_workgroup: waves_per_wg,
        workgroups,
        lds_bytes_per_workgroup: (stage_bytes * waves_per_wg as usize) as u32,
        arch_vgprs: 64 + ((elems_per_lane * compute.vgprs_per_element()).min(192)) as u32,
        acc_vgprs: 0,
        // SIMD kernels keep the default double-buffered stream: the
        // VALU loop is long enough to hide panel loads either way.
        mem_hints: mem_hints(die, desc, (mt_m, mt_n), Buffering::Double),
        ..KernelDesc::new(format!("gemm_{}_simd", desc.op), program)
    };

    GemmPlan {
        desc: *desc,
        strategy,
        kernel,
        mfma_flops: 0,
        simd_flops,
        lint: Vec::new(),
        flow: Vec::new(),
    }
}

/// Extension trait: lookup of the 16×16 instruction family the rocBLAS
/// tiling uses.
trait CatalogExt {
    fn best_16x16(&self, cd: DType, ab: DType) -> Option<&MatrixInstruction>;
}

impl CatalogExt for mc_isa::IsaCatalog {
    fn best_16x16(&self, cd: DType, ab: DType) -> Option<&MatrixInstruction> {
        self.instructions()
            .iter()
            .filter(|i| {
                !i.legacy && i.cd == cd && i.ab == ab && i.shape.m == 16 && i.shape.blocks == 1
            })
            .max_by_key(|i| i.shape.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    #[test]
    fn hgemm_never_uses_matrix_cores() {
        for n in [16, 256, 4096, 16384] {
            let s = select_strategy(&GemmDesc::square(GemmOp::Hgemm, n));
            assert!(
                matches!(
                    s,
                    Strategy::SimdOnly {
                        reason: SimdReason::NoMatrixInstruction
                    }
                ),
                "N={n}"
            );
        }
    }

    #[test]
    fn tiny_mixed_problems_fall_back_to_simd() {
        // Paper Fig. 8: HHS and HSS do not use Matrix Cores at N=16.
        for op in [GemmOp::Hhs, GemmOp::Hss] {
            let s = select_strategy(&GemmDesc::square(op, 16));
            assert!(
                matches!(
                    s,
                    Strategy::SimdOnly {
                        reason: SimdReason::TinyProblem
                    }
                ),
                "{op}"
            );
            // ... but do at N=32.
            let s = select_strategy(&GemmDesc::square(op, 32));
            assert!(s.uses_matrix_cores(), "{op}");
        }
        // Without scaling work there is no reason to skip Matrix Cores.
        let unscaled = GemmDesc {
            alpha: 1.0,
            beta: 0.0,
            ..GemmDesc::square(GemmOp::Hhs, 16)
        };
        assert!(select_strategy(&unscaled).uses_matrix_cores());
    }

    #[test]
    fn sgemm_dgemm_use_matrix_cores_even_at_16() {
        for op in [GemmOp::Sgemm, GemmOp::Dgemm] {
            let s = select_strategy(&GemmDesc::square(op, 16));
            assert!(s.uses_matrix_cores(), "{op}");
        }
    }

    #[test]
    fn instruction_selection_matches_paper() {
        // §III: "executing 16×16×16 operations on Matrix Cores" (mixed);
        // FP32/FP64 use their 16x16x4 shapes.
        let s = select_strategy(&GemmDesc::square(GemmOp::Hhs, 1024));
        if let Strategy::MatrixCore { instr, .. } = s {
            assert_eq!(instr.mnemonic(), "v_mfma_f32_16x16x16f16");
        } else {
            panic!("expected matrix-core strategy");
        }
        let s = select_strategy(&GemmDesc::square(GemmOp::Dgemm, 1024));
        if let Strategy::MatrixCore { instr, k_step, .. } = s {
            assert_eq!(instr.mnemonic(), "v_mfma_f64_16x16x4f64");
            assert_eq!(k_step, 4);
        } else {
            panic!("expected matrix-core strategy");
        }
    }

    #[test]
    fn flop_accounting_matches_fig9_model() {
        // For N a multiple of the macro-tile: exactly 2N³ on Matrix
        // Cores and 3N² on SIMD units.
        for (op, n) in [
            (GemmOp::Sgemm, 1024),
            (GemmOp::Hhs, 2048),
            (GemmOp::Dgemm, 1024),
        ] {
            let plan = plan_gemm(&die(), &GemmDesc::square(op, n)).unwrap();
            let n = n as u64;
            assert_eq!(plan.mfma_flops, 2 * n.pow(3), "{op} mfma");
            assert_eq!(plan.simd_flops, 3 * n.pow(2), "{op} simd");
            // The kernel program must agree with the closed-form count.
            assert_eq!(
                plan.kernel.total_mfma_flops(),
                plan.mfma_flops,
                "{op} kernel"
            );
        }
    }

    #[test]
    fn hgemm_flops_are_all_simd() {
        let n = 1024u64;
        let plan = plan_gemm(&die(), &GemmDesc::square(GemmOp::Hgemm, n as usize)).unwrap();
        assert_eq!(plan.mfma_flops, 0);
        // 2N³ MACs + 3N² scaling, all on SIMD.
        assert_eq!(plan.simd_flops, 2 * n.pow(3) + 3 * n.pow(2));
        assert_eq!(plan.kernel.total_mfma_flops(), 0);
        assert_eq!(plan.kernel.total_flops(), plan.simd_flops);
    }

    #[test]
    fn padding_only_inflates_non_multiple_sizes() {
        let plan = plan_gemm(&die(), &GemmDesc::square(GemmOp::Sgemm, 1000)).unwrap();
        let ideal = 2 * 1000u64.pow(3);
        assert!(plan.mfma_flops >= ideal);
        assert!(plan.mfma_flops < ideal * 11 / 10, "padding under 10%");
    }

    #[test]
    fn small_problem_geometry() {
        let plan = plan_gemm(&die(), &GemmDesc::square(GemmOp::Sgemm, 16)).unwrap();
        assert_eq!(plan.kernel.workgroups, 1);
        assert_eq!(plan.kernel.waves_per_workgroup, 1);
        assert_eq!(plan.mfma_flops, 4 * 2048); // 16x16x16 via 4 × 16x16x4
    }

    #[test]
    fn mem_hints_flag_pow2_strides() {
        let d = die();
        let p = plan_gemm(&d, &GemmDesc::square(GemmOp::Sgemm, 16384)).unwrap();
        assert!(p.kernel.mem_hints.pow2_stride);
        let p = plan_gemm(&d, &GemmDesc::square(GemmOp::Sgemm, 8192)).unwrap();
        assert!(
            !p.kernel.mem_hints.pow2_stride,
            "32 KiB rows stay under the camping threshold"
        );
        let p = plan_gemm(&d, &GemmDesc::square(GemmOp::Dgemm, 8192)).unwrap();
        assert!(p.kernel.mem_hints.pow2_stride, "64 KiB f64 rows collide");
        let p = plan_gemm(&d, &GemmDesc::square(GemmOp::Sgemm, 65000)).unwrap();
        assert!(!p.kernel.mem_hints.pow2_stride, "non-power-of-two recovers");
    }

    #[test]
    fn dram_traffic_grows_superlinearly_past_l2() {
        let d = die();
        let t = |n: usize| {
            plan_gemm(&d, &GemmDesc::square(GemmOp::Sgemm, n))
                .unwrap()
                .kernel
                .mem_hints
                .hbm_bytes as f64
        };
        // Panel-miss factor saturates: traffic/N³ rises then plateaus.
        let r4k = t(4096) / 4096f64.powi(3);
        let r8k = t(8192) / 8192f64.powi(3);
        let r16k = t(16384) / 16384f64.powi(3);
        assert!(r8k > r4k * 1.5, "{r4k} {r8k}");
        assert!((r16k - r8k).abs() / r8k < 0.15, "saturated: {r8k} {r16k}");
    }

    #[test]
    fn zero_dimension_rejected() {
        let bad = GemmDesc {
            m: 0,
            ..GemmDesc::square(GemmOp::Sgemm, 64)
        };
        assert!(plan_gemm(&die(), &bad).is_err());
    }

    #[test]
    fn dash_s_verification_of_planned_kernels() {
        // The paper's §IV-A methodology, applied to our own kernels:
        // count matrix instructions in the compiled loop.
        use mc_isa::disasm::kernel_stats;
        let d = die();
        // HHS 64x64 wave tile: 16 MFMAs per k-iteration, MC strategy.
        let p = plan_gemm(&d, &GemmDesc::square(GemmOp::Hhs, 4096)).unwrap();
        assert_eq!(kernel_stats(&p.kernel).mfma_per_iteration, 16);
        // HGEMM: zero MFMAs anywhere in the program.
        let p = plan_gemm(&d, &GemmDesc::square(GemmOp::Hgemm, 4096)).unwrap();
        let s = kernel_stats(&p.kernel);
        assert_eq!(s.mfma_per_iteration, 0);
        assert!(s.valu_per_iteration > 0);
        // And the listing names the exact instruction.
        let p = plan_gemm(&d, &GemmDesc::square(GemmOp::Dgemm, 4096)).unwrap();
        let text = mc_isa::disasm::disassemble(&p.kernel);
        assert!(text.contains("v_mfma_f64_16x16x4f64"), "{text}");
    }

    #[test]
    fn every_planned_kernel_lints_clean() {
        let d = die();
        for op in GemmOp::ALL {
            for n in [16, 1024, 4000] {
                let p = plan_gemm(&d, &GemmDesc::square(op, n)).unwrap();
                assert!(p.lint.is_empty(), "{op} N={n}: {:?}", p.lint);
            }
        }
    }

    #[test]
    fn dgemm_uses_larger_macro_tile() {
        let p = plan_gemm(&die(), &GemmDesc::square(GemmOp::Dgemm, 4096)).unwrap();
        if let Strategy::MatrixCore { macro_tile, .. } = p.strategy {
            assert_eq!(macro_tile, (256, 256));
        } else {
            panic!("expected matrix-core strategy");
        }
        assert_eq!(p.kernel.waves_per_workgroup, 16);
    }
}
