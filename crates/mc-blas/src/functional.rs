//! Host-side functional GEMM execution.
//!
//! Executes `D ← α·A·B + β·C` on real data with the precision semantics
//! of the device datapath: every product and partial sum rounds through
//! the routine's compute type (FP16 for HGEMM — which is why HGEMM is
//! not just slow but also *less accurate*), and the α/β scaling is
//! applied in the compute type, mirroring the paper's Fig. 9
//! decomposition.
//!
//! Both planner strategies execute on the shared [`mc_compute::Auto`]
//! dispatch ([`crate::select::host_gemm_backend`]), a three-tier
//! ladder: the naive triple loop below the crossover edge, and above
//! it the explicit-SIMD microkernel ([`mc_compute::Simd`]) when the
//! vector unit and dtype pairing allow, else the cache-blocked
//! packed-panel kernel — bit-for-bit identical at every tier, so
//! routing only moves time. The strategies differ only in the epilogue
//! rounding:
//!
//! * **Matrix Core** — the accumulator registers live in the compute
//!   type, so the epilogue sum rounds through `CT` before the output
//!   cast ([`Epilogue::ComputeRounded`]). The path first validates the
//!   planner's instruction shape against the device catalog through the
//!   [`mc_wmma`] fragment API, so a catalog miss still surfaces as the
//!   same lint diagnostic it always did.
//! * **SIMD** — per-element MACs write straight to the output type
//!   ([`Epilogue::Direct`]).
//!
//! All matrices are row-major with leading dimension equal to their
//! width (the experiment harnesses only need dense square problems).

use mc_compute::{Epilogue, GemmParams, MatMul, Trans};
use mc_types::Real;
use mc_wmma::{mma_sync, Accumulator, Fragment, MatrixA, MatrixB};

use crate::planner::Strategy;
use crate::types::{BlasError, GemmDesc, Transpose};

/// Index of `op(A)[i][p]` in A's stored row-major layout.
#[inline]
fn a_index(desc: &GemmDesc, i: usize, p: usize) -> usize {
    match desc.trans_a {
        crate::types::Transpose::None => i * desc.k + p,
        crate::types::Transpose::Trans => p * desc.m + i,
    }
}

/// Index of `op(B)[p][j]` in B's stored row-major layout.
#[inline]
fn b_index(desc: &GemmDesc, p: usize, j: usize) -> usize {
    match desc.trans_b {
        crate::types::Transpose::None => p * desc.n + j,
        crate::types::Transpose::Trans => j * desc.k + p,
    }
}

/// Computes the `f64` reference `D ← α·op(A)·op(B) + β·C` (no rounding
/// between operations) for validation.
pub fn gemm_reference_f64(
    desc: &GemmDesc,
    a: &[f64],
    b: &[f64],
    c: &[f64],
    d: &mut [f64],
) -> Result<(), BlasError> {
    check_buffers(desc, a.len(), b.len(), c.len(), d.len())?;
    let (m, n, k) = (desc.m, desc.n, desc.k);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[a_index(desc, i, p)] * b[b_index(desc, p, j)];
            }
            d[i * n + j] = desc.alpha * acc + desc.beta * c[i * n + j];
        }
    }
    Ok(())
}

fn check_buffers(desc: &GemmDesc, a: usize, b: usize, c: usize, d: usize) -> Result<(), BlasError> {
    desc.validate()?;
    let need = [
        ("A", desc.m * desc.k, a),
        ("B", desc.k * desc.n, b),
        ("C", desc.m * desc.n, c),
        ("D", desc.m * desc.n, d),
    ];
    for (operand, required, provided) in need {
        if provided < required {
            return Err(BlasError::BufferTooSmall {
                operand,
                required,
                provided,
            });
        }
    }
    Ok(())
}

/// Translates a library descriptor into compute-backend parameters.
fn to_params(desc: &GemmDesc, epilogue: Epilogue) -> GemmParams {
    let map = |t: Transpose| match t {
        Transpose::None => Trans::None,
        Transpose::Trans => Trans::Trans,
    };
    GemmParams::new(desc.m, desc.n, desc.k)
        .with_scaling(desc.alpha, desc.beta)
        .with_transposes(map(desc.trans_a), map(desc.trans_b))
        .with_epilogue(epilogue)
}

/// Maps a compute-backend error into the library error type.
fn compute_to_blas(e: mc_compute::ComputeError) -> BlasError {
    match e {
        mc_compute::ComputeError::BufferTooSmall {
            operand,
            required,
            provided,
        } => BlasError::BufferTooSmall {
            operand,
            required,
            provided,
        },
    }
}

/// Runs a GEMM functionally according to a planner [`Strategy`].
///
/// `AB` is the input element type, `CD` the output element type, and
/// `CT` the compute type (Table III). The three are constrained by the
/// caller; see [`crate::handle::BlasHandle`] for the typed entry points.
pub fn run_functional<AB, CD, CT>(
    desc: &GemmDesc,
    strategy: &Strategy,
    a: &[AB],
    b: &[AB],
    c: &[CD],
    d: &mut [CD],
) -> Result<(), BlasError>
where
    AB: Real,
    CD: Real,
    CT: Real,
{
    run_functional_with::<AB, CD, CT>(
        &crate::select::host_gemm_backend(),
        desc,
        strategy,
        a,
        b,
        c,
        d,
    )
}

/// [`run_functional`] with a caller-held backend: batch loops resolve
/// the dispatcher (an environment read) once and reuse it across every
/// entry instead of rebuilding it per problem.
#[allow(clippy::too_many_arguments)]
pub fn run_functional_with<AB, CD, CT>(
    backend: &mc_compute::Auto,
    desc: &GemmDesc,
    strategy: &Strategy,
    a: &[AB],
    b: &[AB],
    c: &[CD],
    d: &mut [CD],
) -> Result<(), BlasError>
where
    AB: Real,
    CD: Real,
    CT: Real,
{
    check_buffers(desc, a.len(), b.len(), c.len(), d.len())?;
    let epilogue = match strategy {
        Strategy::MatrixCore { .. } => {
            // The Matrix Core path must only run instruction shapes the
            // device catalog knows; probe once through the fragment API
            // so a miss surfaces as the historical lint diagnostic.
            match AB::DTYPE.size_bytes() {
                2 => probe_catalog::<AB, CT, 16>()?,
                _ => probe_catalog::<AB, CT, 4>()?,
            }
            Epilogue::ComputeRounded
        }
        Strategy::SimdOnly { .. } => Epilogue::Direct,
    };
    backend
        .gemm::<AB, CD, CT>(&to_params(desc, epilogue), a, b, c, d)
        .map_err(compute_to_blas)
}

/// Validates the `16×16×TK` instruction shape against the device
/// catalog with one zero-fragment MMA. Kernel math runs on the blocked
/// backend, but support (or not) for the shape is still decided by the
/// same catalog lookup `mma_sync` performs.
fn probe_catalog<AB: Real, CT: Real, const TK: usize>() -> Result<(), BlasError> {
    let fa = Fragment::<MatrixA, AB, 16, 16, TK>::new();
    let fb = Fragment::<MatrixB, AB, 16, 16, TK>::new();
    let c_in = Fragment::<Accumulator, CT, 16, 16, TK>::new();
    let mut acc = Fragment::<Accumulator, CT, 16, 16, TK>::new();
    mma_sync(&mut acc, &fa, &fb, &c_in)
        .map(|_| ())
        .map_err(wmma_to_lint)
}

/// Routes a fragment-API failure through the shared diagnostic type: a
/// catalog miss on the functional path is the same defect class the
/// static verifier reports as `mfma-unknown-instruction`.
fn wmma_to_lint(e: mc_wmma::WmmaError) -> BlasError {
    let diag =
        mc_lint::Diagnostic::error(mc_lint::RuleId::MfmaUnknownInstruction, None, e.to_string())
            .with_help("the planner must only select catalogued Matrix Core instructions");
    BlasError::Lint(mc_lint::LintReport::new(
        "functional matrix-core path",
        vec![diag],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::select_strategy;
    use crate::types::GemmOp;
    use mc_types::{ApproxEq, F16};

    /// A = all ones, B = identity, C = all ones: D must be exactly
    /// α + β everywhere — the paper's §IV-A verification pattern.
    #[test]
    fn ones_identity_pattern_all_ops() {
        let n = 48;
        let desc = GemmDesc {
            alpha: 1.0,
            beta: 1.0,
            ..GemmDesc::square(GemmOp::Hss, n)
        };
        let a = vec![F16::ONE; n * n];
        let mut b = vec![F16::ZERO; n * n];
        for i in 0..n {
            b[i * n + i] = F16::ONE;
        }
        let c = vec![1.0f32; n * n];
        let mut d = vec![0.0f32; n * n];
        let strategy = select_strategy(&desc);
        assert!(strategy.uses_matrix_cores());
        run_functional::<F16, f32, f32>(&desc, &strategy, &a, &b, &c, &mut d).unwrap();
        assert!(d.iter().all(|&x| x == 2.0), "D must be filled with 2");
    }

    #[test]
    fn dgemm_matches_f64_reference_exactly_for_small_ints() {
        let n = 32;
        let desc = GemmDesc {
            alpha: 1.0,
            beta: 2.0,
            ..GemmDesc::square(GemmOp::Dgemm, n)
        };
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let c: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64).collect();
        let mut d = vec![0.0; n * n];
        let mut d_ref = vec![0.0; n * n];
        let strategy = select_strategy(&desc);
        run_functional::<f64, f64, f64>(&desc, &strategy, &a, &b, &c, &mut d).unwrap();
        gemm_reference_f64(&desc, &a, &b, &c, &mut d_ref).unwrap();
        // Small integers: every intermediate is exact, results identical.
        assert_eq!(d, d_ref);
    }

    #[test]
    fn sgemm_close_to_reference() {
        let n = 64;
        let desc = GemmDesc::square(GemmOp::Sgemm, n);
        let a: Vec<f32> = (0..n * n)
            .map(|i| ((i * 37 % 100) as f32) / 100.0 - 0.5)
            .collect();
        let b: Vec<f32> = (0..n * n)
            .map(|i| ((i * 53 % 100) as f32) / 100.0 - 0.5)
            .collect();
        let c: Vec<f32> = (0..n * n).map(|i| (i % 3) as f32).collect();
        let mut d = vec![0.0f32; n * n];
        let strategy = select_strategy(&desc);
        run_functional::<f32, f32, f32>(&desc, &strategy, &a, &b, &c, &mut d).unwrap();

        let af: Vec<f64> = a.iter().map(|&x| f64::from(x)).collect();
        let bf: Vec<f64> = b.iter().map(|&x| f64::from(x)).collect();
        let cf: Vec<f64> = c.iter().map(|&x| f64::from(x)).collect();
        let mut df = vec![0.0; n * n];
        gemm_reference_f64(&desc, &af, &bf, &cf, &mut df).unwrap();
        for (got, want) in d.iter().zip(&df) {
            assert!(
                got.approx_eq_tol(&(*want as f32), 1e-5, 1e-5),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn hgemm_loses_precision_relative_to_hss() {
        // Same input data; HGEMM accumulates in f16, HSS in f32. With
        // many accumulations of ~1.0 values, f16 saturates its 11-bit
        // significand and drifts.
        let n = 128;
        let a: Vec<F16> = (0..n * n)
            .map(|i| F16::from_f32(0.9 + 0.2 * ((i % 10) as f32) / 10.0))
            .collect();
        let b = a.clone();

        let hss_desc = GemmDesc {
            alpha: 1.0,
            beta: 0.0,
            ..GemmDesc::square(GemmOp::Hss, n)
        };
        let c32 = vec![0.0f32; n * n];
        let mut d_hss = vec![0.0f32; n * n];
        run_functional::<F16, f32, f32>(
            &hss_desc,
            &select_strategy(&hss_desc),
            &a,
            &b,
            &c32,
            &mut d_hss,
        )
        .unwrap();

        let hgemm_desc = GemmDesc {
            alpha: 1.0,
            beta: 0.0,
            ..GemmDesc::square(GemmOp::Hgemm, n)
        };
        let c16 = vec![F16::ZERO; n * n];
        let mut d_hgemm = vec![F16::ZERO; n * n];
        run_functional::<F16, F16, F16>(
            &hgemm_desc,
            &select_strategy(&hgemm_desc),
            &a,
            &b,
            &c16,
            &mut d_hgemm,
        )
        .unwrap();

        // Reference.
        let af: Vec<f64> = a.iter().map(|x| x.to_f64()).collect();
        let cf = vec![0.0f64; n * n];
        let mut df = vec![0.0f64; n * n];
        gemm_reference_f64(&hss_desc, &af, &af, &cf, &mut df).unwrap();

        let err = |xs: &[f64]| -> f64 {
            xs.iter()
                .zip(&df)
                .map(|(x, r)| ((x - r) / r).abs())
                .fold(0.0, f64::max)
        };
        let hss_err = err(&d_hss.iter().map(|&x| f64::from(x)).collect::<Vec<_>>());
        let hgemm_err = err(&d_hgemm.iter().map(|x| x.to_f64()).collect::<Vec<_>>());
        assert!(
            hgemm_err > 10.0 * hss_err,
            "hgemm {hgemm_err} vs hss {hss_err}"
        );
        assert!(hss_err < 1e-3);
    }

    #[test]
    fn non_square_and_padded_shapes() {
        let desc = GemmDesc::new(GemmOp::Sgemm, 20, 35, 17, 0.5, 0.25);
        let a: Vec<f32> = (0..desc.m * desc.k)
            .map(|i| (i % 11) as f32 - 5.0)
            .collect();
        let b: Vec<f32> = (0..desc.k * desc.n)
            .map(|i| (i % 13) as f32 - 6.0)
            .collect();
        let c: Vec<f32> = (0..desc.m * desc.n).map(|i| (i % 4) as f32).collect();
        let mut d = vec![0.0f32; desc.m * desc.n];
        run_functional::<f32, f32, f32>(&desc, &select_strategy(&desc), &a, &b, &c, &mut d)
            .unwrap();
        let af: Vec<f64> = a.iter().map(|&x| f64::from(x)).collect();
        let bf: Vec<f64> = b.iter().map(|&x| f64::from(x)).collect();
        let cf: Vec<f64> = c.iter().map(|&x| f64::from(x)).collect();
        let mut df = vec![0.0; desc.m * desc.n];
        gemm_reference_f64(&desc, &af, &bf, &cf, &mut df).unwrap();
        for (got, want) in d.iter().zip(&df) {
            // Quarter-integer arithmetic: exact.
            assert_eq!(f64::from(*got), *want);
        }
    }

    #[test]
    fn transposed_operands_match_explicit_transpose() {
        use crate::types::Transpose;
        let (m, n, k) = (48, 40, 32);
        let a_stored: Vec<f32> = (0..k * m).map(|i| ((i * 7 % 23) as f32) - 11.0).collect(); // k×m (A^T layout)
        let b_stored: Vec<f32> = (0..n * k).map(|i| ((i * 5 % 19) as f32) - 9.0).collect(); // n×k (B^T layout)
        let c: Vec<f32> = (0..m * n).map(|i| (i % 3) as f32).collect();

        let desc = GemmDesc {
            trans_a: Transpose::Trans,
            trans_b: Transpose::Trans,
            ..GemmDesc::new(GemmOp::Sgemm, m, n, k, 1.0, 1.0)
        };
        let mut d = vec![0.0f32; m * n];
        run_functional::<f32, f32, f32>(
            &desc,
            &select_strategy(&desc),
            &a_stored,
            &b_stored,
            &c,
            &mut d,
        )
        .unwrap();

        // Explicitly transpose and run the plain path.
        let mut a_plain = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                a_plain[i * k + p] = a_stored[p * m + i];
            }
        }
        let mut b_plain = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                b_plain[p * n + j] = b_stored[j * k + p];
            }
        }
        let plain = GemmDesc::new(GemmOp::Sgemm, m, n, k, 1.0, 1.0);
        let mut d_plain = vec![0.0f32; m * n];
        run_functional::<f32, f32, f32>(
            &plain,
            &select_strategy(&plain),
            &a_plain,
            &b_plain,
            &c,
            &mut d_plain,
        )
        .unwrap();
        assert_eq!(d, d_plain);

        // And both agree with the f64 reference for these exact inputs.
        let af: Vec<f64> = a_stored.iter().map(|&x| f64::from(x)).collect();
        let bf: Vec<f64> = b_stored.iter().map(|&x| f64::from(x)).collect();
        let cf: Vec<f64> = c.iter().map(|&x| f64::from(x)).collect();
        let mut df = vec![0.0f64; m * n];
        gemm_reference_f64(&desc, &af, &bf, &cf, &mut df).unwrap();
        for (got, want) in d.iter().zip(&df) {
            assert_eq!(f64::from(*got), *want);
        }
    }

    #[test]
    fn buffer_validation() {
        let desc = GemmDesc::square(GemmOp::Sgemm, 16);
        let short = vec![0.0f32; 10];
        let ok = vec![0.0f32; 256];
        let mut d = vec![0.0f32; 256];
        let e = run_functional::<f32, f32, f32>(
            &desc,
            &select_strategy(&desc),
            &short,
            &ok,
            &ok,
            &mut d,
        );
        assert!(matches!(
            e,
            Err(BlasError::BufferTooSmall { operand: "A", .. })
        ));
    }
}
