//! Quantized INT8 GEMM — inference workloads on the `V_MFMA_I32_*_I8`
//! instructions (§II's machine-learning datatypes).
//!
//! Standard symmetric quantization: `A ≈ scale_a · A_q`,
//! `B ≈ scale_b · B_q` with `A_q, B_q ∈ i8`. The matrix units accumulate
//! exactly in INT32 — integer MACs never round — and the epilogue
//! dequantizes once: `D = scale_a·scale_b·(A_q·B_q) + β·C`, all on the
//! SIMD units in FP32. The only approximation in the whole pipeline is
//! the initial quantization of the inputs.

use crate::handle::{BlasHandle, GemmPerf};
use crate::types::{BlasError, GemmDesc, GemmOp};

/// A symmetric-quantized tensor: `values ≈ scale · q`.
#[derive(Clone, Debug, PartialEq)]
pub struct Quantized {
    /// The int8 payload, row-major.
    pub q: Vec<i8>,
    /// The dequantization scale.
    pub scale: f32,
}

/// Symmetrically quantizes an f32 slice to int8 (scale = max|x| / 127).
pub fn quantize(values: &[f32]) -> Quantized {
    let max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
    let q = values
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    Quantized { q, scale }
}

/// Dequantizes back to f32.
pub fn dequantize(q: &Quantized) -> Vec<f32> {
    q.q.iter().map(|&v| f32::from(v) * q.scale).collect()
}

/// Functional quantized GEMM: `D ← scale_a·scale_b·(A_q·B_q) + β·C`.
///
/// Integer accumulation is exact (the i32 accumulator cannot overflow
/// for k ≤ 2¹⁵ with i8 inputs); one FP32 rounding per output element.
#[allow(clippy::too_many_arguments)]
pub fn quantized_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &Quantized,
    b: &Quantized,
    beta: f32,
    c: &[f32],
    d: &mut [f32],
) -> Result<(), BlasError> {
    let checks = [
        ("A", m * k, a.q.len()),
        ("B", k * n, b.q.len()),
        ("C", m * n, c.len()),
        ("D", m * n, d.len()),
    ];
    for (operand, required, provided) in checks {
        if provided < required {
            return Err(BlasError::BufferTooSmall {
                operand,
                required,
                provided,
            });
        }
    }
    // The i32 accumulation is order-free (exact integer MACs), so it
    // runs on the blocked parallel kernel; the single FP32 rounding per
    // element stays here in the dequantization epilogue.
    let mut acc = vec![0i32; m * n];
    mc_compute::gemm_i8(m, n, k, &a.q, &b.q, &mut acc).map_err(|e| match e {
        mc_compute::ComputeError::BufferTooSmall {
            operand,
            required,
            provided,
        } => BlasError::BufferTooSmall {
            operand,
            required,
            provided,
        },
    })?;
    let dequant = a.scale * b.scale;
    for ((out, &sum), &cv) in d[..m * n].iter_mut().zip(&acc).zip(&c[..m * n]) {
        *out = dequant * sum as f32 + beta * cv;
    }
    Ok(())
}

impl BlasHandle {
    /// Quantized GEMM through the full pipeline: functional execution on
    /// host data plus the simulated launch on the INT8 Matrix Core path.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_quant8(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        a: &Quantized,
        b: &Quantized,
        beta: f32,
        c: &[f32],
        d: &mut [f32],
    ) -> Result<GemmPerf, BlasError> {
        quantized_gemm(m, n, k, a, b, beta, c, d)?;
        let desc = GemmDesc {
            alpha: f64::from(a.scale) * f64::from(b.scale),
            beta: f64::from(beta),
            ..GemmDesc::new(GemmOp::Quant8, m, n, k, 1.0, 0.0)
        };
        self.gemm_timed(&desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::select_strategy;

    #[test]
    fn quantize_roundtrip_within_one_step() {
        let values: Vec<f32> = (0..256).map(|i| (i as f32) / 10.0 - 12.8).collect();
        let q = quantize(&values);
        let back = dequantize(&q);
        for (orig, rec) in values.iter().zip(&back) {
            assert!(
                (orig - rec).abs() <= q.scale / 2.0 + 1e-6,
                "{orig} vs {rec}"
            );
        }
    }

    #[test]
    fn zero_input_quantizes_cleanly() {
        let q = quantize(&[0.0; 16]);
        assert_eq!(q.scale, 1.0);
        assert!(q.q.iter().all(|&v| v == 0));
    }

    #[test]
    fn integer_accumulation_is_exact() {
        // Small integers representable exactly in i8: the quantized GEMM
        // with scale 1 must equal the integer reference identically.
        let (m, n, k) = (32, 32, 32);
        let a = Quantized {
            q: (0..m * k).map(|i| ((i % 11) as i8) - 5).collect(),
            scale: 1.0,
        };
        let b = Quantized {
            q: (0..k * n).map(|i| ((i % 7) as i8) - 3).collect(),
            scale: 1.0,
        };
        let c = vec![0.0f32; m * n];
        let mut d = vec![0.0f32; m * n];
        quantized_gemm(m, n, k, &a, &b, 0.0, &c, &mut d).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc += i32::from(a.q[i * k + p]) * i32::from(b.q[p * n + j]);
                }
                assert_eq!(d[i * n + j], acc as f32, "({i},{j})");
            }
        }
    }

    #[test]
    fn quant8_plans_onto_int8_matrix_cores() {
        let desc = GemmDesc::square(GemmOp::Quant8, 1024);
        let s = select_strategy(&desc);
        match s {
            crate::planner::Strategy::MatrixCore { instr, .. } => {
                assert_eq!(instr.mnemonic(), "v_mfma_i32_16x16x16i8");
            }
            other => panic!("expected matrix-core strategy, got {other:?}"),
        }
    }

    #[test]
    fn quant8_throughput_matches_the_int8_rate_class() {
        // INT8 runs at the FP16-mixed rate (1024 ops/CU/cycle): the
        // quantized GEMM should land near the HHS curve.
        let mut h = BlasHandle::new_mi250x_gcd();
        let q8 = h
            .gemm_timed(&GemmDesc::square(GemmOp::Quant8, 8192))
            .unwrap()
            .tflops;
        let hhs = h
            .gemm_timed(&GemmDesc::square(GemmOp::Hhs, 8192))
            .unwrap()
            .tflops;
        assert!((q8 - hhs).abs() / hhs < 0.15, "{q8} vs {hhs}");
        // And the counters land in the INT8 MFMA bank.
        let perf = h
            .gemm_timed(&GemmDesc::square(GemmOp::Quant8, 512))
            .unwrap();
        assert!(perf.counters.mfma_mops_i8 > 0);
        assert_eq!(perf.counters.mfma_mops_f16, 0);
    }

    #[test]
    fn end_to_end_quantized_accuracy() {
        // Random-ish f32 problem: quantized result within quantization
        // error of the exact f32 product.
        let (m, n, k) = (64, 64, 64);
        let af: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 100) as f32) / 50.0 - 1.0)
            .collect();
        let bf: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 % 100) as f32) / 50.0 - 1.0)
            .collect();
        let a = quantize(&af);
        let b = quantize(&bf);
        let c = vec![0.0f32; m * n];
        let mut d = vec![0.0f32; m * n];
        let mut h = BlasHandle::new_mi250x_gcd();
        h.gemm_quant8(m, n, k, &a, &b, 0.0, &c, &mut d).unwrap();

        let mut max_err = 0.0f32;
        let mut max_mag = 0.0f32;
        for i in 0..m {
            for j in 0..n {
                let mut exact = 0.0f64;
                for p in 0..k {
                    exact += f64::from(af[i * k + p]) * f64::from(bf[p * n + j]);
                }
                max_err = max_err.max((d[i * n + j] - exact as f32).abs());
                max_mag = max_mag.max((exact as f32).abs());
            }
        }
        // Quantization noise: ~k·scale_a·scale_b·E[|q|] — a fraction of
        // a percent of the result magnitude for this well-scaled data.
        assert!(max_err / max_mag < 0.02, "{max_err} / {max_mag}");
    }
}
