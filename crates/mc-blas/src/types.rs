//! GEMM operation descriptors.

use core::fmt;

use mc_types::DType;

/// The five floating-point GEMM variants the paper evaluates (§IV-A,
/// Table III): `D ← α·A·B + β·C`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GemmOp {
    /// Single precision: FP32 in, FP32 out, FP32 compute.
    Sgemm,
    /// Double precision: FP64 everywhere.
    Dgemm,
    /// Half precision: FP16 in, FP16 out, **FP16 compute** (Table III) —
    /// the variant rocBLAS never maps to Matrix Cores (§VII).
    Hgemm,
    /// FP16 inputs, FP16 output, FP32 compute type.
    Hhs,
    /// FP16 inputs, FP32 output, FP32 compute type.
    Hss,
    /// bfloat16 inputs, bfloat16 output, FP32 compute type — the
    /// machine-learning analogue of HHS (`rocblas_gemm_ex` with
    /// `bf16/bf16/f32`, using the CDNA2 `*_BF16_1K` instructions).
    Bhs,
    /// bfloat16 inputs, FP32 output, FP32 compute type (analogue of HSS).
    Bss,
    /// Quantized INT8 inputs, INT32 matrix accumulation, FP32 output
    /// after dequantization — the inference GEMM using the
    /// `V_MFMA_I32_*_I8` instructions (§II's ML-oriented datatypes).
    Quant8,
}

impl GemmOp {
    /// All variants: the paper's five, plus the bf16/int8 extensions.
    pub const ALL: [GemmOp; 8] = [
        GemmOp::Sgemm,
        GemmOp::Dgemm,
        GemmOp::Hgemm,
        GemmOp::Hhs,
        GemmOp::Hss,
        GemmOp::Bhs,
        GemmOp::Bss,
        GemmOp::Quant8,
    ];

    /// The five variants the paper evaluates (§IV-A).
    pub const PAPER: [GemmOp; 5] = [
        GemmOp::Sgemm,
        GemmOp::Dgemm,
        GemmOp::Hgemm,
        GemmOp::Hhs,
        GemmOp::Hss,
    ];

    /// Datatype of the A and B matrices.
    pub const fn type_ab(self) -> DType {
        match self {
            GemmOp::Sgemm => DType::F32,
            GemmOp::Dgemm => DType::F64,
            GemmOp::Hgemm | GemmOp::Hhs | GemmOp::Hss => DType::F16,
            GemmOp::Bhs | GemmOp::Bss => DType::Bf16,
            GemmOp::Quant8 => DType::I8,
        }
    }

    /// The `typeCD ← typeAB` pair the Matrix Core instruction must
    /// support. Usually `(compute, typeAB)`; INT8 accumulates in INT32
    /// on the matrix units even though the routine's output is FP32.
    pub const fn mfma_pair(self) -> (DType, DType) {
        match self {
            GemmOp::Quant8 => (DType::I32, DType::I8),
            other => (other.compute_type(), other.type_ab()),
        }
    }

    /// Datatype of the C and D matrices.
    pub const fn type_cd(self) -> DType {
        match self {
            GemmOp::Sgemm => DType::F32,
            GemmOp::Dgemm => DType::F64,
            GemmOp::Hgemm | GemmOp::Hhs => DType::F16,
            GemmOp::Bhs => DType::Bf16,
            GemmOp::Hss | GemmOp::Bss | GemmOp::Quant8 => DType::F32,
        }
    }

    /// Compute type (the α/β arithmetic and accumulator precision,
    /// Table III).
    pub const fn compute_type(self) -> DType {
        match self {
            GemmOp::Sgemm => DType::F32,
            GemmOp::Dgemm => DType::F64,
            GemmOp::Hgemm => DType::F16,
            GemmOp::Hhs | GemmOp::Hss | GemmOp::Bhs | GemmOp::Bss | GemmOp::Quant8 => DType::F32,
        }
    }

    /// The lowercase routine name (`sgemm`, `hhs`, ...).
    pub const fn routine(self) -> &'static str {
        match self {
            GemmOp::Sgemm => "sgemm",
            GemmOp::Dgemm => "dgemm",
            GemmOp::Hgemm => "hgemm",
            GemmOp::Hhs => "hhs",
            GemmOp::Hss => "hss",
            GemmOp::Bhs => "bhs",
            GemmOp::Bss => "bss",
            GemmOp::Quant8 => "quant8",
        }
    }
}

impl fmt::Display for GemmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.routine())
    }
}

/// BLAS transpose selector for an input operand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored (`N` in BLAS notation).
    #[default]
    None,
    /// Use the operand's transpose (`T`).
    Trans,
}

/// A GEMM problem: `D (m×n) ← α · op(A)·op(B) + β · C (m×n)`, where
/// `op(A)` is `m×k` and `op(B)` is `k×n` after the transpose selectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GemmDesc {
    /// Operation variant (datatypes).
    pub op: GemmOp,
    /// Rows of op(A), C, and D.
    pub m: usize,
    /// Columns of op(B), C, and D.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Scalar multiplier on `op(A)·op(B)`.
    pub alpha: f64,
    /// Scalar multiplier on `C`.
    pub beta: f64,
    /// Transpose selector for A (stored `m×k` for `None`, `k×m` for
    /// `Trans`).
    pub trans_a: Transpose,
    /// Transpose selector for B (stored `k×n` for `None`, `n×k` for
    /// `Trans`).
    pub trans_b: Transpose,
}

impl GemmDesc {
    /// A general problem with no transposition.
    pub fn new(op: GemmOp, m: usize, n: usize, k: usize, alpha: f64, beta: f64) -> Self {
        GemmDesc {
            op,
            m,
            n,
            k,
            alpha,
            beta,
            trans_a: Transpose::None,
            trans_b: Transpose::None,
        }
    }

    /// A square `N×N×N` problem, the paper's evaluation shape
    /// (α = β = 0.1, §VII).
    pub fn square(op: GemmOp, n: usize) -> Self {
        Self::new(op, n, n, n, 0.1, 0.1)
    }

    /// Stored dimensions of A: `(rows, cols)` before `op()`.
    pub fn a_dims(&self) -> (usize, usize) {
        match self.trans_a {
            Transpose::None => (self.m, self.k),
            Transpose::Trans => (self.k, self.m),
        }
    }

    /// Stored dimensions of B before `op()`.
    pub fn b_dims(&self) -> (usize, usize) {
        match self.trans_b {
            Transpose::None => (self.k, self.n),
            Transpose::Trans => (self.n, self.k),
        }
    }

    /// Useful floating-point work for this problem: `2mnk` multiply-add
    /// FLOPs plus `3mn` scaling FLOPs (the paper's Fig. 9 model terms).
    pub fn useful_flops(&self) -> u64 {
        2 * (self.m as u64) * (self.n as u64) * (self.k as u64)
            + 3 * (self.m as u64) * (self.n as u64)
    }

    /// Bytes of device memory the problem's matrices occupy.
    pub fn footprint_bytes(&self) -> u64 {
        let ab = self.op.type_ab().size_bytes() as u64;
        let cd = self.op.type_cd().size_bytes() as u64;
        (self.m * self.k) as u64 * ab
            + (self.k * self.n) as u64 * ab
            + 2 * (self.m * self.n) as u64 * cd // C and D
    }

    /// Validates dimensions.
    pub fn validate(&self) -> Result<(), BlasError> {
        if self.m == 0 || self.n == 0 || self.k == 0 {
            return Err(BlasError::InvalidDimension {
                m: self.m,
                n: self.n,
                k: self.k,
            });
        }
        Ok(())
    }
}

/// Errors from the BLAS layer.
#[derive(Clone, Debug, PartialEq)]
pub enum BlasError {
    /// A dimension is zero.
    InvalidDimension {
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Inner dimension.
        k: usize,
    },
    /// A host buffer is smaller than the problem requires.
    BufferTooSmall {
        /// Which operand.
        operand: &'static str,
        /// Required length in elements.
        required: usize,
        /// Provided length.
        provided: usize,
    },
    /// The problem does not fit in device memory.
    OutOfDeviceMemory {
        /// Required bytes.
        required: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// Simulator launch failure.
    Launch(String),
    /// The planned kernel failed static verification (`mc-lint`); the
    /// report carries the diagnostics that rejected it.
    Lint(mc_lint::LintReport),
    /// The planned kernel failed dataflow verification (`mc-flow`): an
    /// LDS race, an insufficient waitcnt, or a register working set the
    /// plan cannot hold.
    Flow(mc_flow::FlowReport),
    /// The persisted plan DB could not be read or has an incompatible
    /// schema (see `crate::plandb`).
    PlanDb(String),
}

impl fmt::Display for BlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlasError::InvalidDimension { m, n, k } => {
                write!(f, "invalid GEMM dimensions {m}x{n}x{k}")
            }
            BlasError::BufferTooSmall {
                operand,
                required,
                provided,
            } => write!(
                f,
                "operand {operand}: need {required} elements, got {provided}"
            ),
            BlasError::OutOfDeviceMemory { required, capacity } => {
                write!(f, "problem needs {required} B, device has {capacity} B")
            }
            BlasError::Launch(msg) => write!(f, "launch failed: {msg}"),
            BlasError::Lint(report) => write!(
                f,
                "kernel `{}` failed static verification with {} error(s):\n{}",
                report.subject,
                report.error_count(),
                report.render()
            ),
            BlasError::Flow(report) => write!(
                f,
                "kernel `{}` failed dataflow verification with {} error(s):\n{}",
                report.subject,
                report.error_count(),
                report.render()
            ),
            BlasError::PlanDb(msg) => write!(f, "plan DB: {msg}"),
        }
    }
}

impl std::error::Error for BlasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_datatypes() {
        // Paper Table III, verbatim.
        assert_eq!(GemmOp::Hgemm.type_ab(), DType::F16);
        assert_eq!(GemmOp::Hgemm.type_cd(), DType::F16);
        assert_eq!(GemmOp::Hgemm.compute_type(), DType::F16);
        assert_eq!(GemmOp::Hhs.type_ab(), DType::F16);
        assert_eq!(GemmOp::Hhs.type_cd(), DType::F16);
        assert_eq!(GemmOp::Hhs.compute_type(), DType::F32);
        assert_eq!(GemmOp::Hss.type_ab(), DType::F16);
        assert_eq!(GemmOp::Hss.type_cd(), DType::F32);
        assert_eq!(GemmOp::Hss.compute_type(), DType::F32);
    }

    #[test]
    fn useful_flops_matches_fig9_model() {
        let d = GemmDesc::square(GemmOp::Sgemm, 1024);
        assert_eq!(d.useful_flops(), 2 * 1024u64.pow(3) + 3 * 1024u64.pow(2));
    }

    #[test]
    fn footprint_counts_all_four_matrices() {
        let d = GemmDesc::square(GemmOp::Dgemm, 1000);
        // A, B, C, D each 1000² f64.
        assert_eq!(d.footprint_bytes(), 4 * 1_000_000 * 8);
        let h = GemmDesc::square(GemmOp::Hss, 1000);
        // A, B f16; C, D f32.
        assert_eq!(h.footprint_bytes(), 2 * 1_000_000 * 2 + 2 * 1_000_000 * 4);
    }

    #[test]
    fn validation() {
        assert!(GemmDesc::square(GemmOp::Sgemm, 16).validate().is_ok());
        let bad = GemmDesc {
            k: 0,
            ..GemmDesc::square(GemmOp::Sgemm, 16)
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn square_uses_paper_scalars() {
        let d = GemmDesc::square(GemmOp::Hhs, 64);
        assert_eq!(d.alpha, 0.1);
        assert_eq!(d.beta, 0.1);
    }

    #[test]
    fn bf16_extension_ops() {
        assert_eq!(GemmOp::Bhs.type_ab(), DType::Bf16);
        assert_eq!(GemmOp::Bhs.type_cd(), DType::Bf16);
        assert_eq!(GemmOp::Bhs.compute_type(), DType::F32);
        assert_eq!(GemmOp::Bss.type_cd(), DType::F32);
        assert_eq!(GemmOp::Bss.routine(), "bss");
        // The paper set stays the original five.
        assert_eq!(GemmOp::PAPER.len(), 5);
        assert!(!GemmOp::PAPER.contains(&GemmOp::Bhs));
        assert!(GemmOp::ALL.contains(&GemmOp::Bhs));
    }
}
