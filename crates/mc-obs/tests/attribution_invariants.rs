//! Cross-plane invariants for the attribution ledger.
//!
//! For a representative GEMM-shaped launch on every registered device,
//! the joined record must reconcile with each plane's own source of
//! truth: Eq. 1 FLOPs against the analytic `2·M·N·K` count, summed
//! joules against `mc_power::EnergyBreakdown`, and the achieved
//! fraction against the Eq. 2 peak.

use std::sync::Arc;

use mc_blas::{BlasHandle, GemmDesc, GemmOp};
use mc_isa::{
    ampere_catalog, cdna1_catalog, cdna2_catalog, IsaCatalog, KernelDesc, MatrixArch, SlotOp,
    WaveProgram,
};
use mc_obs::Attributor;
use mc_power::EnergyBreakdown;
use mc_sim::{DeviceId, DeviceRegistry};
use mc_trace::RingSink;
use mc_types::DType;

fn catalog_for(arch: MatrixArch) -> &'static IsaCatalog {
    match arch {
        MatrixArch::Cdna1 => cdna1_catalog(),
        MatrixArch::Cdna2 => cdna2_catalog(),
        MatrixArch::Ampere => ampere_catalog(),
    }
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

/// The mixed-precision inner loop of a tiled GEMM on each device's own
/// best instruction: known wave count times known iteration count gives
/// an analytic FLOP total to reconcile Eq. 1 against.
#[test]
fn records_reconcile_across_planes_on_every_device() {
    const WAVES: u64 = 128;
    const ITERS: u64 = 2_000;
    for id in DeviceId::ALL {
        let ring = Arc::new(RingSink::new());
        let mut devices = DeviceRegistry::builtin();
        devices.set_trace_sink(ring.clone());
        let cfg = devices.config(id).clone();
        let instr = *catalog_for(cfg.package.die.arch)
            .best_for_types(DType::F32, DType::F16)
            .expect("every arch has a mixed-precision instruction");
        let kernel = KernelDesc {
            workgroups: WAVES,
            waves_per_workgroup: 1,
            ..KernelDesc::new(
                "gemm_inner_loop",
                WaveProgram::looped(vec![SlotOp::Mfma(instr)], ITERS),
            )
        };

        let mut gpu = devices.gpu(id);
        let result = gpu.launch(0, &kernel).unwrap();
        let records = Attributor::from_registry(&devices).attribute(&ring.events());
        assert_eq!(records.len(), 1, "{id:?}");
        let r = &records[0];

        // Counter plane: Eq. 1 over the span's counters must match the
        // analytic 2*M*N*K FLOP count within 1% (it is in fact exact).
        let analytic = (WAVES * ITERS * instr.flops()) as f64;
        assert!(
            rel_err(r.eq1_flops as f64, analytic) < 0.01,
            "{id:?}: eq1 {} vs analytic {analytic}",
            r.eq1_flops
        );

        // Energy plane: the ledger's total must reconcile with the
        // energy model's own decomposition of the same launch.
        let breakdown = EnergyBreakdown::of_result(&cfg.package, &result);
        assert!(
            rel_err(r.energy_j, breakdown.total_j()) < 1e-6,
            "{id:?}: ledger {} J vs breakdown {} J",
            r.energy_j,
            breakdown.total_j()
        );

        // Throughput plane: a real launch achieves a positive fraction
        // of the Eq. 2 peak and can never exceed it.
        assert!(
            r.achieved_fraction > 0.0 && r.achieved_fraction <= 1.0,
            "{id:?}: achieved fraction {}",
            r.achieved_fraction
        );
        assert!(r.wall_time_s > 0.0, "{id:?}");
        assert_eq!(r.spec, cfg.package.name, "{id:?}");
    }
}

/// The same invariants through the full rocBLAS-style path: a square
/// HHS GEMM planned and launched by `mc-blas`, attributed from the
/// trace it emitted.
#[test]
fn blas_gemm_attribution_matches_analytic_flops_and_energy() {
    let n = 1024_u64;
    let ring = Arc::new(RingSink::new());
    let mut devices = DeviceRegistry::builtin();
    devices.set_trace_sink(ring.clone());
    let mut handle = BlasHandle::from_registry(&devices, DeviceId::Mi250xGcd);
    let perf = handle
        .gemm_timed(&GemmDesc::square(GemmOp::Hhs, n as usize))
        .unwrap();

    let records = Attributor::from_registry(&devices).attribute(&ring.events());
    assert_eq!(records.len(), 1);
    let r = &records[0];

    let analytic = (2 * n * n * n) as f64;
    assert!(
        rel_err(r.eq1_flops as f64, analytic) < 0.01,
        "eq1 {} vs 2n^3 {analytic}",
        r.eq1_flops
    );

    let breakdown = EnergyBreakdown::of_result(handle.gpu().spec(), &perf.package);
    assert!(
        rel_err(r.energy_j, breakdown.total_j()) < 1e-6,
        "ledger {} J vs breakdown {} J",
        r.energy_j,
        breakdown.total_j()
    );

    assert!(r.achieved_fraction > 0.0 && r.achieved_fraction <= 1.0);
    // A 1024-square HHS GEMM moves real HBM traffic: the ledger's
    // roofline placement must carry a finite intensity.
    assert!(r.hbm_bytes > 0);
    assert!(r.intensity_flop_per_byte.is_finite());
    assert_eq!(r.roofline_roof, "MFMA FP16-mixed");
}
