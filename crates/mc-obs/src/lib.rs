//! Attribution and regression observability for the simulator stack.
//!
//! The paper's methodology joins three measurement planes into
//! per-kernel efficiency statements: `rocprof` counter deltas give
//! Eq. 1 FLOPs, wall-clock timing gives achieved throughput against
//! the Eq. 2 peak, and ROCm-SMI power sampling gives joules and
//! GFLOPS/W (§IV, §VI). Before this crate those planes lived in three
//! disjoint surfaces (`mc-trace` spans, `mc-profiler` counters,
//! `mc-power` samples) with no machine-readable join. `mc-obs` closes
//! the loop:
//!
//! - [`Attributor`] / [`AttributionRecord`]: joins kernel trace spans
//!   (counter args, energy args, package-spec tags) with the device
//!   specifications to produce one schema-versioned record per kernel
//!   launch — wall time, cycles, Eq. 1 FLOPs, joules, MFMA-vs-VALU
//!   mix, achieved-vs-Eq. 2-peak fraction, GFLOPS/W, and roofline
//!   placement via [`mc_model::Roofline`].
//! - [`to_jsonl`] / [`from_jsonl`]: the JSON-lines ledger format
//!   written next to each experiment envelope.
//! - [`register_attribution_metrics`]: aggregates a ledger into a
//!   [`mc_trace::MetricsRegistry`] under `attribution.*`, from where
//!   [`mc_trace::openmetrics`] renders the text exposition.
//! - [`register_verifier_metrics`] / [`VerifierCounts`]: aggregates
//!   the lint and flow gates' diagnostic counts into the same registry
//!   under `verifier.*`, so a scrape sees the corpus's zero-diagnostic
//!   invariant as counters.
//! - [`register_compute_pool_metrics`] / [`PoolCounts`]: aggregates
//!   the `mc-compute` packing-pool freelist counters under
//!   `compute.pool.*`, so the steady-state-reuse invariant (miss delta
//!   zero once warm) is scrapeable alongside the wall times it
//!   explains.
//! - [`diff`] / [`Sample`] / [`DiffReport`]: the `perf-diff` regression
//!   detector comparing a run's samples against committed baselines
//!   with per-metric tolerances; [`power_noise_tolerance`] derives the
//!   tolerance for power-plane metrics from the pinned
//!   [`mc_sim::Smi`] noise model.
//!
//! See `docs/OBSERVABILITY.md` for the record schema and tolerance
//! policy.

#![deny(missing_docs)]

mod attribution;
mod compute;
mod perfdiff;
mod verifier;

pub use attribution::{
    from_jsonl, register_attribution_metrics, to_jsonl, AttributionRecord, Attributor,
    ATTRIBUTION_SCHEMA_VERSION,
};
pub use compute::{register_compute_pool_metrics, PoolCounts};
pub use perfdiff::{
    diff, power_noise_tolerance, DiffEntry, DiffReport, DiffStatus, Direction, Sample,
    DEFAULT_TOLERANCE_REL,
};
pub use verifier::{register_verifier_metrics, VerifierCounts};
