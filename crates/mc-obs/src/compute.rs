//! Host-compute pool counters as metrics.
//!
//! The `mc-compute` packing-buffer pool counts its freelist traffic —
//! hits, misses (each miss is one allocator round-trip), recycles,
//! discards, and freshly-allocated bytes. This module aggregates those
//! counts into a [`mc_trace::MetricsRegistry`] under `compute.pool.*`,
//! from where [`mc_trace::openmetrics`] renders the text exposition —
//! so a scraping dashboard sees the same steady-state-reuse invariant
//! the batched-GEMM reuse test enforces (miss delta zero once warm),
//! and an allocation regression shows up as a counter stepping away
//! from zero rather than only as a slower wall time.
//!
//! The API deliberately takes plain counts rather than the
//! `mc_compute::PoolStats` type: `mc-obs` sits beside (not above)
//! `mc-compute` in the crate graph and only needs the aggregate
//! numbers, mirroring [`crate::VerifierCounts`].

use mc_trace::{MetricsRegistry, Unit};

/// Aggregate packing-pool counters from one measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounts {
    /// Acquisitions served from a freelist.
    pub hits: u64,
    /// Acquisitions that allocated (one allocator round-trip each).
    pub misses: u64,
    /// Buffers returned to a freelist at drop.
    pub recycled: u64,
    /// Buffers dropped for real because the freelists were full.
    pub discarded: u64,
    /// Bytes of fresh allocation performed by misses.
    pub allocated_bytes: u64,
}

impl PoolCounts {
    /// Builds a counts record from the pool's counters.
    pub fn new(
        hits: u64,
        misses: u64,
        recycled: u64,
        discarded: u64,
        allocated_bytes: u64,
    ) -> Self {
        PoolCounts {
            hits,
            misses,
            recycled,
            discarded,
            allocated_bytes,
        }
    }

    /// Hit rate in `[0, 1]`; `1.0` for an idle window.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registers one pool window's counters as `compute.pool.{hits,misses,
/// recycled,discarded,allocated_bytes,hit_rate}` metrics.
pub fn register_compute_pool_metrics(counts: &PoolCounts, reg: &mut MetricsRegistry) {
    reg.set("compute.pool.hits", Unit::Count, counts.hits as f64);
    reg.set("compute.pool.misses", Unit::Count, counts.misses as f64);
    reg.set("compute.pool.recycled", Unit::Count, counts.recycled as f64);
    reg.set(
        "compute.pool.discarded",
        Unit::Count,
        counts.discarded as f64,
    );
    reg.set(
        "compute.pool.allocated_bytes",
        Unit::Bytes,
        counts.allocated_bytes as f64,
    );
    reg.set("compute.pool.hit_rate", Unit::Ratio, counts.hit_rate());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_under_the_pool_prefix() {
        let mut reg = MetricsRegistry::new();
        register_compute_pool_metrics(&PoolCounts::new(96, 4, 100, 0, 8192), &mut reg);
        let text = mc_trace::openmetrics(&reg);
        assert!(text.contains("compute_pool_hits 96"), "{text}");
        assert!(text.contains("compute_pool_misses 4"), "{text}");
        assert!(text.contains("compute_pool_allocated_bytes 8192"), "{text}");
        assert!(text.contains("compute_pool_hit_rate_ratio 0.96"), "{text}");
    }

    #[test]
    fn idle_window_reports_full_hit_rate() {
        assert_eq!(PoolCounts::default().hit_rate(), 1.0);
        let mut reg = MetricsRegistry::new();
        register_compute_pool_metrics(&PoolCounts::default(), &mut reg);
        let text = mc_trace::openmetrics(&reg);
        assert!(text.contains("compute_pool_hit_rate_ratio 1"), "{text}");
    }
}
