//! The per-kernel attribution ledger.
//!
//! [`Attributor::attribute`] walks a trace event stream, picks out
//! kernel spans (which `mc-sim`'s engine tags with its hardware
//! counters as `ctr.*` args, its dynamic energy, and the package-spec
//! name it ran on), and joins them with the registered
//! [`PackageSpec`]s into [`AttributionRecord`]s — one per kernel
//! launch, carrying all three of the paper's measurement planes at
//! once. Static energy (idle + per-die active baseline) is
//! time-apportioned so that the ledger's joules reconcile with
//! `mc_power::EnergyBreakdown::total_j` for the same launches.

use std::collections::BTreeMap;

use mc_isa::specs::{DieSpec, PackageSpec};
use mc_isa::{IsaCatalog, MatrixArch};
use mc_model::{derived_total_flops, OperatingPoint, Regime, Roofline, ThroughputModel};
use mc_sim::{DeviceRegistry, HwCounters};
use mc_trace::{ArgValue, Category, MetricsRegistry, SpanEvent, TraceEvent, Unit};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// Version of the [`AttributionRecord`] JSONL schema. Bump on any
/// field change; [`from_jsonl`] rejects mismatched ledgers.
pub const ATTRIBUTION_SCHEMA_VERSION: u32 = 1;

/// One kernel launch, attributed across all three measurement planes:
/// counters (Eq. 1), wall clock vs the Eq. 2 peak, and energy (Eq. 3
/// decomposition), plus roofline placement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttributionRecord {
    /// Schema version ([`ATTRIBUTION_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Kernel name from the trace span.
    pub kernel: String,
    /// Package-spec name the kernel ran on (the join key).
    pub spec: String,
    /// Die index within the package.
    pub die: u32,
    /// Launch start on the trace timeline, in microseconds.
    pub t0_us: f64,
    /// Wall time of the launch in seconds (after governor action).
    pub wall_time_s: f64,
    /// Compute-side cycles (pre-governor makespan).
    pub compute_cycles: f64,
    /// Eq. 1 FLOPs derived from the span's hardware-counter args
    /// (`512·MOPS + ADD + MUL + 2·FMA`, summed over datatypes).
    pub eq1_flops: u64,
    /// Eq. 1 Matrix-Core FLOPs (the `512·MOPS` terms).
    pub eq1_matrix_flops: u64,
    /// Eq. 1 vector-ALU FLOPs.
    pub eq1_simd_flops: u64,
    /// Fraction of Eq. 1 FLOPs delivered by Matrix Cores.
    pub matrix_flop_fraction: f64,
    /// MFMA matrix-op counter total (`SQ_INSTS_VALU_MFMA_MOPS_*`).
    pub mfma_mops: u64,
    /// VALU instruction total (`SQ_INSTS_VALU`), the other half of the
    /// MFMA-vs-VALU instruction mix.
    pub valu_insts: u64,
    /// DRAM traffic in bytes.
    pub hbm_bytes: u64,
    /// Total energy attributed to this kernel in joules: dynamic +
    /// per-die active baseline + wall-time share of package idle.
    pub energy_j: f64,
    /// Dynamic (per-operation) energy in joules.
    pub dynamic_energy_j: f64,
    /// Per-die active-baseline energy in joules.
    pub baseline_energy_j: f64,
    /// This kernel's share of package idle energy in joules.
    pub idle_energy_j: f64,
    /// Achieved Eq. 1 throughput in FLOP/s (`eq1_flops / wall_time_s`).
    pub achieved_flops_per_s: f64,
    /// Eq. 2 theoretical peak for the kernel's dominant MFMA datatype
    /// on this die, in FLOP/s (VALU-FMA ceiling for MFMA-free kernels).
    pub eq2_peak_flops_per_s: f64,
    /// `achieved_flops_per_s / eq2_peak_flops_per_s` — in `(0, 1]` for
    /// any kernel that performs work.
    pub achieved_fraction: f64,
    /// Energy efficiency: the paper's GFLOPS/W figure of merit
    /// (`eq1_flops / energy_j / 1e9`).
    pub gflops_per_watt: f64,
    /// Roofline ceiling the kernel was classified against.
    pub roofline_roof: String,
    /// Arithmetic intensity in FLOP/byte of DRAM traffic.
    pub intensity_flop_per_byte: f64,
    /// Roofline regime: `"compute-bound"` or `"memory-bound"`.
    pub regime: String,
    /// Fraction of the roofline-attainable throughput achieved.
    pub roofline_efficiency: f64,
}

/// Joins kernel trace spans with registered package specifications.
#[derive(Clone, Debug, Default)]
pub struct Attributor {
    specs: Vec<PackageSpec>,
}

fn arg<'a>(span: &'a SpanEvent, name: &str) -> Option<&'a ArgValue> {
    span.args.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn arg_u64(span: &SpanEvent, name: &str) -> u64 {
    match arg(span, name) {
        Some(ArgValue::U64(u)) => *u,
        Some(ArgValue::F64(f)) => *f as u64,
        _ => 0,
    }
}

fn arg_f64(span: &SpanEvent, name: &str) -> Option<f64> {
    match arg(span, name) {
        Some(ArgValue::F64(f)) => Some(*f),
        Some(ArgValue::U64(u)) => Some(*u as f64),
        _ => None,
    }
}

fn arg_str<'a>(span: &'a SpanEvent, name: &str) -> Option<&'a str> {
    match arg(span, name) {
        Some(ArgValue::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Rebuilds the Eq. 1-relevant [`HwCounters`] fields from a kernel
/// span's `ctr.*` args (the engine publishes every non-zero counter).
fn counters_from_span(span: &SpanEvent) -> HwCounters {
    let mut c = HwCounters::default();
    for (key, value) in &span.args {
        let Some(name) = key.strip_prefix("ctr.") else {
            continue;
        };
        let v = match value {
            ArgValue::U64(u) => *u,
            ArgValue::F64(f) => *f as u64,
            ArgValue::Str(_) => continue,
        };
        match name {
            "SQ_INSTS_VALU_MFMA_MOPS_F64" => c.mfma_mops_f64 = v,
            "SQ_INSTS_VALU_MFMA_MOPS_F32" => c.mfma_mops_f32 = v,
            "SQ_INSTS_VALU_MFMA_MOPS_F16" => c.mfma_mops_f16 = v,
            "SQ_INSTS_VALU_MFMA_MOPS_BF16" => c.mfma_mops_bf16 = v,
            "SQ_INSTS_VALU_MFMA_MOPS_I8" => c.mfma_mops_i8 = v,
            "SQ_INSTS_VALU_ADD_F16" => c.valu_add_f16 = v,
            "SQ_INSTS_VALU_ADD_F32" => c.valu_add_f32 = v,
            "SQ_INSTS_VALU_ADD_F64" => c.valu_add_f64 = v,
            "SQ_INSTS_VALU_MUL_F16" => c.valu_mul_f16 = v,
            "SQ_INSTS_VALU_MUL_F32" => c.valu_mul_f32 = v,
            "SQ_INSTS_VALU_MUL_F64" => c.valu_mul_f64 = v,
            "SQ_INSTS_VALU_FMA_F16" => c.valu_fma_f16 = v,
            "SQ_INSTS_VALU_FMA_F32" => c.valu_fma_f32 = v,
            "SQ_INSTS_VALU_FMA_F64" => c.valu_fma_f64 = v,
            "SQ_WAVES" => c.waves_launched = v,
            _ => {}
        }
    }
    c
}

fn catalog_for(die: &DieSpec) -> &'static IsaCatalog {
    match die.arch {
        MatrixArch::Cdna1 => mc_isa::cdna1_catalog(),
        MatrixArch::Cdna2 => mc_isa::cdna2_catalog(),
        MatrixArch::Ampere => mc_isa::ampere_catalog(),
    }
}

/// Dominant MFMA input-type class of a kernel span, from the engine's
/// by-type FLOP args; `None` for MFMA-free kernels.
fn dominant_dtype(span: &SpanEvent) -> Option<DType> {
    let f64f = arg_u64(span, "mfma_flops_f64");
    let f32f = arg_u64(span, "mfma_flops_f32");
    let f16f = arg_u64(span, "mfma_flops_f16");
    if f64f >= f32f && f64f >= f16f && f64f > 0 {
        Some(DType::F64)
    } else if f32f >= f16f && f32f > 0 {
        Some(DType::F32)
    } else if f16f > 0 {
        Some(DType::F16)
    } else {
        None
    }
}

/// Eq. 2 peak throughput for the kernel's dominant MFMA datatype on
/// this die; the VALU-FMA ceiling when the kernel issued no MFMA.
fn eq2_peak_flops(die: &DieSpec, dominant: Option<DType>) -> f64 {
    let pair = dominant.map(|dt| match dt {
        DType::F64 => (DType::F64, DType::F64),
        DType::F32 => (DType::F32, DType::F32),
        _ => (DType::F32, DType::F16),
    });
    if let Some((cd, ab)) = pair {
        if let Some(instr) = catalog_for(die).best_for_types(cd, ab) {
            return ThroughputModel::new(instr, die).peak_flops();
        }
    }
    die.peak_flops(128.0)
}

fn roof_name(dominant: Option<DType>) -> &'static str {
    match dominant {
        Some(DType::F64) => "MFMA FP64",
        Some(DType::F32) => "MFMA FP32",
        Some(_) => "MFMA FP16-mixed",
        None => "VALU FMA",
    }
}

impl Attributor {
    /// An attributor with no registered specifications.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a package specification; kernels whose span `spec`
    /// arg matches `spec.name` attribute against it. Re-registering a
    /// name replaces the earlier entry.
    pub fn register(&mut self, spec: &PackageSpec) {
        match self.specs.iter_mut().find(|s| s.name == spec.name) {
            Some(slot) => *slot = spec.clone(),
            None => self.specs.push(spec.clone()),
        }
    }

    /// An attributor covering every device in a registry (the four
    /// built-ins plus any custom registrations).
    pub fn from_registry(devices: &DeviceRegistry) -> Self {
        let mut out = Self::new();
        for name in devices.names() {
            if let Some(cfg) = devices.config_named(name) {
                out.register(&cfg.package);
            }
        }
        out
    }

    /// Joins every kernel span in `events` against the registered
    /// specifications, producing one record per launch in event order.
    ///
    /// Kernel spans without a `spec` arg, or tagged with an
    /// unregistered spec name, are skipped — the ledger only carries
    /// records it can price. Package idle energy is apportioned across
    /// each spec's kernels by wall-time share over the spec's busy
    /// extent, so summed `energy_j` reconciles with
    /// `EnergyBreakdown::total_j` for the same launches.
    pub fn attribute(&self, events: &[TraceEvent]) -> Vec<AttributionRecord> {
        // Group kernel spans by registered spec, preserving encounter
        // order both across and within groups.
        let mut groups: BTreeMap<usize, Vec<&SpanEvent>> = BTreeMap::new();
        let mut order: Vec<(usize, usize)> = Vec::new(); // (spec idx, idx in group)
        for event in events {
            let Some(span) = event.as_span() else {
                continue;
            };
            if span.category != Category::Kernel {
                continue;
            }
            let Some(spec_idx) = arg_str(span, "spec")
                .and_then(|name| self.specs.iter().position(|s| s.name == name))
            else {
                continue;
            };
            let group = groups.entry(spec_idx).or_default();
            order.push((spec_idx, group.len()));
            group.push(span);
        }

        // Per-spec idle apportionment context: (idle J over the busy
        // extent, total kernel wall seconds).
        let mut idle: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
        for (&spec_idx, spans) in &groups {
            let spec = &self.specs[spec_idx];
            let t_min = spans.iter().map(|s| s.t0_us).fold(f64::INFINITY, f64::min);
            let t_max = spans.iter().map(|s| s.end_us()).fold(0.0_f64, f64::max);
            let extent_s = ((t_max - t_min) / 1e6).max(0.0);
            let total_wall_s: f64 = spans.iter().map(|s| s.dur_us / 1e6).sum();
            idle.insert(spec_idx, (spec.idle_power_w * extent_s, total_wall_s));
        }

        order
            .into_iter()
            .map(|(spec_idx, i)| {
                let span = groups[&spec_idx][i];
                let spec = &self.specs[spec_idx];
                let (idle_total_j, total_wall_s) = idle[&spec_idx];
                self.record_for(span, spec, idle_total_j, total_wall_s)
            })
            .collect()
    }

    fn record_for(
        &self,
        span: &SpanEvent,
        spec: &PackageSpec,
        idle_total_j: f64,
        total_wall_s: f64,
    ) -> AttributionRecord {
        let wall_time_s = span.dur_us / 1e6;
        let counters = counters_from_span(span);
        let derived = derived_total_flops(&counters);
        let eq1_flops = derived.total();
        let hbm_bytes = arg_u64(span, "hbm_bytes");

        // Energy: dynamic from the engine's own accounting (recomputed
        // from the by-type FLOP args when the arg is absent), baseline
        // per wall second, idle by wall-time share.
        let dynamic_energy_j = arg_f64(span, "dynamic_energy_j").unwrap_or_else(|| {
            let e = &spec.energy_pj;
            (arg_u64(span, "mfma_flops_f64") as f64 * e.mfma_f64
                + arg_u64(span, "mfma_flops_f32") as f64 * e.mfma_f32
                + arg_u64(span, "mfma_flops_f16") as f64 * e.mfma_f16
                + arg_u64(span, "valu_flops") as f64 * e.valu
                + hbm_bytes as f64 * e.hbm_per_byte)
                * 1e-12
        });
        let baseline_energy_j = spec.active_baseline_w_per_die * wall_time_s;
        let idle_energy_j = if total_wall_s > 0.0 {
            idle_total_j * wall_time_s / total_wall_s
        } else {
            0.0
        };
        let energy_j = dynamic_energy_j + baseline_energy_j + idle_energy_j;

        // Throughput plane: achieved vs the Eq. 2 peak.
        let dominant = dominant_dtype(span);
        let eq2_peak_flops_per_s = eq2_peak_flops(&spec.die, dominant);
        let achieved_flops_per_s = if wall_time_s > 0.0 {
            eq1_flops as f64 / wall_time_s
        } else {
            0.0
        };
        let achieved_fraction = if eq2_peak_flops_per_s > 0.0 {
            achieved_flops_per_s / eq2_peak_flops_per_s
        } else {
            0.0
        };

        // Roofline placement against the dominant-datatype ceiling.
        let roofline = Roofline::for_die(&spec.die);
        let roof = roofline
            .roof(roof_name(dominant))
            .unwrap_or(&roofline.roofs[0]);
        let intensity_flop_per_byte = eq1_flops as f64 / hbm_bytes.max(1) as f64;
        let point = OperatingPoint {
            intensity: intensity_flop_per_byte,
            flops: achieved_flops_per_s,
        };
        let regime = match roofline.classify(roof, point) {
            Regime::MemoryBound => "memory-bound",
            Regime::ComputeBound => "compute-bound",
        };

        let mfma_mops = counters.mfma_mops_f64
            + counters.mfma_mops_f32
            + counters.mfma_mops_f16
            + counters.mfma_mops_bf16
            + counters.mfma_mops_i8;

        AttributionRecord {
            schema_version: ATTRIBUTION_SCHEMA_VERSION,
            kernel: span.name.clone(),
            spec: spec.name.clone(),
            die: span.device,
            t0_us: span.t0_us,
            wall_time_s,
            compute_cycles: arg_f64(span, "compute_cycles").unwrap_or(0.0),
            eq1_flops,
            eq1_matrix_flops: derived.matrix_core,
            eq1_simd_flops: derived.simd,
            matrix_flop_fraction: derived.matrix_core_ratio(),
            mfma_mops,
            valu_insts: arg_u64(span, "ctr.SQ_INSTS_VALU"),
            hbm_bytes,
            energy_j,
            dynamic_energy_j,
            baseline_energy_j,
            idle_energy_j,
            achieved_flops_per_s,
            eq2_peak_flops_per_s,
            achieved_fraction,
            gflops_per_watt: if energy_j > 0.0 {
                eq1_flops as f64 / energy_j / 1e9
            } else {
                0.0
            },
            roofline_roof: roof.name.clone(),
            intensity_flop_per_byte,
            regime: regime.to_owned(),
            roofline_efficiency: roofline.efficiency(roof, point),
        }
    }
}

/// Renders a ledger as JSON lines: one compact record per line, in
/// order, ending with a trailing newline (empty string for an empty
/// ledger).
pub fn to_jsonl(records: &[AttributionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(
            &serde_json::to_string(&serde_json::to_value(r))
                .expect("attribution records serialize"),
        );
        out.push('\n');
    }
    out
}

/// Parses a JSONL ledger, rejecting blank-line-free malformed rows and
/// any record whose `schema_version` differs from
/// [`ATTRIBUTION_SCHEMA_VERSION`].
pub fn from_jsonl(text: &str) -> Result<Vec<AttributionRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: AttributionRecord =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if record.schema_version != ATTRIBUTION_SCHEMA_VERSION {
            return Err(format!(
                "line {}: schema version {} (expected {})",
                i + 1,
                record.schema_version,
                ATTRIBUTION_SCHEMA_VERSION
            ));
        }
        out.push(record);
    }
    Ok(out)
}

/// Aggregates a ledger into a metrics registry under `attribution.*`:
/// totals across kernels plus flop-weighted mix and peak-fraction
/// statistics. No-op for an empty ledger.
pub fn register_attribution_metrics(records: &[AttributionRecord], reg: &mut MetricsRegistry) {
    if records.is_empty() {
        return;
    }
    let wall: f64 = records.iter().map(|r| r.wall_time_s).sum();
    let flops: f64 = records.iter().map(|r| r.eq1_flops as f64).sum();
    let matrix: f64 = records.iter().map(|r| r.eq1_matrix_flops as f64).sum();
    let energy: f64 = records.iter().map(|r| r.energy_j).sum();
    let hbm: f64 = records.iter().map(|r| r.hbm_bytes as f64).sum();
    reg.set("attribution.kernels", Unit::Count, records.len() as f64);
    reg.set("attribution.wall_time_s", Unit::Seconds, wall);
    reg.set("attribution.eq1_flops", Unit::Flops, flops);
    reg.set("attribution.energy_j", Unit::Joules, energy);
    reg.set("attribution.hbm_bytes", Unit::Bytes, hbm);
    if energy > 0.0 {
        reg.set(
            "attribution.flops_per_j",
            Unit::FlopsPerJoule,
            flops / energy,
        );
    }
    if flops > 0.0 {
        reg.set(
            "attribution.matrix_flop_fraction",
            Unit::Ratio,
            matrix / flops,
        );
    }
    let mean_fraction =
        records.iter().map(|r| r.achieved_fraction).sum::<f64>() / records.len() as f64;
    let best_fraction = records
        .iter()
        .map(|r| r.achieved_fraction)
        .fold(0.0_f64, f64::max);
    reg.set(
        "attribution.mean_achieved_fraction",
        Unit::Ratio,
        mean_fraction,
    );
    reg.set(
        "attribution.best_achieved_fraction",
        Unit::Ratio,
        best_fraction,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use mc_isa::{cdna2_catalog, KernelDesc, SlotOp, WaveProgram};
    use mc_sim::DeviceId;
    use mc_trace::RingSink;

    fn loop_kernel(waves: u64, iters: u64) -> KernelDesc {
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        KernelDesc {
            workgroups: waves,
            waves_per_workgroup: 1,
            ..KernelDesc::new(
                "hhs_loop",
                WaveProgram::looped(vec![SlotOp::Mfma(i)], iters),
            )
        }
    }

    fn traced_launch(waves: u64, iters: u64) -> (Vec<TraceEvent>, Attributor) {
        let ring = Arc::new(RingSink::new());
        let mut devices = DeviceRegistry::builtin();
        devices.set_trace_sink(ring.clone());
        let mut gpu = devices.gpu(DeviceId::Mi250xGcd);
        gpu.launch(0, &loop_kernel(waves, iters)).unwrap();
        (ring.events(), Attributor::from_registry(&devices))
    }

    #[test]
    fn attribution_joins_all_three_planes() {
        let (events, attributor) = traced_launch(440, 10_000);
        let records = attributor.attribute(&events);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.kernel, "hhs_loop");
        assert_eq!(r.spec, "AMD Instinct MI250X");
        // Eq. 1 plane: a pure-MFMA loop, every FLOP from Matrix Cores.
        assert_eq!(r.eq1_flops, 440 * 10_000 * 8192);
        assert_eq!(r.eq1_matrix_flops, r.eq1_flops);
        assert_eq!(r.matrix_flop_fraction, 1.0);
        assert_eq!(r.mfma_mops, 440 * 10_000 * 8192 / 512);
        // Throughput plane: saturated HHS loop sits at the ~91% plateau.
        assert!(r.achieved_fraction > 0.8 && r.achieved_fraction <= 1.0);
        assert!((r.eq2_peak_flops_per_s / 1e12 - 191.5).abs() < 0.5);
        // Energy plane: all components positive, figure of merit sane.
        assert!(r.dynamic_energy_j > 0.0);
        assert!(r.baseline_energy_j > 0.0);
        assert!(r.idle_energy_j > 0.0);
        assert!(
            (r.energy_j - (r.dynamic_energy_j + r.baseline_energy_j + r.idle_energy_j)).abs()
                < 1e-12
        );
        assert!(r.gflops_per_watt > 100.0, "{}", r.gflops_per_watt);
        // Roofline: no DRAM traffic -> extreme intensity, compute-bound.
        assert_eq!(r.roofline_roof, "MFMA FP16-mixed");
        assert_eq!(r.regime, "compute-bound");
        assert!(r.roofline_efficiency > 0.8 && r.roofline_efficiency <= 1.0);
    }

    #[test]
    fn unknown_specs_and_non_kernel_spans_are_skipped() {
        let (events, _) = traced_launch(64, 100);
        let empty = Attributor::new();
        assert!(empty.attribute(&events).is_empty());
    }

    #[test]
    fn jsonl_round_trips_and_rejects_schema_drift() {
        let (events, attributor) = traced_launch(64, 100);
        let records = attributor.attribute(&events);
        let text = to_jsonl(&records);
        assert_eq!(from_jsonl(&text).unwrap(), records);
        assert_eq!(from_jsonl("").unwrap(), Vec::new());

        let tampered = text.replace("\"schema_version\":1", "\"schema_version\":99");
        assert!(from_jsonl(&tampered).is_err());
        assert!(from_jsonl("not json\n").is_err());
    }

    #[test]
    fn aggregates_land_in_the_registry() {
        let (events, attributor) = traced_launch(64, 100);
        let records = attributor.attribute(&events);
        let mut reg = MetricsRegistry::new();
        register_attribution_metrics(&records, &mut reg);
        assert_eq!(reg.value("attribution.kernels"), Some(1.0));
        assert_eq!(
            reg.value("attribution.eq1_flops"),
            Some(records[0].eq1_flops as f64)
        );
        assert_eq!(reg.value("attribution.matrix_flop_fraction"), Some(1.0));
        assert!(reg.value("attribution.flops_per_j").unwrap() > 0.0);

        // An empty ledger registers nothing.
        let mut empty = MetricsRegistry::new();
        register_attribution_metrics(&[], &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn idle_energy_apportioned_by_wall_time_share() {
        // Two sequential launches on one traced GPU: idle energy over
        // the full busy extent must be split by wall time, and the sum
        // must equal idle power x total extent.
        let ring = Arc::new(RingSink::new());
        let mut devices = DeviceRegistry::builtin();
        devices.set_trace_sink(ring.clone());
        let mut gpu = devices.gpu(DeviceId::Mi250xGcd);
        gpu.launch(0, &loop_kernel(440, 2_000)).unwrap();
        gpu.launch(0, &loop_kernel(440, 6_000)).unwrap();
        let attributor = Attributor::from_registry(&devices);
        let records = attributor.attribute(&ring.events());
        assert_eq!(records.len(), 2);
        let idle_w = devices.config(DeviceId::Mi250xGcd).package.idle_power_w;
        let extent_s = records
            .iter()
            .map(|r| r.t0_us + r.wall_time_s * 1e6)
            .fold(0.0_f64, f64::max)
            / 1e6;
        let idle_sum: f64 = records.iter().map(|r| r.idle_energy_j).sum();
        assert!(
            (idle_sum - idle_w * extent_s).abs() < 1e-9 * idle_w * extent_s,
            "{idle_sum} vs {}",
            idle_w * extent_s
        );
        assert!(records[1].idle_energy_j > records[0].idle_energy_j);
    }
}
