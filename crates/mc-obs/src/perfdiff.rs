//! The `perf-diff` regression detector.
//!
//! Compares a run's metric samples against a committed baseline with
//! per-metric relative tolerances. The simulator is deterministic, so
//! most metrics carry a near-zero tolerance; power-plane metrics use
//! [`power_noise_tolerance`], derived by actually running the pinned
//! [`mc_sim::Smi`] noise model through [`mc_sim::sample_stats`] — the
//! tolerance *is* the noise model's own variance, not a guess. Host
//! wall-clock timings (the `BENCH_hotpaths.json` entries) are compared
//! lower-is-better with a wide tolerance, since CI machines vary.

use mc_sim::{sample_stats, PowerProfile, Smi};
use serde::{Deserialize, Serialize};

/// Default relative tolerance for deterministic simulator metrics: any
/// visible drift means the code's behaviour changed and the baseline
/// must be deliberately re-committed.
pub const DEFAULT_TOLERANCE_REL: f64 = 1e-6;

/// How a metric's change maps to pass/fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Any change beyond tolerance is a regression (fidelity metrics:
    /// the measured value should track the paper, drift either way is
    /// suspect).
    Symmetric,
    /// Only increases beyond tolerance regress; decreases beyond
    /// tolerance are improvements (wall-clock timings).
    LowerIsBetter,
}

/// One named metric sample, with its comparison policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Stable key, e.g. `fig3/mixed plateau (TFLOPS)` or `bench/getrf`.
    pub key: String,
    /// The sampled value.
    pub value: f64,
    /// Comparison direction.
    pub direction: Direction,
    /// Relative tolerance before a change counts.
    pub tolerance_rel: f64,
}

impl Sample {
    /// A symmetric sample at the deterministic default tolerance.
    pub fn exact(key: impl Into<String>, value: f64) -> Self {
        Sample {
            key: key.into(),
            value,
            direction: Direction::Symmetric,
            tolerance_rel: DEFAULT_TOLERANCE_REL,
        }
    }
}

/// Outcome of comparing one key across baseline and current.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffStatus {
    /// Within tolerance.
    Stable,
    /// Beyond tolerance in the better direction.
    Improved,
    /// Beyond tolerance in the worse direction.
    Regressed,
    /// Present in the current run only.
    Added,
    /// Present in the baseline only.
    Removed,
}

/// One compared key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffEntry {
    /// The sample key.
    pub key: String,
    /// Baseline value (`None` for [`DiffStatus::Added`]).
    pub baseline: Option<f64>,
    /// Current value (`None` for [`DiffStatus::Removed`]).
    pub current: Option<f64>,
    /// Relative change `(current - baseline) / max(|baseline|, eps)`;
    /// zero when either side is missing.
    pub change_rel: f64,
    /// Tolerance the change was judged against.
    pub tolerance_rel: f64,
    /// The verdict.
    pub status: DiffStatus,
}

/// The full comparison: every compared, added, and removed key.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Entries: current-run keys in order, then baseline-only keys.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// Number of regressed keys — the regression-gate count.
    pub fn regressions(&self) -> usize {
        self.count(DiffStatus::Regressed)
    }

    /// Number of improved keys.
    pub fn improved(&self) -> usize {
        self.count(DiffStatus::Improved)
    }

    /// Number of keys with the given status.
    pub fn count(&self, status: DiffStatus) -> usize {
        self.entries.iter().filter(|e| e.status == status).count()
    }

    /// Renders a human-readable summary: one line per non-stable key,
    /// then totals.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            if e.status == DiffStatus::Stable {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<10} {:<52} {} -> {} ({:+.2}%, tol {:.2}%)",
                format!("{:?}", e.status),
                e.key,
                e.baseline.map_or("-".to_owned(), |v| format!("{v:.6}")),
                e.current.map_or("-".to_owned(), |v| format!("{v:.6}")),
                e.change_rel * 100.0,
                e.tolerance_rel * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "{} compared, {} regressed, {} improved, {} added, {} removed",
            self.entries.len(),
            self.regressions(),
            self.improved(),
            self.count(DiffStatus::Added),
            self.count(DiffStatus::Removed),
        );
        out
    }
}

/// Compares current samples against a baseline. Matching is by key;
/// the policy (direction, tolerance) of the *current* sample governs,
/// so tightening a tolerance in code takes effect without
/// re-committing baselines.
pub fn diff(baseline: &[Sample], current: &[Sample]) -> DiffReport {
    let mut entries = Vec::with_capacity(current.len());
    for c in current {
        let Some(b) = baseline.iter().find(|b| b.key == c.key) else {
            entries.push(DiffEntry {
                key: c.key.clone(),
                baseline: None,
                current: Some(c.value),
                change_rel: 0.0,
                tolerance_rel: c.tolerance_rel,
                status: DiffStatus::Added,
            });
            continue;
        };
        let change_rel = (c.value - b.value) / b.value.abs().max(1e-12);
        let status = match c.direction {
            Direction::Symmetric => {
                if change_rel.abs() > c.tolerance_rel {
                    DiffStatus::Regressed
                } else {
                    DiffStatus::Stable
                }
            }
            Direction::LowerIsBetter => {
                if change_rel > c.tolerance_rel {
                    DiffStatus::Regressed
                } else if change_rel < -c.tolerance_rel {
                    DiffStatus::Improved
                } else {
                    DiffStatus::Stable
                }
            }
        };
        entries.push(DiffEntry {
            key: c.key.clone(),
            baseline: Some(b.value),
            current: Some(c.value),
            change_rel,
            tolerance_rel: c.tolerance_rel,
            status,
        });
    }
    for b in baseline {
        if !current.iter().any(|c| c.key == b.key) {
            entries.push(DiffEntry {
                key: b.key.clone(),
                baseline: Some(b.value),
                current: None,
                change_rel: 0.0,
                tolerance_rel: b.tolerance_rel,
                status: DiffStatus::Removed,
            });
        }
    }
    DiffReport { entries }
}

/// Noise-aware relative tolerance for power-plane metrics, derived
/// from the pinned SMI noise model itself: a flat profile is sampled
/// through [`Smi`] at `noise_amplitude`, the relative standard
/// deviation comes from [`sample_stats`], and the tolerance is the
/// 3-sigma band of an `n`-sample mean (floored at 0.1% so a zero
/// amplitude still leaves rounding headroom).
pub fn power_noise_tolerance(noise_amplitude: f64, n_samples: usize) -> f64 {
    let n = n_samples.max(1);
    // Enough pinned samples to estimate the noise variance itself.
    const PROBE_SAMPLES: usize = 512;
    const PERIOD_S: f64 = 0.1;
    let profile = PowerProfile {
        segments: vec![(0.0, PERIOD_S * PROBE_SAMPLES as f64, 100.0)],
    };
    let smi = Smi::attach(profile, noise_amplitude, 0x0b5e_7001);
    let stats = sample_stats(&smi.sample_period(PERIOD_S));
    let rel_stddev = if stats.mean_w > 0.0 {
        stats.stddev_w / stats.mean_w
    } else {
        0.0
    };
    (3.0 * rel_stddev / (n as f64).sqrt()).max(1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str, value: f64, tol: f64) -> Sample {
        Sample {
            key: key.into(),
            value,
            direction: Direction::Symmetric,
            tolerance_rel: tol,
        }
    }

    #[test]
    fn ten_percent_throughput_drop_regresses() {
        let baseline = vec![sample("fig3/mixed plateau (TFLOPS)", 175.0, 0.01)];
        let current = vec![sample("fig3/mixed plateau (TFLOPS)", 157.5, 0.01)];
        let report = diff(&baseline, &current);
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.entries[0].status, DiffStatus::Regressed);
        assert!((report.entries[0].change_rel + 0.10).abs() < 1e-12);
        assert!(report.render().contains("Regressed"));
    }

    #[test]
    fn identical_samples_are_stable() {
        let s = vec![
            sample("a", 1.0, 1e-6),
            sample("b", -2.5, 1e-6),
            sample("c", 0.0, 1e-6),
        ];
        let report = diff(&s, &s);
        assert_eq!(report.regressions(), 0);
        assert!(report
            .entries
            .iter()
            .all(|e| e.status == DiffStatus::Stable));
    }

    #[test]
    fn lower_is_better_flags_only_slowdowns() {
        let mk = |v: f64, tol: f64| Sample {
            key: "bench/getrf".into(),
            value: v,
            direction: Direction::LowerIsBetter,
            tolerance_rel: tol,
        };
        // 2.5x slower: beyond the 100% tolerance.
        let report = diff(&[mk(1.0, 1.0)], &[mk(2.5, 1.0)]);
        assert_eq!(report.regressions(), 1);
        // 1.5x slower: within tolerance on a noisy host metric.
        let report = diff(&[mk(1.0, 1.0)], &[mk(1.5, 1.0)]);
        assert_eq!(report.regressions(), 0);
        // 3x faster at a 50% tolerance: an improvement, not a regression.
        let report = diff(&[mk(1.0, 0.5)], &[mk(0.3, 0.5)]);
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.improved(), 1);
    }

    #[test]
    fn added_and_removed_keys_are_reported_not_regressed() {
        let baseline = vec![sample("old", 1.0, 1e-6)];
        let current = vec![sample("new", 2.0, 1e-6)];
        let report = diff(&baseline, &current);
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.count(DiffStatus::Added), 1);
        assert_eq!(report.count(DiffStatus::Removed), 1);
    }

    #[test]
    fn zero_baseline_flags_any_nonzero_current() {
        let report = diff(&[sample("gate", 0.0, 0.05)], &[sample("gate", 2.0, 0.05)]);
        assert_eq!(report.regressions(), 1);
    }

    #[test]
    fn noise_tolerance_tracks_the_pinned_smi_model() {
        // The fig5 noise amplitude (1.5%) over a 100-sample mean: the
        // 3-sigma band must be well under the 10% injection threshold
        // but above the deterministic default.
        let tol = power_noise_tolerance(0.015, 100);
        assert!(tol > DEFAULT_TOLERANCE_REL, "{tol}");
        assert!(tol < 0.05, "{tol}");
        // Deterministic (zero-amplitude) power runs keep the floor.
        assert_eq!(power_noise_tolerance(0.0, 100), 1e-3);
        // Fewer samples -> wider tolerance.
        assert!(power_noise_tolerance(0.015, 4) > tol);
        // Pinned model: the tolerance itself is reproducible.
        assert_eq!(tol, power_noise_tolerance(0.015, 100));
    }

    #[test]
    fn diff_report_serializes_for_envelope_payloads() {
        let report = diff(
            &[sample("x", 1.0, 0.01)],
            &[sample("x", 2.0, 0.01), sample("y", 3.0, 0.01)],
        );
        let value = serde_json::to_value(&report);
        let text = serde_json::to_string(&value).unwrap();
        let back: DiffReport = serde_json::from_str(&text).expect("diff reports round-trip JSON");
        assert_eq!(back, report);
    }
}
