//! Verifier diagnostic counts as metrics.
//!
//! The lint (`mc-lint`) and flow (`mc-flow`) gates each sweep the
//! shipped kernel corpus and produce per-subject diagnostic counts.
//! This module aggregates those counts into a
//! [`mc_trace::MetricsRegistry`] under `verifier.<gate>.*`, from where
//! [`mc_trace::openmetrics`] renders the text exposition — so a
//! scraping dashboard sees the same zero-diagnostic invariant the CI
//! gates enforce, and a regression shows up as a counter stepping away
//! from zero rather than only as a failed build.
//!
//! The API deliberately takes plain counts rather than `mc-lint` /
//! `mc-flow` report types: `mc-obs` sits below both verifiers in the
//! crate graph and only needs the aggregate numbers.

use mc_trace::{MetricsRegistry, Unit};

/// Aggregate diagnostic counts from one verifier sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifierCounts {
    /// Gate name, used as the metric-family infix: `lint`, `flow`, ….
    /// Must be a bare lowercase identifier (it lands in metric names).
    pub verifier: String,
    /// Kernels the sweep verified.
    pub subjects: usize,
    /// Error-severity findings (any non-zero value fails the gate).
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
}

impl VerifierCounts {
    /// Builds a counts record for one gate.
    pub fn new(verifier: &str, subjects: usize, errors: usize, warnings: usize) -> Self {
        VerifierCounts {
            verifier: verifier.to_owned(),
            subjects,
            errors,
            warnings,
        }
    }
}

/// Registers one verifier sweep's counts as
/// `verifier.<gate>.{subjects,errors,warnings}` count metrics.
pub fn register_verifier_metrics(counts: &VerifierCounts, reg: &mut MetricsRegistry) {
    let gate = &counts.verifier;
    reg.set(
        &format!("verifier.{gate}.subjects"),
        Unit::Count,
        counts.subjects as f64,
    );
    reg.set(
        &format!("verifier.{gate}.errors"),
        Unit::Count,
        counts.errors as f64,
    );
    reg.set(
        &format!("verifier.{gate}.warnings"),
        Unit::Count,
        counts.warnings as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_under_the_gate_name() {
        let mut reg = MetricsRegistry::new();
        register_verifier_metrics(&VerifierCounts::new("flow", 193, 0, 2), &mut reg);
        let text = mc_trace::openmetrics(&reg);
        assert!(text.contains("verifier_flow_subjects"), "{text}");
        assert!(text.contains("verifier_flow_errors 0"), "{text}");
        assert!(text.contains("verifier_flow_warnings 2"), "{text}");
    }

    #[test]
    fn gates_do_not_collide() {
        let mut reg = MetricsRegistry::new();
        register_verifier_metrics(&VerifierCounts::new("lint", 10, 0, 0), &mut reg);
        register_verifier_metrics(&VerifierCounts::new("flow", 20, 1, 0), &mut reg);
        let text = mc_trace::openmetrics(&reg);
        assert!(text.contains("verifier_lint_subjects 10"), "{text}");
        assert!(text.contains("verifier_flow_subjects 20"), "{text}");
        assert!(text.contains("verifier_flow_errors 1"), "{text}");
    }
}
