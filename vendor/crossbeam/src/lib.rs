//! Offline stand-in for `crossbeam`: the scoped-thread subset this
//! workspace uses, implemented over `std::thread::scope` with
//! crossbeam's API shape (`scope(|s| ...)` returning a `Result`, spawn
//! closures receiving a scope handle).

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// Handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scope-bound thread; the closure receives the scope
        /// handle (crossbeam convention) for nested spawns.
        pub fn spawn<T, F>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            T: Send + 'scope,
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread, returning its result or its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which spawned threads are joined before return.
    ///
    /// Unlike crossbeam, a panicking child propagates when the scope
    /// ends (std semantics) instead of being collected into `Err`; the
    /// `Result` wrapper is kept for API compatibility and is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

/// MPSC channels, mirroring the `crossbeam::channel` subset this
/// workspace uses (`unbounded`, `Sender::send`, `Receiver::try_iter`)
/// over `std::sync::mpsc`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }
}
