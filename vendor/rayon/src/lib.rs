//! Offline stand-in for `rayon`: the data-parallel subset this
//! workspace uses, implemented over `std::thread::scope` with one
//! global worker budget.
//!
//! Semantics the workspace relies on (and tests):
//!
//! * **Order preservation** — `map().collect()` returns results in item
//!   order and `par_chunks_mut` hands out disjoint chunks in order, so
//!   a deterministic per-item function yields bit-identical results at
//!   any thread count.
//! * **One global pool** — there is a single process-wide worker
//!   budget ([`ThreadPoolBuilder::build_global`], default
//!   `available_parallelism`, overridable with `RAYON_NUM_THREADS`).
//!   Nested or concurrent parallel calls *lease* extra workers from
//!   that shared budget and fall back to inline execution when none
//!   are available, so composed parallelism never oversubscribes.
//!
//! Differences from the real crate: parallel iterators are eager (the
//! adaptor methods distribute work immediately), there is no work
//! stealing (items are dealt round-robin), and `build_global` may be
//! called repeatedly (last call wins) — which the determinism tests
//! use to re-run a kernel at several thread counts.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Explicitly configured global thread count (0 = unset).
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Extra workers currently leased out of the global budget.
static LEASED_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The number of threads the global pool is sized for.
pub fn current_num_threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced by
/// this stub; kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global pool, mirroring rayon's builder.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (auto) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = auto-detect).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs this configuration as the global pool. Unlike real
    /// rayon this may be called again to resize the budget.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        CONFIGURED_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A lease of `extra` workers taken from the global budget; returned on
/// drop.
struct Lease {
    extra: usize,
}

impl Lease {
    /// Tries to borrow up to `want` workers beyond the calling thread.
    fn acquire(want: usize) -> Lease {
        let budget = current_num_threads().saturating_sub(1);
        let mut granted = 0;
        let _ = LEASED_WORKERS.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |leased| {
            granted = want.min(budget.saturating_sub(leased));
            Some(leased + granted)
        });
        Lease { extra: granted }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        LEASED_WORKERS.fetch_sub(self.extra, Ordering::Relaxed);
    }
}

/// Runs `f` over `items` on the calling thread plus any workers the
/// global budget grants, preserving item order in the result.
fn run_parallel<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(&f).collect();
    }
    let lease = Lease::acquire(n - 1);
    if lease.extra == 0 {
        return items.into_iter().map(&f).collect();
    }
    let workers = lease.extra + 1;

    // Deal items round-robin so heterogeneous sweeps stay balanced,
    // remembering each item's original slot.
    let mut per_worker: Vec<Vec<(usize, I)>> = (0..workers).map(|_| Vec::new()).collect();
    for (idx, item) in items.into_iter().enumerate() {
        per_worker[idx % workers].push((idx, item));
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    let mut done: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let mut batches = per_worker.into_iter();
        let mine = batches.next().expect("at least one worker");
        let handles: Vec<_> = batches
            .map(|batch| {
                s.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(idx, item)| (idx, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        done.extend(mine.into_iter().map(|(idx, item)| (idx, f(item))));
        for handle in handles {
            done.extend(handle.join().expect("rayon stub worker panicked"));
        }
    });
    for (idx, result) in done {
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every slot produced"))
        .collect()
}

/// An eager, order-preserving parallel iterator over a materialized
/// item list.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(I) -> R + Sync + Send,
    {
        ParIter {
            items: run_parallel(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync + Send,
    {
        run_parallel(self.items, f);
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Accepted for API compatibility; chunking is handled globally.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Materializes the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Splits into `size`-element chunks (last may be short), in order.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into disjoint mutable `size`-element chunks, in order.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// Runs two closures, on two threads when the budget allows.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let lease = Lease::acquire(1);
    if lease.extra == 0 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon stub join worker panicked"))
    })
}

/// The traits user code imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let got: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_are_disjoint_and_ordered() {
        let mut data = vec![0usize; 97];
        data.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = ci * 10 + i;
            }
        });
        assert_eq!(data, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let compute = || -> Vec<f64> {
            (0..64)
                .into_par_iter()
                .map(|i| (i as f64).sin() * 1e6)
                .collect()
        };
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .unwrap();
        let serial = compute();
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        let parallel = compute();
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_owned() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn budget_never_goes_negative() {
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        // Nested parallelism: outer leases workers, inners mostly run
        // inline. Everything must still complete in order.
        let out: Vec<Vec<usize>> = (0..8)
            .into_par_iter()
            .map(|i| (0..8).into_par_iter().map(move |j| i * 8 + j).collect())
            .collect();
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..64).collect::<Vec<_>>());
        assert_eq!(LEASED_WORKERS.load(Ordering::Relaxed), 0);
    }
}
