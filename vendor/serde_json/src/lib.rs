//! Offline stand-in for `serde_json`: prints and parses the vendored
//! `serde::Value` tree as JSON text.
//!
//! Canonical number formatting keeps round-trips exact: floats always
//! carry a `.` or exponent (`43.0`, not `43`), non-negative integers
//! parse back as `U64`, negative ones as `I64` — matching how the stub
//! `serde` canonicalizes on serialization.

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error type for JSON printing/parsing.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

// --- printing --------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Value::I64(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            write_value,
        ),
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(brackets.1);
}

/// `{:?}` on f64 guarantees a `.0` or exponent, so floats never parse
/// back as integers. Non-finite values print as `null` (like serde_json).
fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::new("surrogate \\u escape unsupported")
                                })?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .or_else(|| text.parse::<f64>().ok().map(Value::F64))
                .ok_or_else(|| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_value_shape() {
        let v = Value::Object(vec![
            ("count".into(), Value::U64(12_884_901_888)),
            ("neg".into(), Value::I64(-3)),
            ("tflops".into(), Value::F64(43.0)),
            ("label".into(), Value::Str("a \"b\" \n c".into())),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact: Value = from_str(&to_string(&v).unwrap()).unwrap();
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(compact, v);
        assert_eq!(pretty, v);
    }

    #[test]
    fn floats_keep_their_type() {
        assert_eq!(from_str::<Value>("43.0").unwrap(), Value::F64(43.0));
        assert_eq!(from_str::<Value>("43").unwrap(), Value::U64(43));
        assert_eq!(from_str::<Value>("-43").unwrap(), Value::I64(-43));
        assert_eq!(from_str::<Value>("1.5e3").unwrap(), Value::F64(1500.0));
    }

    #[test]
    fn pretty_print_is_indented() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }
}
