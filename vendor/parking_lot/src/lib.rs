//! Offline stand-in for `parking_lot`: the `Mutex` subset this
//! workspace uses, wrapping `std::sync::Mutex` with parking_lot's
//! no-poisoning, guard-returning `lock()` signature.

/// Mutex guard type alias (std's guard, returned without a `Result`).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
