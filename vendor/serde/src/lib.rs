//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on structs and
//! enums (no `#[serde(...)]` attributes), round-tripped through an
//! in-memory [`Value`] tree that `serde_json` prints and parses.
//!
//! The design intentionally collapses serde's visitor machinery into a
//! single self-describing [`Value`] type: every `Serialize` type knows
//! how to become a `Value`, every `Deserialize` type knows how to be
//! rebuilt from one. External tagging conventions match real
//! `serde_json` output (unit enum variants serialize as strings,
//! data-carrying variants as single-key objects).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing JSON-like value tree.
///
/// `U64`/`I64` are kept separate from `F64` so 64-bit counters (FLOP
/// counts exceed 2^53) survive round-trips without precision loss.
/// Object keys preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (canonical form: non-negative integers are `U64`).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any of the three numeric variants).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// RFC 6901 JSON-pointer lookup (`/a/0/b`). Empty pointer returns `self`.
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let mut current = self;
        for token in pointer.split('/').skip(1) {
            let token = token.replace("~1", "/").replace("~0", "~");
            current = match current {
                Value::Object(_) => current.get(&token)?,
                Value::Array(items) => items.get(token.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(current)
    }
}

/// Error produced when rebuilding a typed value from a [`Value`] tree.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Creates a "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError {
            msg: format!("expected {what} while deserializing {context}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field by name and deserializes it (derive support).
pub fn de_field<T: Deserialize>(
    pairs: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    let value = pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}` for {ty}")))?;
    T::from_value(value).map_err(|e| DeError::custom(format!("{ty}.{key}: {e}")))
}

/// Deserializes element `index` of a tuple-variant payload (derive support).
pub fn de_element<T: Deserialize>(items: &[Value], index: usize, ty: &str) -> Result<T, DeError> {
    let value = items
        .get(index)
        .ok_or_else(|| DeError::custom(format!("missing tuple element {index} for {ty}")))?;
    T::from_value(value).map_err(|e| DeError::custom(format!("{ty}[{index}]: {e}")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($ty)))?;
                <$ty>::try_from(u)
                    .map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                // Canonical form: non-negative integers always use U64, so
                // text round-trips ("5" parses as U64) compare equal.
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let i = match *value {
                    Value::U64(u) => i64::try_from(u)
                        .map_err(|_| DeError::custom(format!("{u} out of i64 range")))?,
                    Value::I64(i) => i,
                    _ => return Err(DeError::expected("integer", stringify!($ty))),
                };
                <$ty>::try_from(i)
                    .map_err(|_| DeError::custom(format!("{i} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                Ok(($(de_element::<$name>(items, $idx, "tuple")?,)+))
            }
        }
    )*};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_walks_objects_and_arrays() {
        let v = Value::Object(vec![(
            "series".into(),
            Value::Array(vec![Value::Object(vec![("x".into(), Value::F64(1.5))])]),
        )]);
        assert_eq!(v.pointer("/series/0/x"), Some(&Value::F64(1.5)));
        assert_eq!(v.pointer("/series/1"), None);
        assert_eq!(v.pointer(""), Some(&v));
    }

    #[test]
    fn signed_integers_canonicalize_to_u64() {
        assert_eq!(5i64.to_value(), Value::U64(5));
        assert_eq!((-5i64).to_value(), Value::I64(-5));
    }

    #[test]
    fn option_round_trips_null() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(2.0f64).to_value(), Value::F64(2.0));
    }
}
