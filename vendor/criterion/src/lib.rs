//! Offline stand-in for `criterion`.
//!
//! Provides the structural API the workspace's bench targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — with a simple
//! wall-clock timer instead of criterion's statistical machinery. Bench
//! binaries compile under `cargo test` and produce one timing line per
//! benchmark when run.

use std::time::Instant;

/// Re-export of the standard black box (criterion's moved here long ago).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name + parameter display, like criterion's.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark("", &id.into(), 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (capped low in this stub to keep runs fast).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.min(25);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into(), self.samples, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the `iter` body.
pub struct Bencher {
    samples: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `body`, recording mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up call, then `samples` timed calls.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(body());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.samples.max(1) as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        nanos_per_iter: 0.0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    println!("bench {label:<60} {:>14.1} ns/iter", bencher.nanos_per_iter);
}

/// Declares a function running a list of benchmark registrars.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more criterion groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
