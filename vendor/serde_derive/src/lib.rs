//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! non-generic structs and enums by hand-parsing the item's
//! `TokenStream` (the container has no `syn`/`quote`). Generated code
//! targets the vendored `serde` stub's `Value`-based traits and never
//! needs field *types*: `serde::de_field` and variant constructors let
//! type inference resolve every `from_value` call.
//!
//! `#[serde(...)]` attributes are not supported (none exist in this
//! workspace); unknown shapes produce a `compile_error!` with context.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    UnitStruct {
        name: String,
    },
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive stub generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// --- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    let name = expect_ident(&tokens, &mut pos)?;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: `{name}` is generic, which the offline stub does not support"
            ));
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            None => Ok(Item::UnitStruct { name }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Item::TupleStruct { name, arity })
            }
            other => Err(format!(
                "serde stub derive: unexpected struct body for `{name}`: {other:?}"
            )),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!(
                "serde stub derive: unexpected enum body for `{name}`: {other:?}"
            )),
        },
        other => Err(format!(
            "serde stub derive: cannot derive for `{other}` items"
        )),
    }
}

/// Advances past `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!(
            "serde stub derive: expected identifier, found {other:?}"
        )),
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "serde stub derive: expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        skip_type_until_comma(&tokens, &mut pos);
        fields.push(field);
    }
    Ok(fields)
}

/// Consumes type tokens until a top-level `,` (angle-bracket aware), and
/// steps over the comma itself.
fn skip_type_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts comma-separated entries at top level (tuple-struct arity).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_type_until_comma(&tokens, &mut pos);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        let data = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantData::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantData::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantData::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_type_until_comma(&tokens, &mut pos);
        variants.push(Variant { name, data });
    }
    Ok(variants)
}

// --- codegen ---------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            (
                name,
                format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", ")),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", ")),
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.data {
        VariantData::Unit => format!(
            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        VariantData::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let content = if *arity == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from({vname:?}), {content})]),",
                binds.join(", ")
            )
        }
        VariantData::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from({vname:?}), \
                 ::serde::Value::Object(::std::vec![{}]))]),",
                fields.join(", "),
                pairs.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__obj, {f:?}, {name:?})?"))
                .collect();
            (
                name,
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", {name:?}))?; \
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::de_element(__items, {i}, {name:?})?"))
                .collect();
            (
                name,
                format!(
                    "let __items = __v.as_array().ok_or_else(|| \
                     ::serde::DeError::expected(\"array\", {name:?}))?; \
                     ::std::result::Result::Ok({name}({}))",
                    inits.join(", ")
                ),
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.data, VariantData::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.data, VariantData::Unit))
                .map(|v| deserialize_data_arm(name, v))
                .collect();
            let body = format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                   {unit} \
                   __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown {name} variant `{{__other}}`\"))), \
                 }}, \
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                   let (__tag, __content) = &__pairs[0]; \
                   match __tag.as_str() {{ \
                     {data} \
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::format!(\"unknown {name} variant `{{__other}}`\"))), \
                   }} \
                 }}, \
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum tag\", {name:?})), \
                 }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ \
         {body} }} }}"
    )
}

fn deserialize_data_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let context = format!("{name}::{vname}");
    match &v.data {
        VariantData::Unit => unreachable!("unit variants handled via string arm"),
        VariantData::Tuple(1) => format!(
            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
             ::serde::Deserialize::from_value(__content)?)),"
        ),
        VariantData::Tuple(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::de_element(__items, {i}, {context:?})?"))
                .collect();
            format!(
                "{vname:?} => {{ let __items = __content.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", {context:?}))?; \
                 ::std::result::Result::Ok({name}::{vname}({})) }},",
                inits.join(", ")
            )
        }
        VariantData::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__obj, {f:?}, {context:?})?"))
                .collect();
            format!(
                "{vname:?} => {{ let __obj = __content.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", {context:?}))?; \
                 ::std::result::Result::Ok({name}::{vname} {{ {} }}) }},",
                inits.join(", ")
            )
        }
    }
}
