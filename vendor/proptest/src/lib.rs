//! Offline stand-in for `proptest` covering the subset this workspace
//! uses: the `proptest!` macro with `arg in strategy` bindings,
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!`, `any::<T>()`,
//! integer/float range strategies, a small `[class]{m,n}` regex string
//! strategy, and `prop::collection::vec`.
//!
//! Differences from the real crate: no shrinking (failures report the
//! original case), a fixed deterministic seed per test name, and 64
//! cases per property.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of accepted cases each property runs.
pub const CASES: u32 = 64;

/// Outcome of a single property-test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another input.
    Reject,
    /// The property failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG for one property test, seeded from its name.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name keeps streams distinct per test.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of values for one `in`-binding.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value (full domain, including non-finite
    /// floats).
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::from_bits(rng.gen::<u64>())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $ty
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full domain.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the full-domain strategy for `T` (like `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_regex(self, rng)
    }
}

/// Generates a string matching a small regex subset: literal characters,
/// `[a-z09_]` classes, and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers.
fn generate_from_regex(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut pos = 0;
    while pos < chars.len() {
        // Parse one atom: a class or a literal.
        let alphabet: Vec<char> = if chars[pos] == '[' {
            let close = chars[pos..]
                .iter()
                .position(|&c| c == ']')
                .map(|o| pos + o)
                .unwrap_or_else(|| panic!("unclosed [ in regex strategy `{pattern}`"));
            let class = &chars[pos + 1..close];
            pos = close + 1;
            expand_class(class)
        } else {
            let c = if chars[pos] == '\\' && pos + 1 < chars.len() {
                pos += 1;
                chars[pos]
            } else {
                chars[pos]
            };
            pos += 1;
            vec![c]
        };
        // Parse an optional quantifier.
        let (min, max) = match chars.get(pos) {
            Some('{') => {
                let close = chars[pos..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|o| pos + o)
                    .unwrap_or_else(|| panic!("unclosed {{ in regex strategy `{pattern}`"));
                let body: String = chars[pos + 1..close].iter().collect();
                pos = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().unwrap_or(0),
                        hi.trim().parse::<usize>().unwrap_or(8),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                pos += 1;
                (0, 1)
            }
            Some('*') => {
                pos += 1;
                (0, 8)
            }
            Some('+') => {
                pos += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

fn expand_class(class: &[char]) -> Vec<char> {
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for code in lo..=hi {
                alphabet.extend(char::from_u32(code));
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class");
    alphabet
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vec strategy with a size range, like `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves from the prelude.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy,
        TestCaseError,
    };
}

/// Rejects the current case, sampling a replacement input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $fmt:expr $(, $args:expr)*)? $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts a condition, failing the property (not panicking) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality, failing the property (not panicking) otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __left,
                __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __left,
                __right,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Declares property tests: each `arg in strategy` binding is sampled
/// per case, rejected cases are re-drawn, and failures report the case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(::std::stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < $crate::CASES {
                    __attempts += 1;
                    ::std::assert!(
                        __attempts < $crate::CASES * 50,
                        "too many rejected cases in {}",
                        ::std::stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                    let __case = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            ::std::panic!("property {} failed [{}]: {}",
                                ::std::stringify!($name), __case, __msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = crate::test_rng("regex");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z0-9_x]{1,24}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        /// The macro end-to-end: assume, assert, assert_eq.
        #[test]
        fn macro_machinery_works(a in 0u32..100, b in 0.0f64..1.0) {
            prop_assume!(a != 13);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a + 1, 1 + a);
        }
    }
}
