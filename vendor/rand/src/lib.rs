//! Offline stand-in for `rand` covering the subset this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! integer and float ranges.
//!
//! The generator is SplitMix64-seeded xoshiro256**, which is more than
//! adequate for test-matrix generation; it is deterministic per seed
//! but produces a different stream than the real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution (uniform over
    /// the type's natural domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding API (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** seeded via SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit = <$ty as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range called with empty range");
                let unit = <$ty as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(3usize..27);
            assert!((3..27).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
