//! Quantized INT8 inference on Matrix Cores — the machine-learning use
//! case that motivated matrix units in the first place (paper §I/§II).
//!
//! Simulates one dense layer of a quantized network: weights and
//! activations quantized to int8, the matrix product accumulated
//! exactly in INT32 on the `V_MFMA_I32_*_I8` path, dequantized in FP32.
//! Reports accuracy against the f32 reference and throughput/energy
//! against the same layer run as SGEMM.
//!
//! ```sh
//! cargo run --release --example quantized_inference [N]
//! ```

use amd_matrix_cores::blas::{quantize, BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::sim::{DeviceId, DeviceRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("N must be an integer"))
        .unwrap_or(4096);

    // A dense layer: activations (n×n) × weights (n×n).
    let mut rng = StdRng::seed_from_u64(88);
    let small = 512usize.min(n); // functional check on a slice of the problem
    let activations: Vec<f32> = (0..small * small)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let weights: Vec<f32> = (0..small * small)
        .map(|_| rng.gen_range(-0.5..0.5))
        .collect();

    // --- numerics on the small slice ---------------------------------
    let a_q = quantize(&activations);
    let w_q = quantize(&weights);
    let c = vec![0.0f32; small * small];
    let mut d_q8 = vec![0.0f32; small * small];
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    handle
        .gemm_quant8(small, small, small, &a_q, &w_q, 0.0, &c, &mut d_q8)
        .expect("quantized gemm");

    let mut max_err = 0.0f32;
    let mut max_mag = 0.0f32;
    for i in 0..small {
        for j in 0..small {
            let mut exact = 0.0f64;
            for p in 0..small {
                exact += f64::from(activations[i * small + p]) * f64::from(weights[p * small + j]);
            }
            max_err = max_err.max((d_q8[i * small + j] - exact as f32).abs());
            max_mag = max_mag.max((exact as f32).abs());
        }
    }
    println!(
        "int8 quantization error at {small}x{small}: max {:.3}% of the largest output",
        100.0 * max_err / max_mag
    );

    // --- performance at full size ------------------------------------
    let q8 = handle
        .gemm_timed(&GemmDesc::square(GemmOp::Quant8, n))
        .expect("fits");
    let f32p = handle
        .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, n))
        .expect("fits");
    let hhs = handle
        .gemm_timed(&GemmDesc::square(GemmOp::Hhs, n))
        .expect("fits");
    println!("\nlayer {n}x{n}x{n} on one MI250X GCD:");
    println!("{:<22} {:>10} {:>12}", "path", "T(FL)OPS", "time (ms)");
    for (label, perf) in [
        ("INT8 Matrix Cores", &q8),
        ("FP16-mixed (HHS)", &hhs),
        ("FP32 Matrix Cores", &f32p),
    ] {
        println!(
            "{label:<22} {:>10.1} {:>12.2}",
            perf.tflops,
            perf.time_s * 1e3
        );
    }
    println!(
        "\nINT8 runs at the FP16-mixed rate ({}x the FP32 path) with exact integer\n\
         accumulation — quantization of the inputs is the only approximation.",
        (q8.tflops / f32p.tflops).round()
    );
}
