//! Roofline analysis of the rocBLAS GEMM routines — why Fig. 6/7 look
//! the way they do, from first principles.
//!
//! Builds the MI250X GCD roofline (per-datatype Matrix Core ceilings +
//! the DRAM diagonal), places each measured GEMM on it, and reports the
//! regime (compute vs memory bound) and roofline efficiency.
//!
//! ```sh
//! cargo run --release --example roofline_report [N]
//! ```

use amd_matrix_cores::blas::{BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::model::{OperatingPoint, Regime, Roofline};
use amd_matrix_cores::sim::{DeviceId, DeviceRegistry};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("N must be an integer"))
        .unwrap_or(8192);

    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    let roofline = Roofline::for_die(&handle.gpu().spec().die);

    println!(
        "MI250X GCD roofline (DRAM {:.2} TB/s):",
        roofline.bandwidth / 1e12
    );
    for roof in &roofline.roofs {
        println!(
            "  {:<18} {:>7.1} TFLOPS   ridge at {:>6.1} FLOP/B",
            roof.name,
            roof.flops / 1e12,
            roofline.ridge_intensity(roof)
        );
    }

    println!("\nGEMM operating points at N = {n}:");
    println!(
        "{:<8} {:>9} {:>12} {:>14} {:>14} {:>8}",
        "routine", "TFLOPS", "intensity", "regime", "attainable", "effic."
    );
    for op in [GemmOp::Dgemm, GemmOp::Sgemm, GemmOp::Hss, GemmOp::Hhs] {
        let desc = GemmDesc::square(op, n);
        let perf = match handle.gemm_timed(&desc) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<8} skipped: {e}", op.routine());
                continue;
            }
        };
        let bytes = perf.plan.kernel.mem_hints.hbm_bytes.max(1);
        let point = OperatingPoint {
            intensity: perf.plan.useful_flops() as f64 / bytes as f64,
            flops: perf.tflops * 1e12,
        };
        let roof_name = match op {
            GemmOp::Dgemm => "MFMA FP64",
            GemmOp::Sgemm => "MFMA FP32",
            _ => "MFMA FP16-mixed",
        };
        let roof = roofline.roof(roof_name).expect("roof exists").clone();
        let regime = roofline.classify(&roof, point);
        println!(
            "{:<8} {:>9.1} {:>10.1}/B {:>14} {:>11.1} TF {:>7.0}%",
            op.routine(),
            perf.tflops,
            point.intensity,
            match regime {
                Regime::MemoryBound => "memory-bound",
                Regime::ComputeBound => "compute-bound",
            },
            roofline.attainable(&roof, point.intensity) / 1e12,
            100.0 * roofline.efficiency(&roof, point)
        );
    }

    println!(
        "\nReading: routines whose intensity falls left of their roof's ridge are\n\
         bandwidth-limited — exactly the large-N mixed-precision regime the paper\n\
         observes in Fig. 7 (drops past N = 8192) and the 2^k camping dips of Fig. 6."
    );
}
