//! A command-line port of AMD's `amd_matrix_instruction_calculator`
//! (paper ref. [9]): look up any CDNA2 MFMA instruction and print its
//! properties and the matrix-element ↔ register layout that makes
//! C-level Matrix Core programming possible (paper §III).
//!
//! ```sh
//! cargo run --example matrix_calculator -- --list
//! cargo run --example matrix_calculator -- v_mfma_f32_16x16x16f16 A
//! ```

use amd_matrix_cores::isa::regmap::{layout_report, Operand};
use amd_matrix_cores::isa::{cdna2_catalog, MatrixInstruction};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let catalog = cdna2_catalog();

    if args.is_empty() || args[0] == "--list" {
        println!("CDNA2 V_MFMA_* instruction catalog:");
        println!(
            "{:<36} {:>8} {:>9} {:>14} {:>6} {:>6} {:>6}",
            "mnemonic", "blocks", "cycles", "FLOPs/CU/cyc", "vA", "vB", "aCD"
        );
        for i in catalog.instructions() {
            println!(
                "{:<36} {:>8} {:>9} {:>14.0} {:>6} {:>6} {:>6}",
                i.mnemonic(),
                i.shape.blocks,
                i.latency_cycles,
                i.flops_per_cu_per_cycle(),
                i.a_vgprs_per_lane(),
                i.b_vgprs_per_lane(),
                i.cd_agprs_per_lane(),
            );
        }
        println!("\nusage: matrix_calculator <mnemonic> [A|B|C|D]  — print register layout");
        return;
    }

    let mnemonic = &args[0];
    let Some(instr) = catalog.by_mnemonic(mnemonic) else {
        eprintln!("unknown instruction `{mnemonic}`");
        if let Ok(parsed) = MatrixInstruction::parse_cdna2_mnemonic(mnemonic) {
            eprintln!(
                "(parses as {} <- {} {}x{}x{}, but CDNA2 has no such opcode)",
                parsed.cd, parsed.ab, parsed.shape.m, parsed.shape.n, parsed.shape.k
            );
        }
        std::process::exit(1);
    };

    println!("{instr}");
    if let Some(builtin) = instr.builtin() {
        println!("compiler intrinsic: {builtin}");
    }
    println!(
        "registers per lane: A {} VGPRs, B {} VGPRs, C/D {} AccVGPRs\n",
        instr.a_vgprs_per_lane(),
        instr.b_vgprs_per_lane(),
        instr.cd_agprs_per_lane()
    );

    let operand = match args.get(1).map(String::as_str) {
        Some("A") | None => Operand::A,
        Some("B") => Operand::B,
        Some("C") => Operand::C,
        Some("D") => Operand::D,
        Some(other) => {
            eprintln!("unknown operand `{other}` (use A, B, C, or D)");
            std::process::exit(1);
        }
    };
    match layout_report(instr, operand) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("cannot compute layout: {e}"),
    }
}
