//! Numerical behaviour of the mixed-precision GEMM variants.
//!
//! The paper's programmability study (§VII) shows *which* routine is
//! fast; this example shows *what that costs in accuracy*. It runs the
//! same random problem through DGEMM / SGEMM / HSS / HHS / HGEMM via the
//! functional executors (which model the Matrix Core datapath's exact
//! products and in-type sequential accumulation) and reports error
//! versus an f64 reference — demonstrating why HGEMM (FP16 compute) is
//! both slow *and* inaccurate, while HSS/HHS keep FP32 accumulation.
//!
//! ```sh
//! cargo run --example mixed_precision_survey [N]
//! ```

use amd_matrix_cores::blas::{gemm_reference_f64, BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::sim::{DeviceId, DeviceRegistry};
use amd_matrix_cores::types::F16;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("N must be an integer"))
        .unwrap_or(256);

    let mut rng = StdRng::seed_from_u64(0x15BA5524);
    // Values in [0.5, 1.5]: enough accumulation to stress FP16.
    let a64: Vec<f64> = (0..n * n).map(|_| 0.5 + rng.gen::<f64>()).collect();
    let b64: Vec<f64> = (0..n * n).map(|_| 0.5 + rng.gen::<f64>()).collect();
    let c64: Vec<f64> = vec![0.0; n * n];

    // f64 reference with exact (unrounded-between-ops) accumulation.
    let ref_desc = GemmDesc {
        alpha: 1.0,
        beta: 0.0,
        ..GemmDesc::square(GemmOp::Dgemm, n)
    };
    let mut d_ref = vec![0.0f64; n * n];
    gemm_reference_f64(&ref_desc, &a64, &b64, &c64, &mut d_ref).expect("reference");

    let max_rel = |d: &[f64]| -> f64 {
        d.iter()
            .zip(&d_ref)
            .map(|(x, r)| ((x - r) / r).abs())
            .fold(0.0, f64::max)
    };

    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    println!("accuracy + throughput survey, N = {n} (random uniform [0.5, 1.5))\n");
    println!(
        "{:<8} {:>12} {:>14} {:>16}",
        "routine", "TFLOPS", "max rel err", "accumulator"
    );

    // DGEMM.
    {
        let desc = ref_desc;
        let mut d = vec![0.0f64; n * n];
        let perf = handle
            .dgemm(&desc, &a64, &b64, &c64, &mut d)
            .expect("dgemm");
        println!(
            "{:<8} {:>12.2} {:>14.2e} {:>16}",
            "dgemm",
            perf.tflops,
            max_rel(&d),
            "FP64"
        );
    }
    // SGEMM.
    {
        let desc = GemmDesc {
            op: GemmOp::Sgemm,
            ..ref_desc
        };
        let a: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let b: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
        let c = vec![0.0f32; n * n];
        let mut d = vec![0.0f32; n * n];
        let perf = handle.sgemm(&desc, &a, &b, &c, &mut d).expect("sgemm");
        let d64: Vec<f64> = d.iter().map(|&x| f64::from(x)).collect();
        println!(
            "{:<8} {:>12.2} {:>14.2e} {:>16}",
            "sgemm",
            perf.tflops,
            max_rel(&d64),
            "FP32"
        );
    }
    // The three half-input routines share FP16 inputs.
    let ah: Vec<F16> = a64.iter().map(|&x| F16::from_f64(x)).collect();
    let bh: Vec<F16> = b64.iter().map(|&x| F16::from_f64(x)).collect();
    {
        let desc = GemmDesc {
            op: GemmOp::Hss,
            ..ref_desc
        };
        let c = vec![0.0f32; n * n];
        let mut d = vec![0.0f32; n * n];
        let perf = handle.gemm_hss(&desc, &ah, &bh, &c, &mut d).expect("hss");
        let d64: Vec<f64> = d.iter().map(|&x| f64::from(x)).collect();
        println!(
            "{:<8} {:>12.2} {:>14.2e} {:>16}",
            "hss",
            perf.tflops,
            max_rel(&d64),
            "FP32"
        );
    }
    {
        let desc = GemmDesc {
            op: GemmOp::Hhs,
            ..ref_desc
        };
        let c = vec![F16::ZERO; n * n];
        let mut d = vec![F16::ZERO; n * n];
        let perf = handle.gemm_hhs(&desc, &ah, &bh, &c, &mut d).expect("hhs");
        let d64: Vec<f64> = d.iter().map(|x| x.to_f64()).collect();
        println!(
            "{:<8} {:>12.2} {:>14.2e} {:>16}",
            "hhs",
            perf.tflops,
            max_rel(&d64),
            "FP32->FP16 out"
        );
    }
    {
        let desc = GemmDesc {
            op: GemmOp::Hgemm,
            ..ref_desc
        };
        let c = vec![F16::ZERO; n * n];
        let mut d = vec![F16::ZERO; n * n];
        let perf = handle.hgemm(&desc, &ah, &bh, &c, &mut d).expect("hgemm");
        let d64: Vec<f64> = d.iter().map(|x| x.to_f64()).collect();
        println!(
            "{:<8} {:>12.2} {:>14.2e} {:>16}   <- SIMD-only AND FP16 accumulation",
            "hgemm",
            perf.tflops,
            max_rel(&d64),
            "FP16"
        );
    }

    println!(
        "\nHSS/HHS pay only FP16 *input* rounding; HGEMM accumulates in FP16 and\n\
         drifts with k = {n}. Use HHS/HSS — they are also the only half routines\n\
         rocBLAS maps onto Matrix Cores (paper §VII)."
    );
}
