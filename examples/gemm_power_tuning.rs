//! Power-aware precision selection for a GEMM-dominated workload —
//! the paper's §VI guidance turned into a tool.
//!
//! Given a target problem size, runs the workload in every precision the
//! library offers, samples package power through the SMI interface, and
//! reports throughput, average power, energy to solution, and
//! GFLOPS/W — showing the paper's 4×/8× power-saving opportunity when
//! stepping from double to single to mixed precision.
//!
//! ```sh
//! cargo run --example gemm_power_tuning [N]
//! ```

use amd_matrix_cores::blas::{BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::power::sampler::BackgroundSampler;
use amd_matrix_cores::power::{gflops_per_watt, SamplerConfig};
use amd_matrix_cores::sim::{sample_stats, DeviceId, DeviceRegistry, Smi};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("N must be an integer"))
        .unwrap_or(8192);

    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    println!("precision survey for {n}x{n}x{n} GEMM on one MI250X GCD\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "routine", "TFLOPS", "avg W", "energy (J)", "GFLOPS/W", "samples"
    );

    let mut rows = Vec::new();
    for op in [
        GemmOp::Dgemm,
        GemmOp::Sgemm,
        GemmOp::Hss,
        GemmOp::Hhs,
        GemmOp::Hgemm,
    ] {
        let desc = GemmDesc::square(op, n);
        let perf = match handle.gemm_timed(&desc) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<8} skipped: {e}", op.routine());
                continue;
            }
        };
        // Sample the launch's power profile like the paper's tool does.
        // Kernels here are milliseconds long, so sample at 10 µs to get
        // a meaningful train (the methodology scales with kernel time).
        let noise = handle.gpu().config().telemetry_noise;
        let smi = Smi::attach(perf.package.profile.clone(), noise, n as u64);
        let samples = BackgroundSampler::spawn(
            smi,
            SamplerConfig {
                period_s: perf.time_s / 2000.0,
                min_samples: 100,
            },
        )
        .join();
        let stats = sample_stats(&samples);
        let energy = stats.mean_w * perf.time_s;
        let eff = gflops_per_watt(perf.tflops, stats.mean_w);
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>12.2} {:>12.0} {:>10}",
            op.routine(),
            perf.tflops,
            stats.mean_w,
            energy,
            eff,
            stats.count
        );
        rows.push((op, eff, energy));
    }

    if let (Some(d), Some(m)) = (
        rows.iter().find(|r| r.0 == GemmOp::Dgemm),
        rows.iter().find(|r| r.0 == GemmOp::Hhs),
    ) {
        println!(
            "\nmixed precision (HHS) delivers {:.1}x the power efficiency of DGEMM \
             ({:.1}x less energy to solution) — the §VI headline.",
            m.1 / d.1,
            d.2 / m.2
        );
    }
}
