//! Inspect what the GEMM planner "compiles" — the `-S` workflow the
//! paper uses to verify Matrix Core usage (§IV-A), applied to the
//! library's own kernels.
//!
//! ```sh
//! cargo run --example inspect_kernel -- hhs 4096
//! cargo run --example inspect_kernel -- hgemm 4096   # the SIMD path
//! ```

use amd_matrix_cores::blas::{plan_gemm, GemmDesc, GemmOp};
use amd_matrix_cores::isa::disasm::{disassemble, kernel_stats};
use amd_matrix_cores::sim::{occupancy, DeviceId, DeviceRegistry};

fn main() {
    let routine = std::env::args().nth(1).unwrap_or_else(|| "hhs".into());
    let n: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("N must be an integer"))
        .unwrap_or(4096);

    let op = match routine.as_str() {
        "sgemm" => GemmOp::Sgemm,
        "dgemm" => GemmOp::Dgemm,
        "hgemm" => GemmOp::Hgemm,
        "hhs" => GemmOp::Hhs,
        "hss" => GemmOp::Hss,
        "quant8" => GemmOp::Quant8,
        other => {
            eprintln!("unknown routine `{other}`");
            std::process::exit(2);
        }
    };

    let gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let plan = plan_gemm(&gpu.spec().die, &GemmDesc::square(op, n)).expect("plannable");

    println!("{}", disassemble(&plan.kernel));

    let stats = kernel_stats(&plan.kernel);
    let occ = occupancy(&gpu.spec().die, &plan.kernel);
    println!("static verification ({}x{n}x{n} {routine}):", n);
    println!(
        "  {} matrix instructions per k-iteration; strategy {}",
        stats.mfma_per_iteration,
        if plan.strategy.uses_matrix_cores() {
            "MatrixCore"
        } else {
            "SimdOnly"
        }
    );
    println!(
        "  occupancy: {} waves/CU ({:?}-limited), {} Matrix Cores reachable",
        occ.waves_per_cu, occ.limited_by, occ.matrix_cores_reachable
    );
    println!(
        "  planned FLOPs: {} on Matrix Cores, {} on SIMD units",
        plan.mfma_flops, plan.simd_flops
    );
}
