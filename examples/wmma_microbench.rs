//! The paper's §V micro-benchmark workflow, end to end:
//!
//! * sweep wavefront counts for one datatype and print measured vs
//!   Eq. 2-model throughput (Fig. 3 for a single series);
//! * compare against the other datatypes' sustained plateaus;
//! * show what happens at a non-multiple of 440 (the partially-idle
//!   phase the paper explains in §V-B).
//!
//! ```sh
//! cargo run --example wmma_microbench [mixed|float|double]
//! ```

use amd_matrix_cores::isa::cdna2_catalog;
use amd_matrix_cores::model::ThroughputModel;
use amd_matrix_cores::sim::{fig3_wavefront_sweep, throughput_run, DeviceId, DeviceRegistry};
use amd_matrix_cores::types::DType;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mixed".into());
    let (cd, ab, m, n, k) = match which.as_str() {
        "mixed" => (DType::F32, DType::F16, 16, 16, 16),
        "float" => (DType::F32, DType::F32, 16, 16, 4),
        "double" => (DType::F64, DType::F64, 16, 16, 4),
        other => {
            eprintln!("unknown series `{other}`; use mixed|float|double");
            std::process::exit(2);
        }
    };

    let instr = *cdna2_catalog()
        .find(cd, ab, m, n, k)
        .expect("paper instruction");
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let model = ThroughputModel::new(&instr, &gpu.spec().die);
    const ITERS: u64 = 1_000_000;

    println!(
        "{} on one MI250X GCD ({ITERS} iterations/wave)",
        instr.mnemonic()
    );
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "waves", "measured TF", "Eq.2 model", "ratio"
    );
    for wf in fig3_wavefront_sweep() {
        let r = throughput_run(&mut gpu, 0, &instr, wf, ITERS).expect("launch");
        let model_tf = model.tflops(wf);
        println!(
            "{wf:>8} {:>14.2} {:>14.2} {:>8.1}%",
            r.tflops,
            model_tf,
            100.0 * r.tflops / model_tf
        );
    }

    // The partially-idle case: 660 waves = 1.5x the Matrix Core count.
    let r660 = throughput_run(&mut gpu, 0, &instr, 660, ITERS).expect("launch");
    let r440 = throughput_run(&mut gpu, 0, &instr, 440, ITERS).expect("launch");
    println!(
        "\n660 waves: {:.1} TFLOPS = {:.0}% of the 440-wave plateau — \
         the second dispatch phase leaves half the Matrix Cores idle (§V-B)",
        r660.tflops,
        100.0 * r660.tflops / r440.tflops
    );
}
