//! Mixed-precision iterative refinement on top of the Matrix Core
//! stack — the application pattern of the paper's ref. [3] (Haidar et
//! al.), and the reason §VI argues HPC codes should prefer low-precision
//! Matrix Core operations where accuracy allows.
//!
//! Solves `A·x = b` by factorizing in FP32 (where the simulated GCD's
//! GEMM runs faster and at far better GFLOPS/W than FP64) and refining
//! to FP64 accuracy; then compares against a straight FP64 solve —
//! numerically *and* in simulated time/energy for the trailing-update
//! GEMMs that dominate the factorization.
//!
//! ```sh
//! cargo run --release --example iterative_refinement [N]
//! ```

use amd_matrix_cores::blas::BlasHandle;
use amd_matrix_cores::sim::{DeviceId, DeviceRegistry};
use amd_matrix_cores::solver::{factor_timed, getrf, refine, Factorization, Matrix, RefineOptions};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("N must be an integer"))
        .unwrap_or(256);

    // A well-conditioned dense system.
    let a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            n as f64 + 2.0
        } else {
            (((i * 13 + j * 7) % 11) as f64) / 11.0 - 0.5
        }
    });
    let x_true = Matrix::from_fn(n, 1, |i, _| ((i % 23) as f64) / 23.0 - 0.5);
    let mut b = Matrix::zeros(n, 1);
    for i in 0..n {
        let mut s = 0.0;
        for k in 0..n {
            s += a.get(i, k) * x_true.get(k, 0);
        }
        b.set(i, 0, s);
    }

    // --- numerics: f32 factorization + FP64 refinement ---------------
    let report = refine(&a, &b, RefineOptions::default()).expect("well-conditioned");
    let err = (0..n)
        .map(|i| (report.x.get(i, 0) - x_true.get(i, 0)).abs())
        .fold(0.0f64, f64::max);
    println!(
        "iterative refinement: {} correction steps",
        report.iterations
    );
    for (it, r) in report.residual_history.iter().enumerate() {
        println!("  residual after step {it}: {r:.3e}");
    }
    println!("max |x - x_true| = {err:.3e} (FP64-level from an FP32 factorization)\n");

    // Straight FP64 factorization for reference accuracy.
    let lu = getrf(&a, 64).expect("non-singular");
    let x64 = lu.solve(&b).expect("solve");
    let err64 = (0..n)
        .map(|i| (x64.get(i, 0) - x_true.get(i, 0)).abs())
        .fold(0.0f64, f64::max);
    println!("straight FP64 LU: max error {err64:.3e}");

    // --- performance: what the GCD does for each variant -------------
    let big_n = 8192;
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    let fp64 = factor_timed(&mut handle, Factorization::Getrf, big_n, 128).expect("timed");
    println!(
        "\nLU at N={big_n} on the simulated GCD: {:.1} TFLOPS, {:.1} ms, \
         {:.1}% of FLOPs on Matrix Cores ({} GEMM launches)",
        fp64.tflops,
        fp64.time_s * 1e3,
        fp64.matrix_core_ratio * 100.0,
        fp64.gemm_launches
    );
    println!(
        "An FP32-factorize + refine scheme moves those trailing updates to the\n\
         ~2x faster, ~2x more power-efficient FP32 Matrix Core path (paper §V/§VI)\n\
         while the refinement loop restores FP64 accuracy — the ref. [3] design."
    );
}
