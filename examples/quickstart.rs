//! Quickstart: the three layers of the Matrix Core stack in one page.
//!
//! 1. Issue a single wave matrix multiply-accumulate through the
//!    rocWMMA-style fragment API and check the numbers.
//! 2. Run the paper's latency micro-benchmark for one instruction.
//! 3. Run a rocBLAS-style SGEMM and report throughput and Matrix Core
//!    utilization.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use amd_matrix_cores::blas::{BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::profiler::{matrix_core_ratio, ProfilerSession};
use amd_matrix_cores::sim::{measure_latency, DeviceId, DeviceRegistry};
use amd_matrix_cores::types::F16;
use amd_matrix_cores::wmma::{mma_sync, Accumulator, Fragment, MatrixA, MatrixB};

fn main() {
    // --- 1. One MMA through the fragment API ------------------------
    let mut a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
    let mut b = Fragment::<MatrixB, F16, 16, 16, 16>::new();
    let mut c = Fragment::<Accumulator, f32, 16, 16, 16>::new();
    let mut d = Fragment::<Accumulator, f32, 16, 16, 16>::new();
    a.fill(F16::ONE);
    for k in 0..16 {
        b.set(k, k, F16::ONE); // identity
    }
    c.fill(1.0);
    let instr = mma_sync(&mut d, &a, &b, &c).expect("FP32 <- FP16 16x16x16 exists on CDNA2");
    println!("wmma: executed {}", instr.mnemonic());
    println!("wmma: D[0][0] = {} (A=1, B=I, C=1 => 2)", d.get(0, 0));
    assert_eq!(d.get(0, 0), 2.0);

    // --- 2. Instruction latency (paper Table II methodology) --------
    let devices = DeviceRegistry::builtin();
    let mut gpu = devices.gpu(DeviceId::Mi250x);
    let lat = measure_latency(&mut gpu, 0, instr, 1_000_000).expect("launch");
    println!(
        "latency: {} runs at {:.1} cycles -> {:.0} FLOPs/CU/cycle",
        instr.mnemonic(),
        lat.cycles,
        lat.flops_per_cu_per_cycle
    );

    // --- 3. rocBLAS-style SGEMM with profiling ----------------------
    let mut handle = BlasHandle::from_registry(&devices, DeviceId::Mi250xGcd);
    let desc = GemmDesc::square(GemmOp::Sgemm, 8192);
    let session = ProfilerSession::begin(handle.gpu(), handle.die()).expect("die 0");
    let perf = handle.gemm_timed(&desc).expect("fits in memory");
    let counters = session.end(handle.gpu()).expect("die 0");
    println!(
        "sgemm N=8192: {:.1} TFLOPS in {:.1} ms, {:.2}% of FLOPs on Matrix Cores",
        perf.tflops,
        perf.time_s * 1e3,
        matrix_core_ratio(&counters) * 100.0
    );
}
