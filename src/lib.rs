//! Umbrella crate for the AMD Matrix Cores characterization reproduction.
//!
//! This crate re-exports the public APIs of the workspace crates so that
//! examples and downstream users can depend on a single package:
//!
//! - [`types`] — software FP16/BF16 and datatype metadata
//! - [`compute`] — the cache-blocked host GEMM kernel every library
//!   layer routes through (see `docs/PERFORMANCE.md`)
//! - [`isa`] — the CDNA2 / Ampere matrix-instruction model
//! - [`lint`] — static kernel verification (see `docs/LINTS.md`)
//! - [`flow`] — dataflow race & synchronization verification of
//!   pipelined kernel plans (see `docs/DATAFLOW.md`)
//! - [`sim`] — the event-driven GPU simulator (devices, counters, power)
//! - [`trace`] — execution timelines, Perfetto/flamegraph export, and
//!   the unified metrics registry (see `docs/OBSERVABILITY.md`)
//! - [`hostprof`] — host-plane trace conversion and per-phase GEMM
//!   attribution over `compute::prof` sessions (see the "Host plane"
//!   section of `docs/OBSERVABILITY.md`)
//! - [`wmma`] — the rocWMMA-style fragment API
//! - [`blas`] — the rocBLAS-style GEMM library
//! - [`model`] — performance models (throughput, FLOP distribution)
//! - [`power`] — power sampling, modelling, and efficiency metrics
//! - [`profiler`] — rocprof-style counter collection and derived metrics
//!
//! See the repository README for a quickstart and DESIGN.md for the
//! system inventory and per-experiment index.

pub use mc_blas as blas;
pub use mc_compute as compute;
pub use mc_flow as flow;
pub use mc_hostprof as hostprof;
pub use mc_isa as isa;
pub use mc_lint as lint;
pub use mc_model as model;
pub use mc_power as power;
pub use mc_profiler as profiler;
pub use mc_sim as sim;
pub use mc_solver as solver;
pub use mc_trace as trace;
pub use mc_types as types;
pub use mc_wmma as wmma;
